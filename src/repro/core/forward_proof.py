"""Forward proofs and the Ŵ_P operator (Definitions 5 and 7, Theorem 8).

A *forward proof* of an atom ``a`` from ``P`` is a finite subforest π of
``F⁺(P)`` such that

1. some node of π (the *goal node*) is labelled ``a``,
2. π is closed under parents in ``F⁺(P)``,
3. if ``r`` labels the edge into a node ``w`` of π, then every positive body
   atom ``b ∈ B⁺(r)`` labels some node ``u ∈ π`` with
   ``level_P(u) < level_P(w)``.

``N(π)`` collects the atoms occurring negated in the edge rules of π — the
proof's *negative hypotheses*.  The operator Ŵ_P (Def. 7) derives

* ``a``   when some forward proof of ``a`` has all its negative hypotheses
  already false in the current interpretation, and
* ``¬a``  when *every* forward proof of ``a`` is blocked by a negative
  hypothesis that is already true (in particular when ``a`` has no forward
  proof at all),

and by Theorem 8 its least fixpoint is exactly ``WFS(P)``.

On the materialised finite chase segment both conditions reduce to
reachability computations over the forest:

* "∃ proof with ¬.N(π) ⊆ I" — least fixpoint of node provability where an
  edge may be used only if each of its negated atoms is false in ``I``;
* "every proof blocked" — the complement of the same computation with the
  weaker edge condition "each negated atom is *not true* in ``I``".

:func:`what_operator` implements one application of Ŵ_P on the segment and
:func:`what_fixpoint` iterates it; the engine uses the result as an
independent cross-check of the ground-program WFS, and the test-suite
replays Example 6/9 of the paper with it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from ..lang.atoms import Atom, Literal
from ..chase.forest import ChaseForest, ChaseNode
from ..lp.interpretation import Interpretation

__all__ = [
    "ForwardProof",
    "find_forward_proof",
    "provable_atoms",
    "what_operator",
    "what_fixpoint",
]


@dataclass(frozen=True)
class ForwardProof:
    """A forward proof: the node ids of the subforest π plus bookkeeping.

    ``goal`` is the goal node id; ``negative_hypotheses`` is ``N(π)``.
    """

    goal: int
    nodes: frozenset[int]
    negative_hypotheses: frozenset[Atom]

    def size(self) -> int:
        """Number of nodes of the proof."""
        return len(self.nodes)


def _provable_nodes(
    forest: ChaseForest,
    negative_ok: Callable[[Atom], bool],
) -> set[int]:
    """Node-level least fixpoint of "has a qualifying forward proof through me".

    A node is provable iff it is a root, or (a) its parent is provable, (b)
    every negated atom of its edge rule satisfies *negative_ok*, and (c) every
    positive body atom of its edge rule labels some provable node of strictly
    smaller derivation level.
    """
    provable: set[int] = set()
    provable_labels_by_level: dict[Atom, int] = {}

    def min_level(atom: Atom) -> Optional[int]:
        return provable_labels_by_level.get(atom)

    changed = True
    while changed:
        changed = False
        for node in forest.nodes():
            if node.node_id in provable:
                continue
            if node.is_root():
                qualifies = True
            else:
                rule = node.edge_rule
                parent_ok = node.parent in provable
                negatives_ok = parent_ok and all(negative_ok(b) for b in rule.body_neg)
                qualifies = negatives_ok
                if qualifies:
                    for body_atom in rule.body_pos:
                        level = min_level(body_atom)
                        if level is None or level >= node.level:
                            qualifies = False
                            break
            if qualifies:
                provable.add(node.node_id)
                label = forest.node(node.node_id).label
                level = forest.node(node.node_id).level
                best = provable_labels_by_level.get(label)
                if best is None or level < best:
                    provable_labels_by_level[label] = level
                changed = True
    return provable


def provable_atoms(
    forest: ChaseForest,
    negative_ok: Callable[[Atom], bool],
) -> set[Atom]:
    """Atoms that have a forward proof whose negated edge atoms all satisfy *negative_ok*."""
    nodes = _provable_nodes(forest, negative_ok)
    return {forest.node(i).label for i in nodes}


def find_forward_proof(
    forest: ChaseForest,
    atom: Atom,
    *,
    allowed_negatives: Optional[Callable[[Atom], bool]] = None,
) -> Optional[ForwardProof]:
    """Construct a forward proof of *atom* from the materialised forest, if any.

    The proof returned is built greedily from the provability fixpoint: for
    each required positive body atom the provable node of smallest derivation
    level is chosen, and ancestors are added as required by closure under
    parents.  ``allowed_negatives`` restricts which negated edge atoms may be
    used (default: all).
    """
    negative_ok = allowed_negatives if allowed_negatives is not None else (lambda _b: True)
    provable = _provable_nodes(forest, negative_ok)

    candidates = [n for n in forest.nodes_with_label(atom) if n.node_id in provable]
    if not candidates:
        return None
    goal = min(candidates, key=lambda n: (n.level, n.depth, n.node_id))

    # Choose, for each label, the provable node of smallest level (used as the
    # witness required by condition 3 of Def. 5).
    best_node_for_label: dict[Atom, ChaseNode] = {}
    for node_id in provable:
        node = forest.node(node_id)
        best = best_node_for_label.get(node.label)
        if best is None or node.level < best.level:
            best_node_for_label[node.label] = node

    included: set[int] = set()
    negatives: set[Atom] = set()
    worklist = [goal.node_id]
    while worklist:
        current_id = worklist.pop()
        if current_id in included:
            continue
        included.add(current_id)
        node = forest.node(current_id)
        if node.parent is not None:
            worklist.append(node.parent)
        rule = node.edge_rule
        if rule is None:
            continue
        negatives.update(rule.body_neg)
        for body_atom in rule.body_pos:
            witness = best_node_for_label.get(body_atom)
            if witness is not None and witness.node_id not in included:
                worklist.append(witness.node_id)
    return ForwardProof(goal.node_id, frozenset(included), frozenset(negatives))


def what_operator(
    forest: ChaseForest,
    interpretation: Interpretation,
    universe: Optional[Iterable[Atom]] = None,
) -> Interpretation:
    """One application of the operator Ŵ_P (Def. 7) over the finite forest segment.

    * ``a`` is derived when *atom* has a forward proof all of whose negative
      hypotheses are false in *interpretation*;
    * ``¬a`` is derived when every forward proof of ``a`` (within the segment)
      is blocked by a hypothesis true in *interpretation* — equivalently, when
      ``a`` is not provable even if every negated atom that is *not true* may
      be assumed false.  Atoms of the universe without any node are unproven
      and hence derived negative.

    The *universe* defaults to the forest's labels plus the negated atoms of
    its edge rules.
    """
    if universe is None:
        universe_set = set(forest.labels()) | set(forest.negative_atoms())
    else:
        universe_set = set(universe)

    strictly_provable = provable_atoms(forest, interpretation.is_false)
    possibly_provable = provable_atoms(
        forest, lambda b: not interpretation.is_true(b)
    )

    true_atoms = set(strictly_provable)
    false_atoms = {a for a in universe_set if a not in possibly_provable}
    return Interpretation(true_atoms, false_atoms - true_atoms)


def what_fixpoint(
    forest: ChaseForest,
    universe: Optional[Iterable[Atom]] = None,
    *,
    max_iterations: int = 10_000,
) -> Interpretation:
    """The least fixpoint of Ŵ_P over the finite forest segment (Theorem 8).

    Iterates :func:`what_operator` from the empty interpretation.  On the
    infinite forest the iteration may be transfinite (Example 9); on the
    finite materialised segment it terminates after at most
    ``|universe|`` many steps.
    """
    current = Interpretation.empty()
    for _ in range(max_iterations):
        nxt = what_operator(forest, current, universe)
        if nxt == current:
            return current
        current = nxt
    raise RuntimeError("what_fixpoint did not converge within the iteration budget")
