"""The well-founded semantics for guarded normal Datalog± under the UNA.

This is the paper's central object (Definition 3): for a guarded normal
Datalog± program Σ and a database D,

    WFS(D, Σ)  :=  WFS(D ∪ Σ^f)

where Σ^f is the functional (Skolem) transformation of Σ.  The program
``P = D ∪ Σ^f`` has an infinite grounding as soon as Σ has existential rules,
so ``WFS(P)`` cannot be computed by the finite-program machinery directly.
The paper shows (via forward proofs, locality and the δ bound of Prop. 12)
that NBCQ answering only ever needs a *finite initial segment* of the guarded
chase forest ``F⁺(P)``.

:class:`WellFoundedEngine` turns that result into a practical procedure:

1. Skolemise Σ and expand the guarded chase forest of ``D ∪ Σ^f`` up to a
   depth bound (the chase only ever uses the positive parts of rules, exactly
   as in the construction of ``F⁺(P)``).
2. Collect the ground rules labelling the edges of the segment together with
   the database facts; this is precisely the set of instances of
   ``ground(P)`` whose guard and positive body lie inside the segment.
3. Compute the exact WFS of this finite ground program with the classical
   unfounded-set construction (:mod:`repro.lp.wfs`).  Atoms that label no
   node of the segment have no forward proof there and are treated as false.
4. **Iterative deepening**: repeat with a larger depth until the approximation
   is stable — every frontier node's type already occurred at a smaller
   depth (the locality argument of Lemma 11: the subtree below a node is
   determined by its type) *and* the truth values over the previous segment
   did not change.  The theoretical bound ``n·δ`` of Prop. 12 guarantees that
   a stable depth exists; the type-repetition test finds it early.

The result is wrapped in :class:`DatalogWellFoundedModel`, which implements
the three-valued protocol used by NBCQ evaluation.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional, Union

from ..exceptions import ConvergenceError
from ..lang.atoms import Atom, Literal
from ..lang.program import Database, DatalogPMProgram
from ..lang.queries import (
    ConjunctiveQuery,
    NormalBCQ,
    ThreeValuedLike,
    as_conjunctive_query,
    evaluate_query,
    query_holds,
    query_literals,
)
from ..lang.rules import NormalRule
from ..lang.skolem import skolemize_program
from ..lang.parser import parse_database, parse_program, parse_query
from ..lang.terms import Constant, Term
from ..chase.engine import GuardedChaseEngine
from ..chase.forest import ChaseForest
from ..chase.types import AtomType
from ..lp.columnar import BACKENDS
from ..lp.grounding import GroundProgram
from ..lp.interpretation import TruthValue
from ..lp.wfs import (
    IncrementalWFS,
    WellFoundedModel,
    well_founded_model,
    well_founded_model_incremental,
)
from ..rewrite.magic import ground_magic, rewrite_for_query
from .locality import delta_bound, query_depth_bound

__all__ = ["DatalogWellFoundedModel", "WellFoundedEngine"]


class DatalogWellFoundedModel:
    """The (finite-segment approximation of the) well-founded model WFS(D, Σ).

    Wraps the exact WFS of the ground program extracted from a chase segment,
    together with the segment itself.  Implements the three-valued protocol:

    * :meth:`is_true` — the atom is well-founded;
    * :meth:`is_false` — the atom is unfounded; atoms that label no node of
      the segment are false (they have no forward proof there);
    * :meth:`is_undefined` — neither.

    ``converged`` records whether the engine's stabilisation test succeeded
    within its depth budget; when it is ``False`` the model is still a sound
    under-approximation of the positive part but negative/undefined values
    near the frontier may still change with deeper expansion.
    """

    def __init__(
        self,
        lp_model: WellFoundedModel,
        forest: ChaseForest,
        *,
        depth: int,
        converged: bool,
        iterations: int,
    ):
        self._lp_model = lp_model
        self._forest = forest
        # Snapshot of the segment's labels at construction time: the engine's
        # iterative deepening keeps growing the underlying forest object, and
        # the stabilisation test compares models taken at different depths, so
        # each model must remember which atoms *its* segment contained.
        self._labels = forest.labels()
        self.depth = depth
        self.converged = converged
        self.iterations = iterations

    # -- three-valued protocol ----------------------------------------------------

    def is_true(self, atom: Atom) -> bool:
        """Is the ground atom well-founded (true in WFS(D, Σ))?"""
        return self._lp_model.is_true(atom)

    def is_false(self, atom: Atom) -> bool:
        """Is the ground atom unfounded (false in WFS(D, Σ))?

        Atoms that label no node of the chase segment have no forward proof
        and are reported false, matching the paper's characterisation that
        atoms outside ``F⁺(P)`` are certainly false.
        """
        if self._lp_model.is_true(atom):
            return False
        if self._lp_model.is_false(atom):
            return True
        return atom not in self._labels

    def is_undefined(self, atom: Atom) -> bool:
        """Does the atom carry the third truth value?"""
        return not self.is_true(atom) and not self.is_false(atom)

    def value(self, atom: Atom) -> str:
        """The :class:`~repro.lp.interpretation.TruthValue` of the atom."""
        if self.is_true(atom):
            return TruthValue.TRUE
        if self.is_false(atom):
            return TruthValue.FALSE
        return TruthValue.UNDEFINED

    def holds(self, literal: Literal) -> bool:
        """Is the ground literal a consequence under the WFS?"""
        if literal.positive:
            return self.is_true(literal.atom)
        return self.is_false(literal.atom)

    # -- views ----------------------------------------------------------------------

    def true_atoms(self) -> frozenset[Atom]:
        """The well-founded atoms of the materialised segment."""
        return self._lp_model.true_atoms()

    def false_atoms(self) -> frozenset[Atom]:
        """The unfounded atoms occurring in the materialised segment."""
        return self._lp_model.false_atoms()

    def undefined_atoms(self) -> frozenset[Atom]:
        """The undefined atoms of the materialised segment."""
        return self._lp_model.undefined_atoms()

    def literals(self) -> list[Literal]:
        """All defined literals over the materialised segment."""
        return list(self._lp_model.literals())

    def segment_atoms(self) -> frozenset[Atom]:
        """All atoms labelling nodes of the segment this model was computed on."""
        return self._labels

    def forest(self) -> ChaseForest:
        """The materialised chase segment the model was computed on."""
        return self._forest

    def __repr__(self) -> str:
        return (
            f"DatalogWellFoundedModel(depth={self.depth}, converged={self.converged}, "
            f"{len(self.true_atoms())} true, {len(self.false_atoms())} false, "
            f"{len(self.undefined_atoms())} undefined)"
        )


@dataclass
class _RewriteOutcome:
    """Cached result of rewriting one query: the model to evaluate it on."""

    model: ThreeValuedLike
    stats: dict


#: Per-engine LRU bounds: each rewrite outcome pins a restricted WFS model and
#: each pruned sub-engine a whole chase segment, so both caches stay small.
_REWRITE_CACHE_SIZE = 128
_PRUNED_ENGINE_CACHE_SIZE = 8


class WellFoundedEngine:
    """Computes WFS(D, Σ) and answers NBCQs over it (Definition 3, Theorems 13/14).

    Parameters
    ----------
    program:
        A guarded normal Datalog± program, or program text to parse (facts in
        the text are added to the database).
    database:
        The database D (a :class:`Database`, an iterable of ground atoms, or
        text to parse).
    initial_depth, depth_step, max_depth:
        Iterative-deepening schedule for the chase segment.  ``max_depth``
        bounds the total work; if the stabilisation test has not fired by
        then, the engine either raises :class:`ConvergenceError` (``strict=True``)
        or returns the last approximation flagged ``converged=False``.
    max_nodes:
        Budget on the number of chase nodes materialised.
    require_guarded:
        Verify guardedness of Σ up front (the paper's decidability results
        are for guarded programs); disable only for experimentation.
    strict:
        Whether failing to stabilise raises instead of returning a flagged model.
    rewrite:
        Default for the ``rewrite=`` option of :meth:`holds` / :meth:`answer`:
        answer queries goal-directedly via the magic-sets rewriting of
        :mod:`repro.rewrite`, falling back to relevance-pruned unrewritten
        evaluation outside the supported fragment.
    sips:
        SIPS strategy used by the rewriting (``"left-to-right"`` or
        ``"bound-first"``, or a :class:`~repro.rewrite.sips.SIPSStrategy`).
    segment_cache:
        Memoize saturated chase subtrees by canonical atom type
        (:mod:`repro.chase.segments`) and splice them instead of re-deriving:
        iterative deepening only expands genuinely new types, and the store
        persists across engine instances (keyed by a program fingerprint) so
        repeated workloads — including rebuilt engines after an
        :mod:`repro.core.answering` LRU eviction and the relevance-pruned
        sub-engines of the rewrite fallback — skip straight to splicing.
        Answers are bit-identical with or without the cache (default on).
    saturation:
        Chase saturation discipline: ``"agenda"`` (default) drains the
        incremental worklist of :class:`~repro.chase.engine.GuardedChaseEngine`;
        ``"scan"`` runs the retained breadth-first re-scan rounds.  Both build
        bit-identical forests and models — ``"scan"`` exists as the
        differential-testing reference and benchmark baseline.
    agenda_order:
        Optional agenda scheduling hook (testing), forwarded to the chase
        engine; see :class:`~repro.chase.engine.GuardedChaseEngine`.
    incremental:
        Re-solve the well-founded model *incrementally* across the
        iterative-deepening schedule (default on): the dependency condensation
        of the growing ground program is maintained under rule insertion
        (:class:`~repro.lp.fixpoint.IncrementalCondensation`) and only the
        components the depth step's delta touched are re-solved, seeded from
        the previous depth's component solutions
        (:class:`~repro.lp.wfs.IncrementalWFS`).  ``incremental=False`` runs
        the from-scratch SCC-modular computation at every depth — the
        differential oracle the incremental test suites compare against.
        Models and answers are bit-identical either way.
    backend:
        Grounding backend for the magic-sets query path: ``"columnar"``
        (default; :class:`~repro.lp.columnar.ColumnarGrounder` — bulk hash
        joins over interned int columns), ``"tuple"`` (the per-candidate
        :class:`~repro.lp.grounding.SemiNaiveGrounder`, retained verbatim as
        the differential oracle; its nested-loop joins rescan whole predicate
        buckets and erase most of the rewriting's wall-clock win on join-heavy
        workloads — see ``docs/performance.md``), or ``"sqlite"`` (the same
        join plans executed by an in-memory sqlite database).  Propagated to
        the relevance-pruned fallback sub-engines and reported in
        :attr:`last_query_stats`; ground programs, models and answers are
        identical across backends.
    """

    def __init__(
        self,
        program: Union[DatalogPMProgram, str],
        database: Union[Database, Iterable[Atom], str, None] = None,
        *,
        initial_depth: int = 3,
        depth_step: int = 2,
        max_depth: int = 31,
        max_nodes: int = 500_000,
        require_guarded: bool = True,
        strict: bool = False,
        skolem_args: str = "universal",
        rewrite: bool = False,
        sips: str = "left-to-right",
        segment_cache: bool = True,
        saturation: str = "agenda",
        agenda_order=None,
        incremental: bool = True,
        backend: str = "columnar",
        workers: int = 1,
        parallel_executor: str = "auto",
    ):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown grounding backend {backend!r}; expected one of {BACKENDS}"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if isinstance(program, str):
            program, parsed_facts = parse_program(program)
        else:
            parsed_facts = None

        if database is None:
            database = Database()
        elif isinstance(database, str):
            database = parse_database(database)
        elif not isinstance(database, Database):
            database = Database(database)
        if parsed_facts is not None:
            database = database.copy()
            database.update(parsed_facts)

        if require_guarded:
            program.require_guarded()

        self.program = program
        self.database = database
        #: the database's mutation version at snapshot time; the engine's
        #: chase/model state is valid exactly while this matches (see
        #: :meth:`is_stale`)
        self._database_version = database.version
        self.skolemized = skolemize_program(program, skolem_args=skolem_args)
        self.initial_depth = initial_depth
        self.depth_step = depth_step
        self.max_depth = max_depth
        self.max_nodes = max_nodes
        self.strict = strict
        self.rewrite = rewrite
        self.sips = sips
        self.segment_cache = segment_cache
        self.saturation = saturation
        self.agenda_order = agenda_order
        self.incremental = incremental
        self.backend = backend
        #: worker-pool width for the condensation-DAG and chase-forest
        #: schedulers (:mod:`repro.lp.parallel`); ``1`` = the serial oracle
        self.workers = workers
        self.parallel_executor = parallel_executor
        self._require_guarded = require_guarded
        self._skolem_args = skolem_args
        #: statistics of the most recent ``holds``/``answer`` call (see
        #: :meth:`_query_model`); ``None`` until a query has been answered
        self.last_query_stats: Optional[dict] = None
        # Static-analysis report over (program, database), computed lazily by
        # :meth:`analysis` — its verdicts surface in every query's stats and
        # justify the planner decisions (magic eligibility, run-and-check).
        self._analysis_report = None
        # Per-query rewriting results and relevance-pruned sub-engines, both
        # keyed so repeated queries (the common workload) pay nothing twice;
        # bounded LRUs because entries pin models / whole sub-engines.
        self._rewrite_cache: "OrderedDict[tuple[Literal, ...], _RewriteOutcome]" = (
            OrderedDict()
        )
        self._pruned_engines: "OrderedDict[frozenset, WellFoundedEngine]" = (
            OrderedDict()
        )

        self._chase = GuardedChaseEngine(
            self.skolemized,
            database,
            max_nodes=max_nodes,
            require_guarded=require_guarded,
            segment_cache=segment_cache,
            saturation=saturation,
            agenda_order=agenda_order,
            workers=workers,
        )
        self._model: Optional[DatalogWellFoundedModel] = None
        # The ground program induced by the chase segment, grown incrementally
        # across iterative-deepening rounds: the forest is append-only, so each
        # round only feeds the nodes added since the previous depth into the
        # (also incrementally maintained) ground program and its rule index.
        self._ground = GroundProgram()
        self._ground_consumed = 0
        # Incremental WFS solver threaded through the deepening schedule: it
        # keeps the previous depth's component solutions and re-solves only
        # the components the depth step's delta touched (None when disabled).
        self._wfs_state: Optional[IncrementalWFS] = None
        # Frontier-type key cache (per label atom), valid while no model
        # literal inside the label's term domain changed value.  The pending
        # set accumulates the incremental solver's changed atoms between
        # stabilisation checks; terms index which cached labels each atom
        # change can possibly invalidate.
        self._frontier_key_cache: dict[Atom, tuple] = {}
        self._frontier_labels_by_term: dict = {}
        self._frontier_pending_changed: set[Atom] = set()

    # -- public API --------------------------------------------------------------------

    def is_stale(self) -> bool:
        """``True`` iff :attr:`database` mutated after this engine snapshot it.

        The engine's chase forest, ground program and cached model are all
        derived from the database as it was at construction time; a caller
        that mutates the database afterwards must rebuild (the shared-engine
        LRU in :mod:`repro.core.answering` re-checks this fingerprint on
        every hit) or use :class:`repro.views.MaterializedEngine`, which
        maintains its state under fact insertion/retraction instead of
        recomputing.
        """
        return self.database.version != self._database_version

    def analysis(self):
        """The static-analysis report of (program, database), computed lazily.

        One :func:`repro.analysis.analyze` pass per engine: lint findings,
        the dependency/stratification analysis and the acyclicity-hierarchy
        verdict that justifies the magic/materialization planning.  A compact
        slice of it is attached to every query's
        ``last_query_stats["analysis"]``.
        """
        if self._analysis_report is None:
            from ..analysis.planner import analyze

            self._analysis_report = analyze(self.program, self.database)
        return self._analysis_report

    def _analysis_summary(self) -> dict:
        """The stats-facing slice of :meth:`analysis` (cheap to copy)."""
        report = self.analysis()
        verdicts = report.verdicts
        return {
            "termination": verdicts.get("termination_criterion"),
            "chase_terminates": verdicts.get("chase_terminates"),
            "stratified": verdicts.get("stratified"),
            "guarded": verdicts.get("guarded"),
            "magic_eligible": verdicts.get("plan", {}).get("magic_eligible"),
            "run_and_check": verdicts.get("plan", {}).get("run_and_check"),
            "errors": len(report.errors()),
            "warnings": len(report.warnings()),
        }

    def model(self) -> DatalogWellFoundedModel:
        """The well-founded model WFS(D, Σ) (computed on first use, then cached).

        A :class:`~repro.exceptions.GroundingError` from an exhausted chase
        node budget is **sticky but resumable**: a retried ``model()`` call
        first finishes the interrupted saturation pass, so it re-raises while
        the budget is unchanged (it can never silently report a partially
        expanded forest as ``converged=True``) and succeeds — resuming from
        the partial forest instead of restarting — once the budget is raised
        (``engine.max_nodes`` / the chase engine's ``max_nodes``).
        """
        if self._model is None:
            self._model = self._compute()
        return self._model

    def holds(
        self,
        query: Union[NormalBCQ, str, Literal, Atom],
        *,
        rewrite: Optional[bool] = None,
    ) -> bool:
        """Does the NBCQ / literal / ground atom hold in WFS(D, Σ)?

        Strings are parsed as NBCQs (``"? p(X), not q(X)"``).  Ground atoms
        are treated as atomic queries; literals additionally allow asking for
        falsity (``not a`` holds iff ``a`` is unfounded).

        ``rewrite=True`` answers the query goal-directedly through the
        magic-sets rewriting (``None`` defers to the engine's ``rewrite``
        default); answers are identical either way.
        """
        if isinstance(query, str):
            query = parse_query(query)
        model = self._query_model(query_literals(query), rewrite)
        if isinstance(query, Atom):
            return model.is_true(query)
        if isinstance(query, Literal):
            return model.holds(query)
        return query_holds(query, model)

    def answer(
        self,
        query: Union[ConjunctiveQuery, str],
        *,
        constants_only: bool = True,
        rewrite: Optional[bool] = None,
    ) -> set[tuple[Term, ...]]:
        """Answers to a (non-Boolean) conjunctive query over the well-founded model.

        Following the paper's definition of CQ answers, answer tuples range
        over constants; set ``constants_only=False`` to also see tuples
        containing labelled nulls (Skolem terms).  ``rewrite`` behaves as in
        :meth:`holds`.
        """
        if isinstance(query, str):
            nbcq = parse_query(query)
            if nbcq.negative:
                raise ValueError(
                    "answer() takes a conjunctive query without negation; use holds() for NBCQs"
                )
            query = as_conjunctive_query(nbcq)
        model = self._query_model(query_literals(query), rewrite)
        answers = evaluate_query(query, model)
        if constants_only:
            answers = {
                tup for tup in answers if all(isinstance(t, Constant) for t in tup)
            }
        return answers

    def literal_value(self, atom: Atom) -> str:
        """The truth value of a ground atom in WFS(D, Σ)."""
        return self.model().value(atom)

    def ground_program(self) -> GroundProgram:
        """The ground program of the converged chase segment (computing it if needed)."""
        self.model()
        return self._ground

    # -- goal-directed (magic-sets) query path ------------------------------------------

    def _query_model(
        self, literals: tuple[Literal, ...], rewrite: Optional[bool]
    ) -> ThreeValuedLike:
        """The three-valued model a query should be evaluated against.

        With rewriting disabled this is the engine's full model; with
        rewriting enabled it is the WFS of the magic-restricted grounding
        (exact on every query-relevant atom) or, when the program/query pair
        falls outside the supported fragment, the model of a sub-engine
        pruned to the query-relevant predicates.  Either way the statistics
        of the decision are recorded in :attr:`last_query_stats`.
        """
        use_rewrite = self.rewrite if rewrite is None else rewrite
        if not use_rewrite:
            started = time.perf_counter()
            cache_hit = self._model is not None
            model = self.model()
            self.last_query_stats = {
                "mode": "classic",
                "ground_rules": len(self._ground),
                "chase_nodes": len(self._chase.forest),
                "depth": model.depth,
                "converged": model.converged,
                "segment_cache": self._chase.cache_stats["enabled"],
                "nodes_spliced": self._chase.cache_stats["nodes_spliced"],
                "incremental": self.incremental,
                "backend": self.backend,
                "workers": self.workers,
                "cache_hit": cache_hit,
                "rounds": model.iterations or 0,
                "seconds": time.perf_counter() - started,
                "analysis": self._analysis_summary(),
            }
            return model

        outcome = self._rewrite_cache.get(literals)
        if outcome is None:
            outcome = self._compute_rewritten(literals)
            self._rewrite_cache[literals] = outcome
            while len(self._rewrite_cache) > _REWRITE_CACHE_SIZE:
                self._rewrite_cache.popitem(last=False)
        else:
            self._rewrite_cache.move_to_end(literals)
            # flipped in place: callers (and tests) hold the cached stats
            # dict by identity, so a hit must not re-create it
            outcome.stats["cache_hit"] = True
        self.last_query_stats = outcome.stats
        return outcome.model

    def _compute_rewritten(self, literals: tuple[Literal, ...]) -> _RewriteOutcome:
        """Run the magic-sets pipeline for one query, falling back if needed."""
        started = time.perf_counter()
        plan = rewrite_for_query(self.skolemized.rules(), literals, sips=self.sips)
        fallback_reason = plan.reason
        if plan.supported:
            grounding = ground_magic(
                plan, self.database, max_atoms=self.max_nodes, backend=self.backend
            )
            if grounding.saturated:
                stats = {
                    "mode": "magic",
                    "sips": plan.sips,
                    "backend": self.backend,
                    "cache_hit": False,
                    "termination_criterion": plan.termination_criterion,
                    "analysis": self._analysis_summary(),
                    "relevant_predicates": len(plan.relevant_predicates()),
                    "adorned_predicates": len(plan.adorned.reachable),
                    "folded_adornments": plan.folded_adornments,
                    "magic_rules": plan.magic_rule_count,
                    "seconds": time.perf_counter() - started,
                    **grounding.stats(),
                }
                return _RewriteOutcome(
                    well_founded_model(
                        grounding.ground,
                        workers=self.workers,
                        executor=self.parallel_executor,
                    ),
                    stats,
                )
            fallback_reason = (
                f"magic grounding exceeded the atom budget of {self.max_nodes} "
                "without saturating"
            )
        model, relevant_rules = self._pruned_model(plan.relevant_predicates())
        stats = {
            "mode": "pruned-chase" if relevant_rules < len(self.program) else "full-chase",
            "sips": plan.sips,
            "backend": self.backend,
            "cache_hit": False,
            "rounds": model.iterations or 0,
            "fallback_reason": fallback_reason,
            # the fallback *is* run-and-check: budgeted iterative deepening
            # with dynamic convergence detection instead of a static cert
            "run_and_check": True,
            "analysis": self._analysis_summary(),
            "relevant_predicates": len(plan.relevant_predicates()),
            "rules_total": len(self.program),
            "rules_relevant": relevant_rules,
            "ground_rules": len(model.forest().edge_rules()),
            "seconds": time.perf_counter() - started,
        }
        return _RewriteOutcome(model, stats)

    def _pruned_model(
        self, relevant: frozenset
    ) -> tuple[DatalogWellFoundedModel, int]:
        """Unrewritten evaluation restricted to the query-relevant NTGDs.

        Rules whose head predicate the adorned query cannot reach never
        influence a query-relevant atom (the dependency closure is head →
        body, so the relevant rule set is downward closed); dropping them
        prunes the chase's existential expansions while leaving the
        well-founded values of all relevant atoms untouched.  Returns the
        model plus the relevant-rule count so the caller can report honestly
        whether any pruning actually happened.
        """
        pruned_rules = [n for n in self.program if n.head.predicate in relevant]
        if len(pruned_rules) == len(self.program):
            return self.model(), len(pruned_rules)
        key = frozenset(relevant)
        sub_engine = self._pruned_engines.get(key)
        if sub_engine is None:
            sub_engine = WellFoundedEngine(
                DatalogPMProgram(pruned_rules),
                self.database,
                initial_depth=self.initial_depth,
                depth_step=self.depth_step,
                max_depth=self.max_depth,
                max_nodes=self.max_nodes,
                require_guarded=self._require_guarded,
                strict=self.strict,
                skolem_args=self._skolem_args,
                segment_cache=self.segment_cache,
                saturation=self.saturation,
                agenda_order=self.agenda_order,
                incremental=self.incremental,
                backend=self.backend,
                workers=self.workers,
                parallel_executor=self.parallel_executor,
            )
            self._pruned_engines[key] = sub_engine
            while len(self._pruned_engines) > _PRUNED_ENGINE_CACHE_SIZE:
                self._pruned_engines.popitem(last=False)
        else:
            self._pruned_engines.move_to_end(key)
        return sub_engine.model(), len(pruned_rules)

    def chase_forest(self) -> ChaseForest:
        """The materialised chase segment used by the current model."""
        return self.model().forest()

    def segment_cache_stats(self) -> dict:
        """Counters of the chase-segment cache (see :mod:`repro.chase.segments`).

        ``hits``/``misses``/``splices``/``nodes_spliced``/``segments_recorded``
        are this engine's own traffic; ``store`` aggregates the persistent
        store shared by every engine over the same program fingerprint
        (absent when caching is disabled or unsupported).  The counters of the
        relevance-pruned sub-engines of the rewrite fallback are summed in
        under ``pruned_engines``.
        """
        stats: dict = dict(self._chase.cache_stats)
        store = self._chase.segment_store
        if store is not None:
            stats["store"] = store.stats()
            stats["fingerprint"] = store.fingerprint[:12]
        if self._pruned_engines:
            pruned = {
                "hits": 0,
                "misses": 0,
                "splices": 0,
                "nodes_spliced": 0,
                "segments_recorded": 0,
            }
            for sub_engine in self._pruned_engines.values():
                sub_stats = sub_engine.segment_cache_stats()
                for key in pruned:
                    pruned[key] += sub_stats.get(key, 0)
            stats["pruned_engines"] = pruned
        return stats

    def delta(self) -> int:
        """The theoretical locality constant δ of Prop. 12 for this program's schema."""
        return delta_bound(self.program.schema(self.database))

    def query_depth_bound(self, query: Union[NormalBCQ, str]) -> int:
        """The theoretical depth bound ``n·δ`` of Prop. 12 for a concrete query."""
        if isinstance(query, str):
            query = parse_query(query)
        return query_depth_bound(query, self.program.schema(self.database))

    # -- computation -------------------------------------------------------------------

    def _compute(self) -> DatalogWellFoundedModel:
        """Iterative deepening with the type-repetition stabilisation test."""
        # Budget raises on the engine reach the chase, so a retried model()
        # after a GroundingError can resume the interrupted saturation.
        self._chase.max_nodes = self.max_nodes
        previous: Optional[DatalogWellFoundedModel] = None
        previous_frontier_keys: Optional[frozenset] = None
        depth = self.initial_depth
        iterations = 0
        model: Optional[DatalogWellFoundedModel] = None

        while depth <= self.max_depth:
            iterations += 1
            self._chase.expand(depth)
            # Resuming after a budget raise: the chase may already be committed
            # to a deeper bound than this schedule step (the interrupted pass
            # finished there).  Fast-forward the schedule so consecutive
            # iterations always observe *genuinely different* depths —
            # otherwise the stabilisation test would compare the committed
            # forest to itself and report convergence without evidence.
            depth = max(depth, self._chase.depth_bound)
            lp_model = self._solve_wfs(self._ground_program())
            model = DatalogWellFoundedModel(
                lp_model,
                self._chase.forest,
                depth=depth,
                converged=False,
                iterations=iterations,
            )
            frontier_keys = self._frontier_type_keys(model)
            if previous is not None and self._stabilised(
                previous, model, previous_frontier_keys, frontier_keys
            ):
                model.converged = True
                break
            previous = model
            previous_frontier_keys = frontier_keys
            depth += self.depth_step

        if model is None:  # pragma: no cover - max_depth < initial_depth misuse
            raise ConvergenceError("max_depth is smaller than initial_depth", depth=self.max_depth)
        if not model.converged and self.strict:
            raise ConvergenceError(
                f"well-founded model did not stabilise within depth {self.max_depth}",
                partial_model=model,
                depth=self.max_depth,
            )
        return model

    def _solve_wfs(self, ground: GroundProgram) -> WellFoundedModel:
        """The WFS of the segment's ground program, incremental when enabled.

        The incremental solver is bound to the engine's persistent
        :class:`GroundProgram` (grown in place by :meth:`_ground_program`), so
        consecutive deepening rounds re-solve only the components the new
        ground rules touched.  The from-scratch path (``incremental=False``)
        computes the identical model cold and serves as the differential
        oracle.
        """
        if not self.incremental:
            return well_founded_model(
                ground, workers=self.workers, executor=self.parallel_executor
            )
        model, self._wfs_state = well_founded_model_incremental(
            ground,
            self._wfs_state,
            workers=self.workers,
            executor=self.parallel_executor,
        )
        # Accumulate (never overwrite) value changes so the frontier-type key
        # cache sees every change since it was last consulted, even if the
        # solver runs more than once in between.
        self._frontier_pending_changed |= self._wfs_state.last_changed_atoms
        return model

    def _ground_program(self) -> GroundProgram:
        """The finite ground program induced by the materialised chase segment.

        The forest only ever grows, so instead of rebuilding the program (and
        its worklist index) from scratch at every depth, the nodes appended
        since the last call are folded into the persistent program: roots
        contribute their labels as facts, inner nodes their edge rules.
        """
        nodes = self._chase.forest.nodes()
        for node in nodes[self._ground_consumed:]:
            if node.is_root():
                self._ground.add(NormalRule(node.label))
            else:
                self._ground.add(node.edge_rule)
        self._ground_consumed = len(nodes)
        return self._ground

    def _frontier_type_keys(self, model: DatalogWellFoundedModel) -> frozenset:
        """Canonical type keys of the current frontier nodes, w.r.t. *model*.

        The type of a frontier node is the paper's ``(a, S)`` computed against
        the current approximation: the node's label together with every
        defined literal whose arguments all occur among the label's arguments,
        canonicalised up to renaming of nulls (:class:`repro.chase.types.AtomType`).

        Per-label keys are cached across deepening rounds when the
        incremental solver is active: a label's key only depends on the
        defined literals inside its term domain, so a cached key stays valid
        until some atom sharing a term with the label (or a nullary atom)
        changes truth value — exactly the change set
        :class:`~repro.lp.wfs.IncrementalWFS` reports.  Labels repeat heavily
        across frontiers (isomorphic subtrees), so on stabilising rounds the
        whole check degenerates to cache lookups.
        """
        forest = self._chase.forest
        frontier = [n for n in forest.nodes() if n.depth == self._chase.depth_bound]
        if not frontier:
            return frozenset()

        cache = self._frontier_key_cache
        by_term = self._frontier_labels_by_term
        use_cache = self.incremental and self._wfs_state is not None
        if use_cache:
            pending = self._frontier_pending_changed
            self._frontier_pending_changed = set()
            for atom in pending:
                if not atom.args:
                    # a nullary literal lies in every label's domain
                    cache.clear()
                    by_term.clear()
                    break
                for term in set(atom.args):
                    for label in by_term.pop(term, ()):
                        cache.pop(label, None)
        elif cache:
            cache.clear()
            by_term.clear()

        labels = {node.label for node in frontier}
        keys: dict[Atom, tuple] = {
            label: cache[label] for label in labels if label in cache
        }
        missing = [label for label in labels if label not in keys]
        if missing:
            literals = model.literals()

            # Index model literals by argument term so that the per-node type
            # computation only inspects literals that can possibly lie inside
            # the node's domain (instead of scanning the full model per node).
            literals_by_term: dict[Term, list[Literal]] = {}
            nullary_literals: list[Literal] = []
            for literal in literals:
                args = literal.atom.args
                if not args:
                    nullary_literals.append(literal)
                    continue
                for term in set(args):
                    literals_by_term.setdefault(term, []).append(literal)

            for label in missing:
                domain = set(label.args)
                candidates: set[Literal] = set(nullary_literals)
                for term in domain:
                    candidates.update(literals_by_term.get(term, ()))
                selected = frozenset(
                    lit for lit in candidates if set(lit.atom.args) <= domain
                )
                key = AtomType(label, selected).key()
                keys[label] = key
                if use_cache:
                    cache[label] = key
                    for term in domain:
                        by_term.setdefault(term, set()).add(label)

        return frozenset(keys.values())

    def _stabilised(
        self,
        previous: DatalogWellFoundedModel,
        current: DatalogWellFoundedModel,
        previous_frontier_keys: Optional[frozenset],
        current_frontier_keys: frozenset,
    ) -> bool:
        """The engine's convergence test (see DESIGN.md, Sec. 2.2).

        Two conditions, both grounded in the locality lemma (Lemma 11):

        (a) the *frontier looks the same as last round*: the set of canonical
            frontier type keys is unchanged between the previous and the
            current depth (an empty frontier — a terminating chase — counts
            as stable);
        (b) the truth values of all atoms of the previous segment are
            unchanged by the deeper expansion.

        Because isomorphic types generate isomorphic subtrees with isomorphic
        well-founded submodels, a repeating frontier together with stable
        interior values means further expansion can only add isomorphic copies
        of structure that is already accounted for.
        """
        # (b) value stability over the previous segment
        for atom in previous.segment_atoms():
            if previous.value(atom) != current.value(atom):
                return False

        # (a) frontier stability
        if not current_frontier_keys:
            return True
        if previous_frontier_keys is None:
            return False
        return current_frontier_keys == previous_frontier_keys

    def __repr__(self) -> str:
        status = "unevaluated" if self._model is None else repr(self._model)
        return f"WellFoundedEngine({len(self.program)} NTGDs, |D|={len(self.database)}, {status})"
