"""The paper's contribution: WFS for guarded normal Datalog± under the UNA.

* :class:`WellFoundedEngine` / :class:`DatalogWellFoundedModel` — Definition 3
  made executable (chase segment + exact finite WFS + locality-based
  stabilisation).
* :mod:`repro.core.forward_proof` — forward proofs and the Ŵ_P operator
  (Definitions 5/7, Theorem 8).
* :mod:`repro.core.wcheck` — path-based literal membership (the WCHECK idea of
  Sec. 4).
* :mod:`repro.core.answering` — one-shot NBCQ answering helpers (Theorem 14).
* :mod:`repro.core.locality` — the δ bound of Prop. 12.
* :mod:`repro.core.stratified` — the stratified Datalog± baseline of [1].
"""

from .answering import (
    answer_query,
    certain_answers,
    clear_engine_cache,
    engine_cache_info,
    holds_under_wfs,
    shared_engine,
)
from .constraints import (
    EGD,
    ConstraintViolation,
    NegativeConstraint,
    check_constraints,
    is_consistent,
)
from .engine import DatalogWellFoundedModel, WellFoundedEngine
from .forward_proof import (
    ForwardProof,
    find_forward_proof,
    provable_atoms,
    what_fixpoint,
    what_operator,
)
from .locality import delta_bound, query_depth_bound, type_count_bound
from .stratified import StratifiedDatalogPM, StratifiedModel
from .wcheck import path_witness, wcheck_atom, wcheck_literal

__all__ = [
    "answer_query",
    "certain_answers",
    "clear_engine_cache",
    "engine_cache_info",
    "holds_under_wfs",
    "shared_engine",
    "EGD",
    "ConstraintViolation",
    "NegativeConstraint",
    "check_constraints",
    "is_consistent",
    "DatalogWellFoundedModel",
    "WellFoundedEngine",
    "ForwardProof",
    "find_forward_proof",
    "provable_atoms",
    "what_fixpoint",
    "what_operator",
    "delta_bound",
    "query_depth_bound",
    "type_count_bound",
    "StratifiedDatalogPM",
    "StratifiedModel",
    "path_witness",
    "wcheck_atom",
    "wcheck_literal",
]
