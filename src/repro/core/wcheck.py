"""WCHECK-style membership checks via root-to-atom paths (Sec. 4 of the paper).

The paper's WCHECK algorithm decides whether a ground atom belongs to the
well-founded model by searching for a *path* in ``F⁺(D ∪ Σ^f)`` from a root
node to a node labelled with the atom such that every *side literal* along
the path — the non-guard positive body atoms and the negated body atoms of
the rules applied on the path — belongs to the well-founded model; this is a
sufficient and necessary condition (Sec. 4).  Dually, a ground atom is false
iff every path to it is blocked by a side literal whose complement holds (and
atoms labelling no node at all are false).

The original algorithm is an alternating procedure that re-verifies side
literals by launching subcomputations, which is what yields the 2-EXPTIME
worst-case bound.  Here the forest segment is already materialised and the
engine's fixpoint is available, so the implementation

* enumerates the (finitely many) nodes labelled with the atom,
* extracts the side literals of each root-to-node path
  (:meth:`repro.chase.forest.ChaseForest.side_literals_of_path`),
* verifies them against the model — either the engine's fixpoint (default)
  or recursively with memoisation (``recursive=True``), which mirrors the
  subcomputation structure of WCHECK itself.

The functions double as an independent cross-check of the engine: for every
atom of the segment, path-membership and fixpoint-membership must agree
(asserted by the integration tests).
"""

from __future__ import annotations

from typing import Optional, Union

from ..lang.atoms import Atom, Literal
from ..chase.forest import ChaseForest
from .engine import DatalogWellFoundedModel, WellFoundedEngine

__all__ = ["wcheck_atom", "wcheck_literal", "path_witness"]


def _resolve(
    model_or_engine: Union[DatalogWellFoundedModel, WellFoundedEngine],
) -> DatalogWellFoundedModel:
    """Accept either an engine or an already-computed model."""
    if isinstance(model_or_engine, WellFoundedEngine):
        return model_or_engine.model()
    return model_or_engine


def _side_literals_hold(
    forest: ChaseForest,
    node_id: int,
    is_true,
    is_false,
) -> bool:
    """Do all side literals of the root-to-node path hold under the given tests?"""
    positive, negative = forest.side_literals_of_path(node_id)
    return all(is_true(a) for a in positive) and all(is_false(a) for a in negative)


def wcheck_atom(
    model_or_engine: Union[DatalogWellFoundedModel, WellFoundedEngine],
    atom: Atom,
    *,
    recursive: bool = False,
) -> bool:
    """Decide ``atom ∈ WFS(D, Σ)`` by the path criterion of Sec. 4.

    With ``recursive=True`` the side literals are themselves verified by the
    path criterion (with memoisation and a cycle check) instead of by the
    engine's fixpoint; positive cyclic dependencies fail the check, which is
    the well-founded reading.
    """
    model = _resolve(model_or_engine)
    forest = model.forest()
    if recursive:
        return _recursive_check(forest, model, atom, True, {})
    return any(
        _side_literals_hold(forest, node.node_id, model.is_true, model.is_false)
        for node in forest.nodes_with_label(atom)
    )


def wcheck_literal(
    model_or_engine: Union[DatalogWellFoundedModel, WellFoundedEngine],
    literal: Literal,
    *,
    recursive: bool = False,
) -> bool:
    """Decide whether a ground literal is a consequence, by the path criterion.

    For a positive literal this is :func:`wcheck_atom`.  For a negative
    literal ``¬a``: every path to a node labelled ``a`` must be blocked by a
    side literal whose complement belongs to the model (atoms labelling no
    node are vacuously false).
    """
    model = _resolve(model_or_engine)
    forest = model.forest()
    if literal.positive:
        return wcheck_atom(model, literal.atom, recursive=recursive)

    nodes = forest.nodes_with_label(literal.atom)
    if not nodes:
        return True
    if recursive:
        return _recursive_check(forest, model, literal.atom, False, {})
    for node in nodes:
        positive, negative = forest.side_literals_of_path(node.node_id)
        blocked = any(model.is_false(a) for a in positive) or any(
            model.is_true(a) for a in negative
        )
        if not blocked:
            return False
    return True


def path_witness(
    model_or_engine: Union[DatalogWellFoundedModel, WellFoundedEngine],
    atom: Atom,
) -> Optional[list[Atom]]:
    """Return the labels of a witnessing root-to-atom path, or ``None``.

    Useful for explanations: the returned list starts at a database fact and
    ends at *atom*; every rule applied along it has its side literals in the
    well-founded model.
    """
    model = _resolve(model_or_engine)
    forest = model.forest()
    for node in forest.nodes_with_label(atom):
        if _side_literals_hold(forest, node.node_id, model.is_true, model.is_false):
            path = list(reversed(forest.path_to_root(node.node_id)))
            return [n.label for n in path]
    return None


def _recursive_check(
    forest: ChaseForest,
    model: DatalogWellFoundedModel,
    atom: Atom,
    want_true: bool,
    memo: dict[tuple[Atom, bool], Optional[bool]],
) -> bool:
    """Recursive side-literal verification with memoisation.

    ``memo`` maps ``(atom, want_true)`` to ``True``/``False`` once decided and
    to ``None`` while a check is in progress; hitting an in-progress entry
    means a cyclic positive dependency, which is read as failure for positive
    goals (not well-founded) and as "not blocked by this literal" for the
    negative direction.
    """
    key = (atom, want_true)
    if key in memo:
        cached = memo[key]
        return False if cached is None else cached
    memo[key] = None

    nodes = forest.nodes_with_label(atom)
    if want_true:
        result = False
        for node in nodes:
            positive, negative = forest.side_literals_of_path(node.node_id)
            if all(
                _recursive_check(forest, model, a, True, memo) for a in positive
            ) and all(
                _recursive_check(forest, model, a, False, memo) for a in negative
            ):
                result = True
                break
    else:
        if not nodes:
            result = True
        else:
            result = True
            for node in nodes:
                positive, negative = forest.side_literals_of_path(node.node_id)
                blocked = any(
                    _recursive_check(forest, model, a, False, memo) for a in positive
                ) or any(_recursive_check(forest, model, a, True, memo) for a in negative)
                if not blocked:
                    result = False
                    break

    memo[key] = result
    return result
