"""Convenience entry points for NBCQ answering under WFS(D, Σ) (Theorem 14).

These module-level functions wrap :class:`~repro.core.engine.WellFoundedEngine`
for one-shot use.  Because real workloads ask *several* one-shot questions
against the same (D, Σ), the helpers share a small module-level LRU of engines
keyed by the identity of the program/database pair (plus the engine options):
repeated ``holds_under_wfs`` calls against the same objects reuse the cached
engine — and with it the chase segment, the ground program, its rule index and
any per-query rewriting results — instead of rebuilding everything from
scratch.  Applications that want full control can still construct a
:class:`WellFoundedEngine` themselves (or call :func:`shared_engine`).

The LRU composes with the chase-segment cache (:mod:`repro.chase.segments`):
engine options — including ``segment_cache`` — are part of the cache key, and
even when an engine is evicted and later rebuilt for the same program, the
rebuilt engine re-enters the persistent per-fingerprint segment store and
splices its chase segment instead of re-deriving it, so eviction costs far
less than the original construction did.

Cache keys use *identity* (``id``) for program/database objects — holding a
strong reference to the keyed objects so identities cannot be recycled — and
*value* for textual programs/databases.  Anything else (e.g. a one-off
generator of atoms) bypasses the cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterable, Optional, Union

from ..lang.atoms import Atom, Literal
from ..lang.program import Database, DatalogPMProgram
from ..lang.queries import ConjunctiveQuery, NormalBCQ
from ..lang.terms import Constant, Term
from .engine import DatalogWellFoundedModel, WellFoundedEngine

__all__ = [
    "holds_under_wfs",
    "answer_query",
    "certain_answers",
    "shared_engine",
    "clear_engine_cache",
    "invalidate_engine",
    "engine_cache_info",
]

#: Maximum number of (program, database, options) engines kept alive.
ENGINE_CACHE_SIZE = 16

_cache_lock = threading.Lock()
#: key → (program ref, database ref, engine, per-engine lock); the refs pin
#: the ids used in the key, the lock serialises helper calls on the shared
#: engine (the engine's lazy chase/model/rewrite paths are not thread-safe)
_engine_cache: "OrderedDict[tuple, tuple[object, object, WellFoundedEngine, threading.RLock]]" = (
    OrderedDict()
)
_cache_hits = 0
_cache_misses = 0


def _cache_key(program, database, engine_options: dict) -> Optional[tuple]:
    """A hashable cache key, or ``None`` when the inputs cannot be keyed safely.

    Program objects are keyed by identity *plus size* (programs are
    append-only, so any effective mutation changes ``len``).  Database objects
    are keyed by identity plus their *mutation version*: databases support
    removal (:meth:`~repro.lang.program.Database.discard`), so ``len`` is not
    a fingerprint — an add followed by a remove returns to the old size but
    must not return to the old engine.  The version counter is re-read on
    every lookup, so a mutated database always misses and lands on a fresh
    engine; :func:`invalidate_engine` additionally drops the dead entries
    eagerly.
    """
    try:
        options = tuple(sorted(engine_options.items()))
        hash(options)
    except TypeError:
        return None
    if isinstance(program, str):
        program_key: object = ("text", program)
    elif isinstance(program, DatalogPMProgram):
        program_key = ("id", id(program), len(program))
    else:
        return None
    if database is None or isinstance(database, str):
        database_key: object = ("value", database)
    elif isinstance(database, Database):
        database_key = ("id", id(database), database.version)
    else:
        return None  # arbitrary iterables may be one-shot; never cache them
    return (program_key, database_key, options)


def _shared_entry(
    program, database, engine_options: dict
) -> tuple[WellFoundedEngine, Optional[threading.RLock]]:
    """The cached engine plus its serialisation lock (``None`` when uncached)."""
    global _cache_hits, _cache_misses
    with _cache_lock:
        # The key embeds Database.version; reading it under the cache lock
        # makes the version, the is_stale() recheck and the eviction one
        # atomic step — a concurrent mutation can no longer interleave
        # between the version read and the hit decision.
        key = _cache_key(program, database, engine_options)
        if key is not None:
            entry = _engine_cache.get(key)
            if entry is not None:
                if entry[2].is_stale():
                    # Defence in depth: the versioned key should already have
                    # missed, but a caller that mutated the engine's *own*
                    # database copy (text programs hold one) can still land
                    # here — never serve answers from a stale engine.
                    del _engine_cache[key]
                else:
                    _engine_cache.move_to_end(key)
                    _cache_hits += 1
                    return entry[2], entry[3]
    if key is None:
        return WellFoundedEngine(program, database, **engine_options), None
    engine = WellFoundedEngine(program, database, **engine_options)
    lock = threading.RLock()
    with _cache_lock:
        # Another thread may have raced us here; keep whichever engine landed
        # first so every caller agrees on one engine per key.
        entry = _engine_cache.get(key)
        if entry is not None:
            _cache_hits += 1
            return entry[2], entry[3]
        _cache_misses += 1
        # Purge entries this one supersedes: same identity-keyed objects at an
        # older size/version.  Both fingerprints only grow, so those keys can
        # never be hit again; without the purge a mutate-and-query loop fills
        # the LRU with dead engines and evicts live ones.
        for stale in [
            k
            for k in _engine_cache
            if k[2] == key[2]
            and _supersedes(key[0], k[0])
            and _supersedes(key[1], k[1])
            and k != key
        ]:
            del _engine_cache[stale]
        _engine_cache[key] = (program, database, engine, lock)
        while len(_engine_cache) > ENGINE_CACHE_SIZE:
            _engine_cache.popitem(last=False)
    return engine, lock


def _drop_cached_engine(engine: WellFoundedEngine) -> None:
    """Remove the cache entry holding *engine* (identity match), if any."""
    with _cache_lock:
        for key, entry in list(_engine_cache.items()):
            if entry[2] is engine:
                del _engine_cache[key]
                break


def _call_with_shared_engine(program, database, engine_options: dict, invoke):
    """Run *invoke(engine)* against the shared engine, never on a stale one.

    :func:`_shared_entry` decides hit-or-miss under the cache lock, but the
    engine call itself happens later under the *per-engine* lock — a
    concurrent ``Database`` mutation can land in between, and an engine that
    was fresh at lookup time would then serve a model of the old database.
    So the staleness test is repeated under the engine lock: once it passes
    there, no answer from a knowably stale engine can escape (a mutation
    arriving mid-call is indistinguishable from one arriving just after the
    call — the answer is correct for the serialisation point).  On a failed
    recheck the dead entry is dropped and the lookup retried against the
    database's current version, which builds or finds a fresh engine.
    """
    while True:
        engine, lock = _shared_entry(program, database, engine_options)
        if lock is None:
            return invoke(engine)
        with lock:
            if not engine.is_stale():
                return invoke(engine)
        _drop_cached_engine(engine)


def _supersedes(new_component, old_component) -> bool:
    """Does the new key component make the old one permanently unreachable?"""
    if new_component == old_component:
        return True
    return (
        isinstance(new_component, tuple)
        and isinstance(old_component, tuple)
        and len(new_component) == 3
        and len(old_component) == 3
        and new_component[0] == "id"
        and old_component[0] == "id"
        and new_component[1] == old_component[1]
    )


def shared_engine(
    program: Union[DatalogPMProgram, str],
    database: Union[Database, Iterable[Atom], str, None] = None,
    **engine_options,
) -> WellFoundedEngine:
    """A :class:`WellFoundedEngine` from the module-level LRU (built on miss).

    The returned engine is shared across callers of the same
    program/database/options triple and is **not** internally thread-safe;
    concurrent users should either go through :func:`holds_under_wfs` /
    :func:`answer_query` (which serialise per engine) or synchronise
    themselves.
    """
    engine, _ = _shared_entry(program, database, engine_options)
    return engine


def invalidate_engine(
    program: object = None, database: object = None
) -> int:
    """Eagerly drop cached engines built against *program* and/or *database*.

    The version-fingerprinted keys already guarantee a mutated database never
    *serves* a stale engine (the lookup key moves on); this hook additionally
    releases the dead entries (and the object references pinning them) the
    moment a caller knows a mutation happened, instead of waiting for LRU
    pressure.  Matching is by object identity on whichever arguments are
    given; returns the number of entries dropped.
    """
    targets = [id(obj) for obj in (program, database) if obj is not None]
    if not targets:
        return 0
    dropped = 0
    with _cache_lock:
        for key in [
            k
            for k in _engine_cache
            if any(
                isinstance(component, tuple)
                and len(component) == 3
                and component[0] == "id"
                and component[1] in targets
                for component in k[:2]
            )
        ]:
            del _engine_cache[key]
            dropped += 1
    return dropped


def clear_engine_cache() -> None:
    """Drop every cached engine (used by tests and long-running services)."""
    global _cache_hits, _cache_misses
    with _cache_lock:
        _engine_cache.clear()
        _cache_hits = 0
        _cache_misses = 0


def engine_cache_info() -> dict:
    """Hit/miss/size counters of the shared engine cache."""
    with _cache_lock:
        return {
            "size": len(_engine_cache),
            "maxsize": ENGINE_CACHE_SIZE,
            "hits": _cache_hits,
            "misses": _cache_misses,
        }


def holds_under_wfs(
    program: Union[DatalogPMProgram, str],
    database: Union[Database, Iterable[Atom], str, None],
    query: Union[NormalBCQ, Literal, Atom, str],
    *,
    rewrite: Optional[bool] = None,
    **engine_options,
) -> bool:
    """Decide ``WFS(D, Σ) |= Q`` for an NBCQ (or ground literal/atom) Q.

    ``engine_options`` are forwarded to :class:`WellFoundedEngine` (depth
    schedule, strictness, ...); ``rewrite`` selects the goal-directed
    magic-sets query path (see :meth:`WellFoundedEngine.holds`).  The engine
    itself is served from the shared LRU, so repeated calls against the same
    program/database do not rebuild the chase segment.
    """
    return _call_with_shared_engine(
        program,
        database,
        engine_options,
        lambda engine: engine.holds(query, rewrite=rewrite),
    )


def answer_query(
    program: Union[DatalogPMProgram, str],
    database: Union[Database, Iterable[Atom], str, None],
    query: Union[ConjunctiveQuery, str],
    *,
    constants_only: bool = True,
    rewrite: Optional[bool] = None,
    **engine_options,
) -> set[tuple[Term, ...]]:
    """All answers to a (non-Boolean) conjunctive query over WFS(D, Σ)."""
    return _call_with_shared_engine(
        program,
        database,
        engine_options,
        lambda engine: engine.answer(
            query, constants_only=constants_only, rewrite=rewrite
        ),
    )


def certain_answers(
    model: DatalogWellFoundedModel,
    query: ConjunctiveQuery,
) -> set[tuple[Constant, ...]]:
    """Answers to *query* over an already-computed model, restricted to constants.

    The paper defines CQ answers as tuples over ``Δ``; tuples containing
    labelled nulls are therefore filtered out here.
    """
    from ..lang.queries import evaluate_query

    answers = evaluate_query(query, model)
    return {
        tup for tup in answers if all(isinstance(t, Constant) for t in tup)
    }
