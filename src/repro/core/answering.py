"""Convenience entry points for NBCQ answering under WFS(D, Σ) (Theorem 14).

These module-level functions wrap :class:`~repro.core.engine.WellFoundedEngine`
for one-shot use; applications that ask several queries against the same
(D, Σ) should construct an engine once and reuse it (the chase segment and
the fixpoint are cached on the engine).
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from ..lang.atoms import Atom, Literal
from ..lang.program import Database, DatalogPMProgram
from ..lang.queries import ConjunctiveQuery, NormalBCQ
from ..lang.terms import Constant, Term
from .engine import DatalogWellFoundedModel, WellFoundedEngine

__all__ = ["holds_under_wfs", "answer_query", "certain_answers"]


def holds_under_wfs(
    program: Union[DatalogPMProgram, str],
    database: Union[Database, Iterable[Atom], str, None],
    query: Union[NormalBCQ, Literal, Atom, str],
    **engine_options,
) -> bool:
    """Decide ``WFS(D, Σ) |= Q`` for an NBCQ (or ground literal/atom) Q.

    ``engine_options`` are forwarded to :class:`WellFoundedEngine` (depth
    schedule, strictness, ...).
    """
    engine = WellFoundedEngine(program, database, **engine_options)
    return engine.holds(query)


def answer_query(
    program: Union[DatalogPMProgram, str],
    database: Union[Database, Iterable[Atom], str, None],
    query: Union[ConjunctiveQuery, str],
    *,
    constants_only: bool = True,
    **engine_options,
) -> set[tuple[Term, ...]]:
    """All answers to a (non-Boolean) conjunctive query over WFS(D, Σ)."""
    engine = WellFoundedEngine(program, database, **engine_options)
    return engine.answer(query, constants_only=constants_only)


def certain_answers(
    model: DatalogWellFoundedModel,
    query: ConjunctiveQuery,
) -> set[tuple[Constant, ...]]:
    """Answers to *query* over an already-computed model, restricted to constants.

    The paper defines CQ answers as tuples over ``Δ``; tuples containing
    labelled nulls are therefore filtered out here.
    """
    from ..lang.queries import evaluate_query

    answers = evaluate_query(query, model)
    return {
        tup for tup in answers if all(isinstance(t, Constant) for t in tup)
    }
