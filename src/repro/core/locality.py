"""Locality: the depth bound δ of Proposition 12.

Prop. 12 states: for a schema ``R`` with maximum arity ``w``, let

    δ := 2 · |R| · (2w)^w · 2^{|R| · (2w)^w}

Then, if an NBCQ ``Q`` with ``n`` literals holds in ``WFS(D ∪ Σ^f)``, there is
a homomorphism μ witnessing this such that every positive query atom is
matched at depth at most ``n·δ`` of ``F*(P)``, and every negative query atom
is either absent from ``F⁺(P)`` altogether or matched at depth at most
``n·δ``.

The bound is *doubly exponential* in the arity and exponential in the schema
size — astronomically large even for toy schemas — so the practical engine
(:mod:`repro.core.engine`) uses a type-repetition convergence test instead and
treats δ only as the worst-case guarantee.  This module exposes the bound and
a couple of helpers so the locality experiment (E6 in DESIGN.md) can compare
the depth at which answers *actually* stabilise with the theoretical bound.
"""

from __future__ import annotations

from typing import Union

from ..lang.program import Database, DatalogPMProgram, Schema
from ..lang.queries import NormalBCQ
from ..chase.types import max_type_count

__all__ = ["delta_bound", "query_depth_bound", "type_count_bound"]


def type_count_bound(schema: Schema) -> int:
    """The number of non-isomorphic types used in the proof of Prop. 12.

    This is ``|R| · (2w)^w · 2^{|R| · (2w)^w}`` — half of δ.
    """
    return max_type_count(len(schema), schema.max_arity())


def delta_bound(schema: Union[Schema, DatalogPMProgram]) -> int:
    """The constant δ of Prop. 12 for the given schema (or program).

    ``δ = 2 · |R| · (2w)^w · 2^{|R|·(2w)^w}`` where ``w`` is the maximum
    predicate arity of the schema.  Accepts a :class:`DatalogPMProgram` for
    convenience, in which case the schema is inferred from the program.
    """
    if isinstance(schema, DatalogPMProgram):
        schema = schema.schema()
    return 2 * type_count_bound(schema)


def query_depth_bound(
    query: NormalBCQ,
    schema: Union[Schema, DatalogPMProgram],
) -> int:
    """The depth bound ``n · δ`` of Prop. 12 for a concrete query.

    ``n`` is the number of literals of the query.  Any query match that exists
    at all exists within this depth of the chase forest; the engine's
    convergence test typically stops orders of magnitude earlier.
    """
    return query.size() * delta_bound(schema)
