"""Negative constraints and equality-generating dependencies (EGDs).

The paper's conclusion lists "how to add negative constraints and
equality-generating dependencies (EGDs), similarly to [1]" as future work.
This module implements the straightforward part of that programme, following
the treatment of [1] (Calì, Gottlob & Lukasiewicz 2012) adapted to the
three-valued well-founded model and the UNA:

* a **negative constraint** ``∀X Φ(X) → ⊥`` is *violated* when its body — a
  conjunction of atoms and negated atoms, evaluated exactly like an NBCQ — is
  satisfied in the well-founded model;
* an **EGD** ``∀X Φ(X) → Xᵢ = Xⱼ`` is checked in the *separability* style of
  [1]: every homomorphism from Φ into the (true atoms of the) well-founded
  model must equate the two terms.  Under the UNA two distinct constants can
  never be equated, so such a match is a hard violation; a match that equates
  a labelled null with a constant or with another null is reported as a
  *soft* violation (the chase here never repairs by unification — exactly the
  situation where [1] requires separability for the semantics to be
  well-behaved).

The checker does not alter the semantics of the program: it is a validation
layer on top of a computed :class:`~repro.core.engine.DatalogWellFoundedModel`
(or an engine), mirroring how [1] first checks constraints against the chase
and then answers queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

from ..exceptions import IllFormedRuleError
from ..lang.atoms import Atom, variables_of_atoms
from ..lang.queries import NormalBCQ, query_holds
from ..lang.substitution import Substitution, match
from ..lang.terms import Constant, Term, Variable
from .engine import DatalogWellFoundedModel, WellFoundedEngine

__all__ = [
    "NegativeConstraint",
    "EGD",
    "ConstraintViolation",
    "check_constraints",
    "is_consistent",
]


@dataclass(frozen=True)
class NegativeConstraint:
    """A negative constraint ``Φ(X) → ⊥`` with an NBCQ-style body.

    ``body_pos`` / ``body_neg`` are the positive and negated body atoms; the
    constraint is violated iff the body is satisfied in the well-founded
    model (positive atoms true, negated atoms false, as for NBCQs).
    """

    body_pos: tuple[Atom, ...]
    body_neg: tuple[Atom, ...] = ()
    label: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "body_pos", tuple(self.body_pos))
        object.__setattr__(self, "body_neg", tuple(self.body_neg))
        if not self.body_pos:
            raise IllFormedRuleError("a negative constraint needs at least one positive body atom")

    def as_query(self) -> NormalBCQ:
        """The constraint body as an NBCQ (violation = the query holds)."""
        return NormalBCQ(self.body_pos, self.body_neg)

    def __str__(self) -> str:
        parts = [str(a) for a in self.body_pos] + [f"not {a}" for a in self.body_neg]
        return f"{', '.join(parts)} -> false."


@dataclass(frozen=True)
class EGD:
    """An equality-generating dependency ``Φ(X) → Xᵢ = Xⱼ``.

    ``left`` and ``right`` are the two terms (usually variables of the body)
    that every homomorphism from the body into the model must equate.
    """

    body: tuple[Atom, ...]
    left: Term
    right: Term
    label: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))
        if not self.body:
            raise IllFormedRuleError("an EGD needs a non-empty body")
        body_vars = variables_of_atoms(self.body)
        for term in (self.left, self.right):
            if isinstance(term, Variable) and term not in body_vars:
                raise IllFormedRuleError(
                    f"EGD equality variable {term} does not occur in the body"
                )

    def __str__(self) -> str:
        return f"{', '.join(str(a) for a in self.body)} -> {self.left} = {self.right}."


@dataclass(frozen=True)
class ConstraintViolation:
    """One violation found by :func:`check_constraints`.

    ``hard`` is ``True`` for negative-constraint violations and for EGD
    matches that would equate two distinct constants (impossible under the
    UNA); it is ``False`` for EGD matches that only involve labelled nulls
    (a separability warning rather than an outright inconsistency).
    """

    constraint: Union[NegativeConstraint, EGD]
    witness: dict[Variable, Term]
    hard: bool

    def __str__(self) -> str:
        binding = ", ".join(f"{k}={v}" for k, v in sorted(self.witness.items(), key=lambda kv: str(kv[0])))
        kind = "violation" if self.hard else "soft violation"
        return f"{kind} of [{self.constraint}] with {{{binding}}}"


def _resolve(model_or_engine) -> DatalogWellFoundedModel:
    """Accept an engine or an already-computed model."""
    if isinstance(model_or_engine, WellFoundedEngine):
        return model_or_engine.model()
    return model_or_engine


def _matches(body: Sequence[Atom], model: DatalogWellFoundedModel):
    """Enumerate homomorphisms from *body* into the true atoms of the model."""
    index: dict[str, list[Atom]] = {}
    for atom in model.true_atoms():
        index.setdefault(atom.predicate, []).append(atom)

    def extend(patterns, subst):
        if not patterns:
            yield subst
            return
        first, rest = patterns[0], patterns[1:]
        for candidate in index.get(first.predicate, ()):
            bound = match(first, candidate, subst)
            if bound is not None:
                yield from extend(rest, bound)

    yield from extend(list(body), Substitution.empty())


def check_constraints(
    model_or_engine: Union[DatalogWellFoundedModel, WellFoundedEngine],
    constraints: Iterable[Union[NegativeConstraint, EGD]],
) -> list[ConstraintViolation]:
    """Check every constraint against the well-founded model; return violations.

    Negative constraints use full NBCQ semantics (negated body atoms must be
    *false*); EGDs are checked over the true atoms only, following [1].
    """
    model = _resolve(model_or_engine)
    violations: list[ConstraintViolation] = []
    for constraint in constraints:
        if isinstance(constraint, NegativeConstraint):
            violations.extend(_check_negative_constraint(model, constraint))
        else:
            violations.extend(_check_egd(model, constraint))
    return violations


def _check_negative_constraint(
    model: DatalogWellFoundedModel, constraint: NegativeConstraint
) -> list[ConstraintViolation]:
    """Violations of one negative constraint (at most one witness is reported)."""
    for subst in _matches(constraint.body_pos, model):
        negatives_false = all(
            model.is_false(subst.apply_atom(atom)) for atom in constraint.body_neg
        )
        if negatives_false:
            witness = {
                var: subst[var]
                for var in variables_of_atoms(constraint.body_pos)
                if var in subst
            }
            return [ConstraintViolation(constraint, witness, hard=True)]
    return []


def _check_egd(model: DatalogWellFoundedModel, egd: EGD) -> list[ConstraintViolation]:
    """Violations of one EGD over the true atoms of the model."""
    violations: list[ConstraintViolation] = []
    for subst in _matches(egd.body, model):
        left = subst.apply_term(egd.left)
        right = subst.apply_term(egd.right)
        if left == right:
            continue
        witness = {
            var: subst[var] for var in variables_of_atoms(egd.body) if var in subst
        }
        hard = isinstance(left, Constant) and isinstance(right, Constant)
        violations.append(ConstraintViolation(egd, witness, hard=hard))
    return violations


def is_consistent(
    model_or_engine: Union[DatalogWellFoundedModel, WellFoundedEngine],
    constraints: Iterable[Union[NegativeConstraint, EGD]],
    *,
    treat_soft_as_violation: bool = False,
) -> bool:
    """``True`` iff no (hard) constraint violation exists.

    With ``treat_soft_as_violation=True`` soft EGD violations (those only
    involving labelled nulls) also count, i.e. the check requires full
    separability in the sense of [1].
    """
    for violation in check_constraints(model_or_engine, constraints):
        if violation.hard or treat_soft_as_violation:
            return False
    return True
