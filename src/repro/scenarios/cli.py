"""The ``repro scenarios`` sub-command: list, run, record and replay workloads.

Dispatched from :func:`repro.cli.main` when the first argument is
``scenarios``::

    python -m repro scenarios list [--verbose]
    python -m repro scenarios run NAME [--backend B --rewrite] [overrides]
    python -m repro scenarios record NAME --out trace.txt [overrides]
    python -m repro scenarios replay NAME [--trace FILE --engine E --check]

``run`` answers the scenario's bundled queries one-shot (a smoke of the
workload); ``record`` replays the scenario's seeded trace against a warm
maintained engine and writes it back with every query's answer pinned as an
``!expect`` checkpoint; ``replay`` drives a trace against a warm
:class:`~repro.views.MaterializedEngine` (or the ``rebuild`` cold baseline)
and prints per-event-kind latency percentiles, cache hit-rates and any
divergence.  Exit codes follow the main CLI: 0 clean, 2 usage/parse errors,
3 checkpoint divergence.

Builder overrides (``--size``, ``--seed``, ``--length``) apply when the
scenario's builder has the matching parameter; sizes stay at the registered
defaults otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from ..core.engine import WellFoundedEngine
from ..exceptions import ReproError
from .registry import build_scenario, get_scenario, scenario_names
from .replay import build_target, record_trace, replay_trace
from .trace import format_trace, parse_trace

__all__ = ["build_scenarios_parser", "scenarios_main"]


def build_scenarios_parser() -> argparse.ArgumentParser:
    """The ``repro scenarios`` argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro scenarios",
        description=(
            "Named workload scenarios: realistic rule bases with seeded "
            "update/query traces, replayable against a warm engine."
        ),
    )
    verbs = parser.add_subparsers(dest="verb", required=True)

    verbs.add_parser("list", help="list registered scenarios").add_argument(
        "--verbose", action="store_true", help="also print parameters and tags"
    )

    def common(sub: argparse.ArgumentParser, *, trace_options: bool) -> None:
        sub.add_argument("name", help="a registered scenario name")
        sub.add_argument(
            "--size", type=int, default=None, help="override the scenario size"
        )
        sub.add_argument(
            "--seed", type=int, default=None, help="override the workload seed"
        )
        sub.add_argument(
            "--backend",
            choices=["tuple", "columnar", "sqlite"],
            default="columnar",
            help="grounding backend (answers are backend-invariant)",
        )
        sub.add_argument(
            "--workers",
            type=int,
            default=1,
            metavar="N",
            help=(
                "worker pool for independent condensation components; "
                "answers are identical to the serial default"
            ),
        )
        if trace_options:
            sub.add_argument(
                "--length",
                type=int,
                default=None,
                help="override the generated trace length (number of events)",
            )

    run = verbs.add_parser("run", help="answer the scenario's queries one-shot")
    common(run, trace_options=False)
    run.add_argument(
        "--rewrite",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="answer goal-directedly via magic-sets rewriting",
    )
    run.add_argument(
        "--verbose", action="store_true", help="print per-query statistics"
    )

    record = verbs.add_parser(
        "record",
        help="replay the scenario's trace and pin answers as !expect checkpoints",
    )
    common(record, trace_options=True)
    record.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write the recorded trace here (default: stdout)",
    )

    replay = verbs.add_parser(
        "replay", help="drive a warm engine through a trace, report latencies"
    )
    common(replay, trace_options=True)
    replay.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="replay this trace file instead of the scenario's generated one",
    )
    replay.add_argument(
        "--engine",
        choices=["materialized", "rebuild"],
        default="materialized",
        help="warm maintained engine (default) or the rebuild-per-update baseline",
    )
    replay.add_argument(
        "--check",
        action="store_true",
        help="verify maintained ≡ from-scratch oracle at every !check checkpoint",
    )
    replay.add_argument(
        "--think",
        action="store_true",
        help="honor @think annotations by sleeping (excluded from latencies)",
    )
    replay.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="also dump the replay report summary as JSON",
    )
    replay.add_argument(
        "--verbose", action="store_true", help="print every event's answer/latency"
    )
    return parser


def _overrides(args) -> dict:
    """Builder overrides from CLI flags, restricted to supported parameters."""
    scenario = get_scenario(args.name)
    overrides = {}
    mapping = {
        "size": getattr(args, "size", None),
        "seed": getattr(args, "seed", None),
        "trace_length": getattr(args, "length", None),
    }
    for key, value in mapping.items():
        if value is not None:
            if key not in scenario.defaults:
                raise SystemExit(
                    f"error: scenario {args.name!r} has no {key!r} parameter"
                )
            overrides[key] = value
    return overrides


def _ms(seconds) -> str:
    if seconds is None:  # a kind with zero samples has no percentiles
        return "n/a"
    return f"{seconds * 1000:.2f}ms"


def _print_latency_line(label: str, summary: dict) -> None:
    print(
        f"# {label}: n={summary['count']} p50={_ms(summary['p50_seconds'])} "
        f"p95={_ms(summary['p95_seconds'])} p99={_ms(summary['p99_seconds'])} "
        f"total={summary['total_seconds']:.4f}s"
    )


def _cmd_list(args) -> int:
    for name in scenario_names():
        scenario = get_scenario(name)
        print(f"{name}: {scenario.description}")
        if args.verbose:
            print(f"  params: {dict(scenario.defaults)}")
            print(f"  tags: {sorted(scenario.tags)}")
    return 0


def _cmd_run(args) -> int:
    bundle = build_scenario(args.name, **_overrides(args))
    engine = WellFoundedEngine(
        bundle.program,
        bundle.database,
        rewrite=args.rewrite,
        backend=args.backend,
        workers=args.workers,
    )
    for text in bundle.queries:
        from ..lang.parser import parse_query

        query = parse_query(text)
        if query.variables() and not query.negative:
            answers = engine.answer(text)
            rendered = sorted(
                "(" + ", ".join(str(term) for term in tup) + ")" for tup in answers
            )
            print(f"{text} : {' '.join(rendered) if rendered else 'no answers'}")
        else:
            print(f"{text} : {'yes' if engine.holds(text) else 'no'}")
        if args.verbose and engine.last_query_stats is not None:
            stats = " ".join(
                f"{k}={v:.4f}" if isinstance(v, float) else f"{k}={v}"
                for k, v in engine.last_query_stats.items()
            )
            print(f"#   {stats}")
    return 0


def _cmd_record(args) -> int:
    bundle = build_scenario(args.name, **_overrides(args))
    target = build_target(bundle, backend=args.backend, workers=args.workers)
    recorded, report = record_trace(bundle.trace, target)
    text = format_trace(
        recorded,
        header=(
            f"scenario {bundle.name} (params {dict(bundle.params)}), "
            f"recorded with backend={args.backend}"
        ),
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(
            f"# recorded {len(recorded)} events "
            f"({report.events} replayed) to {args.out}"
        )
    else:
        sys.stdout.write(text)
    return report.exit_code


def _cmd_replay(args) -> int:
    bundle = build_scenario(args.name, **_overrides(args))
    if args.trace:
        try:
            with open(args.trace, "r", encoding="utf-8") as handle:
                events = parse_trace(handle.read())
        except OSError as error:
            raise SystemExit(f"error: cannot read {args.trace}: {error}")
    else:
        events = list(bundle.trace)
    target = build_target(
        bundle, engine=args.engine, backend=args.backend, workers=args.workers
    )
    report = replay_trace(
        events, target, check=args.check, honor_think=args.think
    )
    if args.verbose:
        for record in report.records:
            status = "ok" if record.ok else "DIVERGED"
            print(
                f"# {record.kind:<8} {_ms(record.seconds):>10} {status} "
                f"{record.detail}"
            )
    summary = report.summary()
    print(
        f"# replayed {report.events} events of scenario '{bundle.name}' "
        f"(engine={args.engine}, backend={args.backend})"
    )
    _print_latency_line("updates", summary["updates"])
    _print_latency_line("queries", summary["queries"])
    hit_rate = report.query_cache_hit_rate
    hit_text = f"{hit_rate:.2f}" if hit_rate is not None else "n/a"
    print(
        f"# checkpoints: {report.checks} differential, {report.expects} expected-"
        f"answer; query cache hit-rate: {hit_text}"
    )
    for divergence in report.divergences:
        print(f"# DIVERGENCE {divergence}", file=sys.stderr)
    if args.json:
        summary["scenario"] = bundle.name
        summary["params"] = dict(bundle.params)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2)
        print(f"# wrote {args.json}")
    return report.exit_code


def scenarios_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro scenarios ...``."""
    parser = build_scenarios_parser()
    args = parser.parse_args(argv)
    try:
        if args.verb == "list":
            return _cmd_list(args)
        if args.verb == "run":
            return _cmd_run(args)
        if args.verb == "record":
            return _cmd_record(args)
        if args.verb == "replay":
            return _cmd_replay(args)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled verb {args.verb!r}")  # pragma: no cover
