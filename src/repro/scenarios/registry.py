"""The scenario registry: named, parameterized workloads with bundled traces.

A *scenario* packages one realistic workload shape — rules, an initial
database, a query mix, and a seeded update/query trace — behind a name, the
registry pattern production reasoners use to pin their evaluation corpora.
Every scenario doubles as

* a **differential fixture**: its bundle feeds the cross-product suites that
  assert bit-identical answers across every engine configuration
  (``backend`` × ``rewrite`` × ``incremental``), and maintained-vs-scratch
  equality at every trace checkpoint; and
* a **load shape**: its trace drives a warm :class:`repro.views.MaterializedEngine`
  through :mod:`repro.scenarios.replay`, which is the load generator the
  serving layer benchmarks against.

Builders are deterministic given their parameters (every random choice flows
through a seeded :class:`random.Random`), accept at least ``size`` and
``seed``, and return a :class:`ScenarioBundle`.  Register a new scenario with
the :func:`scenario` decorator::

    @scenario(
        "my-domain",
        description="one line shown by `repro scenarios list`",
        tags=("negation",),
        size=8,
        seed=0,
    )
    def _my_domain(*, size, seed, trace_length=48, **trace_options):
        ...
        return ScenarioBundle(...)

The five built-in scenarios span the regimes the engine must cover:
RCA/diagnosis over telemetry (stratified negation over a DAG),
access-control policies (stratified deny-overrides *and* an unstratified
request cycle), win/move game graphs (the canonical unstratified program),
a LUBM-style DL ontology routed through :mod:`repro.dl` (existential axioms
plus default negation), and supply-chain reachability with existential
(chase) rules deriving properties of invented nulls.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from ..dl.translate import translate_ontology
from ..bench.generators import university_ontology, win_move_datalog_pm
from ..lang.atoms import Atom
from ..lang.parser import parse_program
from ..lang.program import Database, DatalogPMProgram
from ..lang.terms import Constant
from .trace import TraceEvent, generate_trace

__all__ = [
    "Scenario",
    "ScenarioBundle",
    "scenario",
    "scenario_names",
    "get_scenario",
    "build_scenario",
]


@dataclass(frozen=True)
class ScenarioBundle:
    """One built workload: ``(program, database, queries, update trace)``.

    ``dynamic_facts`` is the pool of facts the trace toggles (a superset of
    the toggled facts, disjoint from the static database core), exposed so
    property tests can generate *fresh* random interleavings over the same
    scenario with :func:`repro.scenarios.trace.generate_trace`;
    ``initially_present`` is the subset of the pool already in ``database``.
    """

    name: str
    description: str
    program: DatalogPMProgram
    database: Database
    queries: tuple[str, ...]
    trace: tuple[TraceEvent, ...]
    dynamic_facts: tuple[Atom, ...] = ()
    initially_present: tuple[Atom, ...] = ()
    params: Mapping[str, object] = field(default_factory=dict)

    def regenerate_trace(self, **options) -> list[TraceEvent]:
        """A fresh trace over the same dynamic pool (defaults re-seeded)."""
        merged = {"length": len(self.trace), "seed": 0}
        merged.update(options)
        return generate_trace(
            self.dynamic_facts,
            self.queries,
            initially_present=self.initially_present,
            **merged,
        )


@dataclass(frozen=True)
class Scenario:
    """A registered scenario: metadata plus its parameterized builder."""

    name: str
    description: str
    builder: Callable[..., ScenarioBundle]
    defaults: Mapping[str, object]
    tags: frozenset[str]

    def build(self, **overrides) -> ScenarioBundle:
        """Build the bundle with the registered defaults overridden."""
        params = dict(self.defaults)
        unknown = set(overrides) - set(params)
        if unknown:
            raise ValueError(
                f"scenario {self.name!r} has no parameters {sorted(unknown)}; "
                f"known: {sorted(params)}"
            )
        params.update(overrides)
        return self.builder(**params)


_REGISTRY: dict[str, Scenario] = {}


def scenario(
    name: str, *, description: str, tags: Sequence[str] = (), **defaults
) -> Callable:
    """Class-less registration decorator; ``defaults`` are builder kwargs."""

    def register(builder: Callable[..., ScenarioBundle]) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} is already registered")
        _REGISTRY[name] = Scenario(
            name=name,
            description=description,
            builder=builder,
            defaults=dict(defaults),
            tags=frozenset(tags),
        )
        return builder

    return register


def scenario_names() -> list[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name (:class:`KeyError` with the known names)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {scenario_names()}"
        ) from None


def build_scenario(name: str, **overrides) -> ScenarioBundle:
    """Shorthand for ``get_scenario(name).build(**overrides)``."""
    return get_scenario(name).build(**overrides)


def _bundle(
    name: str,
    *,
    program: DatalogPMProgram,
    database: Sequence[Atom],
    queries: Sequence[str],
    dynamic_facts: Sequence[Atom],
    params: Mapping[str, object],
    trace_length: int,
    seed: int,
    query_ratio: float,
    checkpoint_every: int,
    think_time: float,
) -> ScenarioBundle:
    """Assemble a bundle, deriving the trace from the dynamic pool."""
    database = Database(database)
    present = tuple(atom for atom in dynamic_facts if atom in database)
    trace = generate_trace(
        dynamic_facts,
        queries,
        length=trace_length,
        seed=seed,
        initially_present=present,
        query_ratio=query_ratio,
        checkpoint_every=checkpoint_every,
        think_time=think_time,
    )
    return ScenarioBundle(
        name=name,
        description=_REGISTRY[name].description if name in _REGISTRY else "",
        program=program,
        database=database,
        queries=tuple(queries),
        trace=tuple(trace),
        dynamic_facts=tuple(dynamic_facts),
        initially_present=present,
        params=dict(params),
    )


# ---------------------------------------------------------------------------
# RCA / diagnosis over synthetic telemetry
# ---------------------------------------------------------------------------

_TELEMETRY_RULES = """
alert(S) -> degraded(S).
depends(S, T), degraded(T) -> degraded(S).
depends(S, T), degraded(T) -> upstream_issue(S).
alert(S), not upstream_issue(S) -> root_cause(S).
service(S), not degraded(S) -> healthy(S).
"""


@scenario(
    "telemetry-rca",
    description=(
        "root-cause analysis over a service dependency DAG: alerts stream in "
        "and out, degradation propagates upstream, root causes are alerts "
        "with no degraded dependency (stratified negation)"
    ),
    tags=("negation", "stratified", "telemetry"),
    size=12,
    seed=0,
    trace_length=60,
    query_ratio=0.35,
    checkpoint_every=10,
    think_time=0.0,
)
def _telemetry_rca(
    *, size, seed, trace_length, query_ratio, checkpoint_every, think_time
) -> ScenarioBundle:
    rng = random.Random(seed)
    program, _ = parse_program(_TELEMETRY_RULES)
    services = [Constant(f"s{i}") for i in range(size)]
    facts: list[Atom] = [Atom("service", (s,)) for s in services]
    # A layered DAG: every service depends on one or two strictly later ones,
    # so degradation ripples from leaves toward the front tier.
    for index, service in enumerate(services[:-1]):
        for target in rng.sample(
            range(index + 1, size), k=min(size - index - 1, rng.randint(1, 2))
        ):
            facts.append(Atom("depends", (service, services[target])))
    alerts = [Atom("alert", (s,)) for s in services]
    for alert in rng.sample(alerts, k=max(1, size // 4)):
        facts.append(alert)
    queries = (
        "? root_cause(X)",
        "? healthy(X)",
        f"? degraded({services[0].name})",
        f"? upstream_issue({services[0].name})",
    )
    return _bundle(
        "telemetry-rca",
        program=program,
        database=facts,
        queries=queries,
        dynamic_facts=alerts,
        params={"size": size, "seed": seed},
        trace_length=trace_length,
        seed=seed,
        query_ratio=query_ratio,
        checkpoint_every=checkpoint_every,
        think_time=think_time,
    )


# ---------------------------------------------------------------------------
# Access control / policy negation
# ---------------------------------------------------------------------------

_POLICY_RULES = """
grant(U, R) -> may(U, R).
deleg(V, U, R), may(V, R) -> may(U, R).
may(U, R), not revoked(U, R) -> allowed(U, R).
request(U, R), not blocked(U, R) -> active(U, R).
request(U, R), not active(U, R) -> blocked(U, R).
"""


@scenario(
    "access-control",
    description=(
        "policy evaluation with delegation chains: deny-overrides through "
        "stratified negation (allowed = may and not revoked) plus an "
        "unstratified request/block cycle whose WFS value is undefined"
    ),
    tags=("negation", "unstratified", "policy"),
    size=8,
    seed=0,
    trace_length=60,
    query_ratio=0.35,
    checkpoint_every=10,
    think_time=0.0,
)
def _access_control(
    *, size, seed, trace_length, query_ratio, checkpoint_every, think_time
) -> ScenarioBundle:
    rng = random.Random(seed)
    program, _ = parse_program(_POLICY_RULES)
    users = [Constant(f"u{i}") for i in range(size)]
    resources = [Constant(f"r{i}") for i in range(max(2, size // 2))]
    facts: list[Atom] = []
    dynamic: list[Atom] = []
    for resource in resources:
        owner = rng.choice(users)
        facts.append(Atom("grant", (owner, resource)))
        # a delegation chain from the owner through a few other users
        chain = [owner] + rng.sample(
            [u for u in users if u != owner], k=min(3, size - 1)
        )
        for giver, receiver in zip(chain, chain[1:]):
            facts.append(Atom("deleg", (giver, receiver, resource)))
    for user in users:
        resource = rng.choice(resources)
        dynamic.append(Atom("grant", (user, resource)))
        dynamic.append(Atom("revoked", (user, resource)))
        dynamic.append(Atom("request", (user, rng.choice(resources))))
    for fact in rng.sample(dynamic, k=max(1, len(dynamic) // 4)):
        facts.append(fact)
    queries = (
        f"? allowed({users[0].name}, X)",
        f"? allowed(X, {resources[0].name})",
        f"? may({users[1].name}, {resources[0].name})",
        "? blocked(X, Y)",
        f"? active({users[0].name}, {resources[0].name})",
    )
    return _bundle(
        "access-control",
        program=program,
        database=facts,
        queries=queries,
        dynamic_facts=dynamic,
        params={"size": size, "seed": seed},
        trace_length=trace_length,
        seed=seed,
        query_ratio=query_ratio,
        checkpoint_every=checkpoint_every,
        think_time=think_time,
    )


# ---------------------------------------------------------------------------
# Win/move game graphs
# ---------------------------------------------------------------------------


@scenario(
    "win-move",
    description=(
        "the canonical unstratified program — win(X) <- move(X, Y), "
        "not win(Y) — over a random game graph; edges churn, positions flip "
        "between won, lost and drawn (undefined)"
    ),
    tags=("negation", "unstratified", "game"),
    size=10,
    seed=0,
    trace_length=60,
    query_ratio=0.3,
    checkpoint_every=10,
    think_time=0.0,
)
def _win_move(
    *, size, seed, trace_length, query_ratio, checkpoint_every, think_time
) -> ScenarioBundle:
    rng = random.Random(seed)
    program, database = win_move_datalog_pm(size, out_degree=2, seed=seed)
    # The dynamic pool is the present edges plus candidate edges not in the
    # graph, so the trace both cuts and creates escape routes.
    dynamic = list(database)
    candidates = {
        (f"n{a}", f"n{b}")
        for a in range(size)
        for b in range(size)
        if a != b
    } - {(atom.args[0].name, atom.args[1].name) for atom in database}
    for source, target in rng.sample(sorted(candidates), k=min(size, len(candidates))):
        dynamic.append(Atom("move", (Constant(source), Constant(target))))
    queries = ("? win(X)", "? win(n0)", "? win(n1)", f"? win(n{size - 1})")
    return _bundle(
        "win-move",
        program=program,
        database=list(database),
        queries=queries,
        dynamic_facts=dynamic,
        params={"size": size, "seed": seed},
        trace_length=trace_length,
        seed=seed,
        query_ratio=query_ratio,
        checkpoint_every=checkpoint_every,
        think_time=think_time,
    )


# ---------------------------------------------------------------------------
# LUBM-style DL ontology through repro.dl
# ---------------------------------------------------------------------------


@scenario(
    "lubm-university",
    description=(
        "a LUBM-flavoured DL-Lite ontology routed through repro.dl: "
        "existential axioms (everyone works/enrolls somewhere), role "
        "hierarchies, and the default-negation axiom 'unadvised students "
        "need an advisor'; advisor assignments churn"
    ),
    tags=("ontology", "existential", "negation"),
    size=2,
    students=3,
    seed=0,
    trace_length=48,
    query_ratio=0.35,
    checkpoint_every=8,
    think_time=0.0,
)
def _lubm_university(
    *, size, students, seed, trace_length, query_ratio, checkpoint_every, think_time
) -> ScenarioBundle:
    program, database = translate_ontology(
        university_ontology(size, students, advised_fraction=0.5, seed=seed)
    )
    # Advisor churn: every professor/student pair within a department.
    dynamic = [
        Atom(
            "advises",
            (Constant(f"prof{dept}"), Constant(f"student{dept}_{index}")),
        )
        for dept in range(size)
        for index in range(students)
    ]
    queries = (
        "? employee(X)",
        "? advised(X)",
        "? mentors(X, Y)",
        "? needsAdvisor(student0_0, Y)",
        "? advised(student0_0)",
    )
    return _bundle(
        "lubm-university",
        program=program,
        database=list(database),
        queries=queries,
        dynamic_facts=dynamic,
        params={"size": size, "students": students, "seed": seed},
        trace_length=trace_length,
        seed=seed,
        query_ratio=query_ratio,
        checkpoint_every=checkpoint_every,
        think_time=think_time,
    )


# ---------------------------------------------------------------------------
# Supply-chain reachability with existential (chase) rules
# ---------------------------------------------------------------------------

_SUPPLY_RULES = """
part(X) -> exists S made_by(X, S).
made_by(X, S) -> sourced(X).
uses(A, B), tainted(B) -> tainted(A).
recalled(X) -> tainted(X).
part(X), not tainted(X) -> safe(X).
made_by(X, S), recalled(X) -> suspect_source(S).
"""


@scenario(
    "supply-chain",
    description=(
        "taint reachability over an assembly DAG with existential rules: "
        "every part has an invented maker (a labelled null) that turns "
        "suspect when the part is recalled; recalls and dependency edges "
        "churn"
    ),
    tags=("existential", "chase", "negation", "reachability"),
    size=10,
    seed=0,
    trace_length=60,
    query_ratio=0.3,
    checkpoint_every=10,
    think_time=0.0,
)
def _supply_chain(
    *, size, seed, trace_length, query_ratio, checkpoint_every, think_time
) -> ScenarioBundle:
    rng = random.Random(seed)
    program, _ = parse_program(_SUPPLY_RULES)
    parts = [Constant(f"p{i}") for i in range(size)]
    facts: list[Atom] = [Atom("part", (p,)) for p in parts]
    # An assembly DAG: each part uses one or two strictly later parts
    # (components), so taint flows from leaf components up to assemblies.
    for index, part in enumerate(parts[:-1]):
        for target in rng.sample(
            range(index + 1, size), k=min(size - index - 1, rng.randint(1, 2))
        ):
            facts.append(Atom("uses", (part, parts[target])))
    recalls = [Atom("recalled", (p,)) for p in parts]
    for recall in rng.sample(recalls, k=max(1, size // 5)):
        facts.append(recall)
    queries = (
        "? safe(X)",
        "? tainted(X)",
        f"? tainted({parts[0].name})",
        f"? made_by({parts[0].name}, S)",
        "? suspect_source(S)",
    )
    return _bundle(
        "supply-chain",
        program=program,
        database=facts,
        queries=queries,
        dynamic_facts=recalls,
        params={"size": size, "seed": seed},
        trace_length=trace_length,
        seed=seed,
        query_ratio=query_ratio,
        checkpoint_every=checkpoint_every,
        think_time=think_time,
    )
