"""The replay client: drive a warm engine with a trace, measure everything.

:func:`replay_trace` walks a list of :class:`~repro.scenarios.trace.TraceEvent`
against a *replay target* and returns a :class:`ReplayReport` with per-event
wall-clock latencies, p50/p95/p99 percentiles per event kind, query
cache-hit rates (read off the uniform ``last_query_stats`` shape both engine
types expose), and every divergence found at a checkpoint:

* ``!check`` events (honored when ``check=True``) compare the maintained
  model against the target's from-scratch differential oracle;
* ``!expect`` events are always verified — the query's rendered answer must
  equal the recorded one.

Two targets cover the serving shapes named in the ROADMAP:

* :class:`MaterializedTarget` — the warm path: one long-lived
  :class:`repro.views.MaterializedEngine` maintained under every update;
* :class:`RebuildTarget` — the cold baseline: updates mutate a database copy
  and the next query pays for a full :class:`repro.core.engine.WellFoundedEngine`
  rebuild (what serving would cost without view maintenance; its ``!check``
  checkpoints are trivially true because the served model *is* the
  from-scratch one, so they are counted but free).

A budget-exhausted update (:class:`~repro.exceptions.GroundingError` from the
engine's ``max_rounds_per_update``/``max_atoms``) raises
:class:`ReplayInterrupted` carrying the partial report and the index of the
interrupted event; re-calling :func:`replay_trace` on ``events[error.index:]``
with the same target resumes losslessly — the staged update inside the
engine completes first, exactly like the engine's own resumable budgets.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..core.engine import WellFoundedEngine
from ..exceptions import GroundingError, ReproError
from ..lang.parser import parse_query
from ..views import MaterializedEngine
from .registry import ScenarioBundle, build_scenario
from .trace import TraceEvent, expect_event

__all__ = [
    "ReplayInterrupted",
    "EventRecord",
    "ReplayReport",
    "MaterializedTarget",
    "RebuildTarget",
    "build_target",
    "replay_trace",
    "record_trace",
    "replay_scenario",
    "percentile",
]


class ReplayInterrupted(ReproError):
    """A budget ran out mid-trace; replay can resume at ``events[index:]``."""

    def __init__(self, message: str, *, index: int, report: "ReplayReport"):
        super().__init__(message)
        self.index = index
        self.report = report


def percentile(samples: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0–100) of *samples* with linear interpolation.

    ``q=0`` is the minimum and ``q=100`` the maximum, exactly (no
    interpolation artifacts at the edges).  Empty input has no percentiles:
    it raises :class:`ValueError` rather than returning the old silent
    ``nan`` (which is unorderable *and* not valid strict JSON — both failure
    modes surfaced far from the cause).  Callers that aggregate possibly
    empty kinds render ``None`` instead (:meth:`ReplayReport.latency_summary`).
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q!r}")
    if not samples:
        raise ValueError("percentile of an empty sample set is undefined")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    if q == 100.0:
        return ordered[-1]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


@dataclass(frozen=True)
class EventRecord:
    """One replayed event: what ran, how long it took, whether it diverged."""

    kind: str
    lineno: int
    seconds: float
    ok: bool = True
    detail: str = ""


@dataclass
class ReplayReport:
    """Everything a replay measured; :meth:`summary` is the JSON-ready view."""

    target: str = ""
    records: list[EventRecord] = field(default_factory=list)
    divergences: list[str] = field(default_factory=list)
    checks: int = 0
    expects: int = 0
    query_cache_hits: int = 0
    query_cache_misses: int = 0
    think_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """No checkpoint of any kind diverged."""
        return not self.divergences

    @property
    def exit_code(self) -> int:
        """Process exit code for CLI use: 0 clean, 3 divergence (as --check)."""
        return 0 if self.ok else 3

    @property
    def events(self) -> int:
        return len(self.records)

    @property
    def query_cache_hit_rate(self) -> Optional[float]:
        """Hit fraction of the frontier query cache; ``None`` before any query.

        ``None`` (JSON ``null``) rather than ``nan``: the rate flows into
        :meth:`summary`, which must stay strict-JSON serialisable.
        """
        total = self.query_cache_hits + self.query_cache_misses
        return self.query_cache_hits / total if total else None

    def latencies(self, *kinds: str) -> list[float]:
        """Per-event seconds, optionally restricted to the given kinds."""
        return [
            record.seconds
            for record in self.records
            if not kinds or record.kind in kinds
        ]

    def latency_summary(self, *kinds: str) -> dict:
        """count/total and p50/p95/p99/max seconds over the given kinds.

        A kind with zero samples has no latency distribution: its
        percentiles and max render as ``None`` (JSON ``null``) so reports
        stay strict-JSON clean instead of crashing or emitting ``NaN``.
        """
        samples = self.latencies(*kinds)
        if not samples:
            return {
                "count": 0,
                "total_seconds": 0.0,
                "p50_seconds": None,
                "p95_seconds": None,
                "p99_seconds": None,
                "max_seconds": None,
            }
        return {
            "count": len(samples),
            "total_seconds": sum(samples),
            "p50_seconds": percentile(samples, 50),
            "p95_seconds": percentile(samples, 95),
            "p99_seconds": percentile(samples, 99),
            "max_seconds": max(samples),
        }

    def summary(self) -> dict:
        """A JSON-ready aggregate (what the bench and ``--json`` emit)."""
        return {
            "target": self.target,
            "events": self.events,
            "updates": self.latency_summary("insert", "retract"),
            "queries": self.latency_summary("query", "expect"),
            "checkpoints": self.checks,
            "expect_checkpoints": self.expects,
            "query_cache_hit_rate": self.query_cache_hit_rate,
            "think_seconds": self.think_seconds,
            "divergences": list(self.divergences),
            "ok": self.ok,
        }


def _render_answers(answers) -> str:
    """The CLI's rendering of an open query's answer set (sorted tuples)."""
    rendered = sorted(
        "(" + ", ".join(str(term) for term in tup) + ")" for tup in answers
    )
    return " ".join(rendered) if rendered else "no answers"


def _model_fingerprint(model) -> tuple:
    return (model.true_atoms(), model.false_atoms(), model.undefined_atoms())


class MaterializedTarget:
    """The warm serving path: one maintained engine across the whole trace."""

    name = "materialized"

    def __init__(
        self,
        bundle_or_engine: Union[ScenarioBundle, MaterializedEngine],
        *,
        backend: str = "columnar",
        max_rounds_per_update: Optional[int] = None,
        max_atoms: Optional[int] = None,
        workers: int = 1,
    ):
        if isinstance(bundle_or_engine, MaterializedEngine):
            self.engine = bundle_or_engine
        else:
            self.engine = MaterializedEngine(
                bundle_or_engine.program,
                bundle_or_engine.database,
                backend=backend,
                max_rounds_per_update=max_rounds_per_update,
                max_atoms=max_atoms,
                workers=workers,
            )

    def insert(self, atom) -> None:
        self.engine.add_facts(atom)

    def retract(self, atom) -> None:
        self.engine.retract_facts(atom)

    def answer_text(self, query_text: str) -> str:
        """The rendered answer of one trace query (CLI conventions)."""
        query = parse_query(query_text)
        if query.variables() and not query.negative:
            return _render_answers(self.engine.answer(query))
        return "yes" if self.engine.holds(query) else "no"

    def query_stats(self) -> Optional[dict]:
        return self.engine.last_query_stats

    def check(self) -> bool:
        """Maintained model ≡ from-scratch oracle (the differential gate)."""
        return _model_fingerprint(self.engine.model()) == _model_fingerprint(
            self.engine.scratch_model()
        )


class RebuildTarget:
    """The cold baseline: every update invalidates a one-shot engine.

    Queries between two updates share one engine (and therefore its model
    cache); the first query after an update pays the full rebuild — the cost
    profile of serving without view maintenance.
    """

    name = "rebuild"

    def __init__(
        self, bundle: ScenarioBundle, *, backend: str = "columnar", workers: int = 1, **_
    ):
        self.program = bundle.program
        self.database = bundle.database.copy()
        self.backend = backend
        self.workers = workers
        self._engine: Optional[WellFoundedEngine] = None
        self.rebuilds = 0
        self.last_query_stats: Optional[dict] = None

    def _current_engine(self) -> WellFoundedEngine:
        if self._engine is None or self._engine.is_stale():
            self._engine = WellFoundedEngine(
                self.program, self.database, backend=self.backend, workers=self.workers
            )
            self.rebuilds += 1
        return self._engine

    def insert(self, atom) -> None:
        self.database.add(atom)

    def retract(self, atom) -> None:
        self.database.discard(atom)

    def answer_text(self, query_text: str) -> str:
        engine = self._current_engine()
        query = parse_query(query_text)
        if query.variables() and not query.negative:
            text = _render_answers(engine.answer(query_text))
        else:
            text = "yes" if engine.holds(query) else "no"
        self.last_query_stats = engine.last_query_stats
        return text

    def query_stats(self) -> Optional[dict]:
        return self.last_query_stats

    def check(self) -> bool:
        """Trivially true: the served model is the from-scratch model."""
        self._current_engine()
        return True


def build_target(
    bundle: ScenarioBundle,
    *,
    engine: str = "materialized",
    backend: str = "columnar",
    max_rounds_per_update: Optional[int] = None,
    max_atoms: Optional[int] = None,
    workers: int = 1,
):
    """A replay target by name: ``"materialized"`` (warm) or ``"rebuild"`` (cold)."""
    if engine == "materialized":
        return MaterializedTarget(
            bundle,
            backend=backend,
            max_rounds_per_update=max_rounds_per_update,
            max_atoms=max_atoms,
            workers=workers,
        )
    if engine == "rebuild":
        return RebuildTarget(bundle, backend=backend, workers=workers)
    raise ValueError(f"unknown replay engine {engine!r} (materialized|rebuild)")


def replay_trace(
    events: Sequence[TraceEvent],
    target,
    *,
    check: bool = False,
    honor_think: bool = False,
    record: Optional[list[TraceEvent]] = None,
    report: Optional[ReplayReport] = None,
) -> ReplayReport:
    """Replay *events* against *target*; return the filled :class:`ReplayReport`.

    ``check=True`` honors ``!check`` differential checkpoints (slow: each one
    runs the from-scratch oracle); ``!expect`` checkpoints are always
    verified.  ``honor_think=True`` sleeps through ``@think`` annotations
    (excluded from latency).  When *record* is a list, every replayed
    ``query`` event appends a pinned ``!expect`` event to it (and all other
    events are appended unchanged) — the ``record`` verb builds self-checking
    traces this way.  Passing a previous *report* accumulates into it, which
    is how a :class:`ReplayInterrupted` resume keeps one unified report.
    """
    report = report if report is not None else ReplayReport(
        target=getattr(target, "name", type(target).__name__)
    )
    for index, event in enumerate(events):
        if event.kind == "think":
            if honor_think and event.seconds > 0:
                time.sleep(event.seconds)
            report.think_seconds += event.seconds
            if record is not None:
                record.append(event)
            continue

        started = time.perf_counter()
        ok = True
        detail = ""
        try:
            if event.kind == "insert":
                target.insert(event.atom)
            elif event.kind == "retract":
                target.retract(event.atom)
            elif event.kind in ("query", "expect"):
                answer = target.answer_text(event.query)
                stats = target.query_stats() or {}
                if stats.get("cache_hit"):
                    report.query_cache_hits += 1
                else:
                    report.query_cache_misses += 1
                if event.kind == "expect":
                    report.expects += 1
                    if answer != event.expected:
                        ok = False
                        detail = (
                            f"{event.query} answered {answer!r}, trace "
                            f"expected {event.expected!r}"
                        )
                else:
                    detail = answer
            elif event.kind == "check":
                if check:
                    report.checks += 1
                    if not target.check():
                        ok = False
                        detail = "maintained model diverged from the from-scratch oracle"
                else:
                    if record is not None:
                        record.append(event)
                    continue
        except GroundingError as error:
            raise ReplayInterrupted(
                f"budget exhausted at trace line {event.lineno}: {error}",
                index=index,
                report=report,
            ) from error
        elapsed = time.perf_counter() - started

        report.records.append(
            EventRecord(event.kind, event.lineno, elapsed, ok=ok, detail=detail)
        )
        if not ok:
            prefix = f"line {event.lineno}: " if event.lineno else ""
            report.divergences.append(f"{prefix}{detail}")
        if record is not None:
            if event.kind == "query":
                record.append(expect_event(event.query, detail))
            else:
                record.append(event)
    return report


def record_trace(
    events: Sequence[TraceEvent], target, *, check: bool = False
) -> tuple[list[TraceEvent], ReplayReport]:
    """Replay *events* and pin every query's answer as an ``!expect`` checkpoint.

    Returns ``(recorded events, report)``: the recorded trace replays
    anywhere and verifies itself without the from-scratch oracle.  Existing
    ``!expect`` events are re-verified (and kept verbatim), so re-recording a
    recorded trace is idempotent when answers are unchanged.
    """
    recorded: list[TraceEvent] = []
    report = replay_trace(events, target, check=check, record=recorded)
    return recorded, report


def replay_scenario(
    name: str,
    *,
    engine: str = "materialized",
    backend: str = "columnar",
    check: bool = False,
    trace: Optional[Sequence[TraceEvent]] = None,
    honor_think: bool = False,
    **build_overrides,
) -> tuple[ScenarioBundle, ReplayReport]:
    """Build a registered scenario and replay its (or the given) trace."""
    bundle = build_scenario(name, **build_overrides)
    target = build_target(bundle, engine=engine, backend=backend)
    events = bundle.trace if trace is None else trace
    report = replay_trace(events, target, check=check, honor_think=honor_think)
    return bundle, report
