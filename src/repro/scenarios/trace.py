"""The trace format: a line-oriented log of update/query events with checkpoints.

A *trace* is the unit of replayable workload in the scenario corpus: a plain
text file, one event per line, that drives a warm engine through a recorded
session of fact updates and queries.  The grammar is a **superset** of the
``--updates`` script format introduced with :class:`repro.views.MaterializedEngine`
(every ``.upd`` script is a valid trace)::

    % comment                      # '%' or '#' to end of line
    + edge(a, b).                  % insert a fact
    - edge(a, b).                  % retract a fact
    ? reach(X), not blocked(X)     % query the maintained model
    @think 0.05                    % client think time in seconds (replay may honor)
    !check                         % differential checkpoint: maintained model
                                   %   must equal the from-scratch oracle
    !expect ? reach(X) => (a) (b)  % expected-answer checkpoint: the query's
                                   %   rendered answer must equal the recorded one

The rendered answer after ``=>`` uses the CLI's conventions: sorted
``(t1, t2)`` tuples joined by single spaces for open queries, ``no answers``
when empty, and ``yes``/``no`` for Boolean queries.  ``!expect`` lines are what
``repro scenarios record`` emits — they turn a trace into a self-checking
regression artifact that replays without the (slow) from-scratch oracle.

Constants containing spaces or comment characters do not survive the
line-oriented round trip; scenario constants are plain identifiers.

:func:`generate_trace` is the seeded workload generator: given a pool of
*dynamic* facts and a query mix it emits a deterministic random interleaving
of inserts, retracts and queries punctuated by ``!check`` checkpoints — the
shape every registered scenario uses to build its bundled trace.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..exceptions import ParseError
from ..lang.atoms import Atom
from ..lang.parser import parse_atom, parse_query

__all__ = [
    "TraceEvent",
    "insert_event",
    "retract_event",
    "query_event",
    "think_event",
    "check_event",
    "expect_event",
    "parse_trace",
    "parse_trace_line",
    "format_event",
    "format_trace",
    "generate_trace",
    "render_query",
]

#: Event kinds, in the order they appear in reports.
KINDS = ("insert", "retract", "query", "expect", "check", "think")


@dataclass(frozen=True)
class TraceEvent:
    """One line of a trace.

    ``kind`` is one of :data:`KINDS`; the payload fields used depend on it:
    ``atom`` for ``insert``/``retract``, ``query`` (canonical ``? ...`` text)
    for ``query``/``expect``, ``expected`` (rendered answer) for ``expect``,
    ``seconds`` for ``think``.  ``lineno`` is the 1-based source line when the
    event was parsed from text (0 for generated events); it is excluded from
    equality so parse/format round trips compare clean.
    """

    kind: str
    atom: Optional[Atom] = None
    query: Optional[str] = None
    expected: Optional[str] = None
    seconds: float = 0.0
    lineno: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown trace event kind {self.kind!r}")

    @property
    def is_update(self) -> bool:
        """Does this event mutate the database?"""
        return self.kind in ("insert", "retract")


def render_query(query) -> str:
    """The canonical ``? ...`` text of a query (string or NBCQ)."""
    if isinstance(query, str):
        query = parse_query(query)
    return "? " + ", ".join(str(literal) for literal in query.literals())


def insert_event(atom, lineno: int = 0) -> TraceEvent:
    """An insert event (``+ fact.``); *atom* may be text."""
    if isinstance(atom, str):
        atom = parse_atom(atom)
    return TraceEvent("insert", atom=atom, lineno=lineno)


def retract_event(atom, lineno: int = 0) -> TraceEvent:
    """A retract event (``- fact.``); *atom* may be text."""
    if isinstance(atom, str):
        atom = parse_atom(atom)
    return TraceEvent("retract", atom=atom, lineno=lineno)


def query_event(query, lineno: int = 0) -> TraceEvent:
    """A query event (``? query``); the text is canonicalised by parsing."""
    return TraceEvent("query", query=render_query(query), lineno=lineno)


def think_event(seconds: float, lineno: int = 0) -> TraceEvent:
    """A think-time annotation (``@think SECONDS``)."""
    return TraceEvent("think", seconds=float(seconds), lineno=lineno)


def check_event(lineno: int = 0) -> TraceEvent:
    """A differential checkpoint (``!check``)."""
    return TraceEvent("check", lineno=lineno)


def expect_event(query, expected: str, lineno: int = 0) -> TraceEvent:
    """An expected-answer checkpoint (``!expect ? query => rendered``)."""
    return TraceEvent(
        "expect", query=render_query(query), expected=expected, lineno=lineno
    )


def parse_trace_line(line: str, lineno: int = 0) -> Optional[TraceEvent]:
    """Parse one raw trace line; ``None`` for blank/comment-only lines.

    Raises :class:`~repro.exceptions.ParseError` on malformed lines, with the
    line number in the message.
    """
    # Strip comments exactly like the CLI's --updates reader, except inside
    # !expect payloads, where the rendered answer is the rest of the line.
    stripped = line.strip()
    if not stripped.startswith("!expect"):
        stripped = line.split("%", 1)[0].split("#", 1)[0].strip()
    if not stripped:
        return None
    try:
        if stripped[0] == "+":
            return insert_event(stripped[1:].strip().rstrip("."), lineno)
        if stripped[0] == "-":
            return retract_event(stripped[1:].strip().rstrip("."), lineno)
        if stripped[0] == "?":
            return query_event(stripped, lineno)
        if stripped.startswith("@think"):
            return think_event(float(stripped[len("@think"):].strip()), lineno)
        if stripped == "!check":
            return check_event(lineno)
        if stripped.startswith("!expect"):
            payload = stripped[len("!expect"):].strip()
            if "=>" not in payload:
                raise ParseError(
                    f"line {lineno}: !expect needs '? query => rendered-answer'"
                )
            query_text, expected = payload.split("=>", 1)
            return expect_event(query_text.strip(), expected.strip(), lineno)
    except ParseError:
        raise
    except ValueError as error:
        raise ParseError(f"line {lineno}: {error}") from error
    raise ParseError(
        f"line {lineno}: expected '+fact.', '-fact.', '? query', '@think s', "
        f"'!check' or '!expect ...', got {stripped!r}"
    )


def parse_trace(text: str) -> list[TraceEvent]:
    """Parse a whole trace file into its events (blank/comment lines dropped)."""
    events: list[TraceEvent] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        event = parse_trace_line(line, lineno)
        if event is not None:
            events.append(event)
    return events


def format_event(event: TraceEvent) -> str:
    """The canonical single-line rendering of an event (inverse of parsing)."""
    if event.kind == "insert":
        return f"+ {event.atom}."
    if event.kind == "retract":
        return f"- {event.atom}."
    if event.kind == "query":
        return event.query
    if event.kind == "think":
        return f"@think {event.seconds:g}"
    if event.kind == "check":
        return "!check"
    if event.kind == "expect":
        return f"!expect {event.query} => {event.expected}"
    raise ValueError(f"unknown trace event kind {event.kind!r}")  # pragma: no cover


def format_trace(events: Iterable[TraceEvent], *, header: str = "") -> str:
    """Render events as trace text; ``parse_trace`` inverts it exactly."""
    lines = [f"% {line}" for line in header.splitlines()] if header else []
    lines.extend(format_event(event) for event in events)
    return "\n".join(lines) + "\n"


def generate_trace(
    dynamic_facts: Sequence[Atom],
    queries: Sequence[str],
    *,
    length: int = 60,
    seed: int = 0,
    initially_present: Iterable[Atom] = (),
    query_ratio: float = 0.35,
    checkpoint_every: int = 10,
    think_time: float = 0.0,
) -> list[TraceEvent]:
    """A deterministic random interleaving of updates, queries and checkpoints.

    ``dynamic_facts`` is the pool of facts the trace may toggle;
    ``initially_present`` names the pool members already in the database when
    replay starts (a pool fact currently present is retracted, an absent one
    inserted, so the trace is always replayable from that state).  With
    probability ``query_ratio`` an event is instead a query drawn from
    ``queries``.  Every ``checkpoint_every`` events a ``!check`` differential
    checkpoint is emitted (and one final checkpoint at the end).  A positive
    ``think_time`` precedes each event with an ``@think`` annotation jittered
    uniformly in ``[0.5, 1.5] * think_time``.  Deterministic given *seed*.
    """
    if not dynamic_facts and not queries:
        raise ValueError("generate_trace needs a fact pool or queries")
    rng = random.Random(seed)
    pool = list(dynamic_facts)
    present = set(initially_present) & set(pool)
    events: list[TraceEvent] = []
    since_checkpoint = 0
    for _ in range(length):
        if think_time > 0.0:
            events.append(think_event(think_time * rng.uniform(0.5, 1.5)))
        if queries and (not pool or rng.random() < query_ratio):
            events.append(query_event(rng.choice(queries)))
        else:
            fact = rng.choice(pool)
            if fact in present:
                present.discard(fact)
                events.append(retract_event(fact))
            else:
                present.add(fact)
                events.append(insert_event(fact))
        since_checkpoint += 1
        if checkpoint_every and since_checkpoint >= checkpoint_every:
            events.append(check_event())
            since_checkpoint = 0
    if not events or events[-1].kind != "check":
        events.append(check_event())
    return events
