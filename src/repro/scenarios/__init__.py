"""Scenario corpus + trace-replay harness (ROADMAP direction 4).

A registry of named, parameterized workloads — RCA/diagnosis telemetry,
access-control policies, win/move game graphs, LUBM-style DL ontologies and
supply-chain chase workloads — each bundling ``(program, database, queries,
update trace)``, plus a line-oriented trace format (a superset of the
``--updates`` script grammar with think-time annotations and
expected-answer checkpoints) and a replay client that drives a warm engine
through a trace while recording per-event latency percentiles, cache
hit-rates and divergence against the from-scratch oracle.

See ``docs/scenarios.md`` for the registry API, the trace grammar and the
CLI verbs (``repro scenarios list|run|record|replay``).
"""

from .registry import (
    Scenario,
    ScenarioBundle,
    build_scenario,
    get_scenario,
    scenario,
    scenario_names,
)
from .replay import (
    MaterializedTarget,
    RebuildTarget,
    ReplayInterrupted,
    ReplayReport,
    build_target,
    percentile,
    record_trace,
    replay_scenario,
    replay_trace,
)
from .trace import (
    TraceEvent,
    check_event,
    expect_event,
    format_event,
    format_trace,
    generate_trace,
    insert_event,
    parse_trace,
    parse_trace_line,
    query_event,
    retract_event,
    think_event,
)

__all__ = [
    "Scenario",
    "ScenarioBundle",
    "build_scenario",
    "get_scenario",
    "scenario",
    "scenario_names",
    "MaterializedTarget",
    "RebuildTarget",
    "ReplayInterrupted",
    "ReplayReport",
    "build_target",
    "percentile",
    "record_trace",
    "replay_scenario",
    "replay_trace",
    "TraceEvent",
    "check_event",
    "expect_event",
    "format_event",
    "format_trace",
    "generate_trace",
    "insert_event",
    "parse_trace",
    "parse_trace_line",
    "query_event",
    "retract_event",
    "think_event",
]
