"""Greatest unfounded sets (Sec. 2.6 of the paper).

A set ``U ⊆ HB_P`` is an *unfounded set* of ``P`` relative to an
interpretation ``I`` iff for every atom ``a ∈ U`` and every rule
``r ∈ ground(P)`` with head ``a``, either

* (i) ``¬b ∈ I ∪ ¬.U`` for some positive body atom ``b``, or
* (ii) ``b ∈ I`` for some negative body atom ``b``.

The union of unfounded sets is unfounded, so a greatest unfounded set
``U_P(I)`` exists.  We compute it by the standard complement construction:
the atoms *not* in ``U_P(I)`` are exactly those with a "potentially usable"
derivation, i.e. the least fixpoint of the operator that fires a rule whose
positive body atoms are all potentially derivable and not false in ``I`` and
whose negative body atoms are all not true in ``I``.  ``U_P(I)`` is then the
relevant universe minus that least fixpoint.

The least fixpoint runs as a single worklist propagation over the program's
:class:`~repro.lp.fixpoint.RuleIndex` (rules indexed by their positive body
atoms with per-rule unsatisfied counters), so it costs time linear in the
size of the ground program.  The seed's whole-program re-scan loop is
retained as :func:`possibly_true_atoms_naive` — it is the audit-friendly
transcription of the definition and the cross-check target of the tests.

Only atoms of the ground program's relevant universe are ever returned:
every atom outside it is trivially unfounded (it heads no rule), and callers
(the W_P iteration, the Datalog± engine) treat such atoms as false by default.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..lang.atoms import Atom
from .grounding import GroundProgram
from .interpretation import Interpretation

__all__ = [
    "greatest_unfounded_set",
    "is_unfounded_set",
    "possibly_true_atoms",
    "possibly_true_atoms_naive",
]


def possibly_true_atoms(
    program: GroundProgram,
    interpretation: Interpretation,
    *,
    universe: Optional[Iterable[Atom]] = None,
) -> set[Atom]:
    """The atoms with a potentially usable derivation w.r.t. *interpretation*.

    An atom is *possibly true* iff some rule with that head has (a) every
    positive body atom possibly true and not false in ``I`` and (b) every
    negative body atom not true in ``I``.  This is the complement (inside the
    relevant universe) of the greatest unfounded set.  One worklist
    propagation over the program's rule index.
    """
    return program.index().possibly_true(interpretation)


def possibly_true_atoms_naive(
    program: GroundProgram,
    interpretation: Interpretation,
    *,
    universe: Optional[Iterable[Atom]] = None,
) -> set[Atom]:
    """Reference implementation of :func:`possibly_true_atoms`.

    Iterates the defining operator to its least fixpoint by re-scanning every
    rule each round — quadratic, but a line-by-line match with the definition;
    the property tests cross-check the worklist implementation against it.
    """
    possibly: set[Atom] = set()
    changed = True
    rules = program.rules()
    while changed:
        changed = False
        for rule in rules:
            if rule.head in possibly:
                continue
            if _rule_possibly_fires(rule, interpretation, possibly):
                possibly.add(rule.head)
                changed = True
    return possibly


def _rule_possibly_fires(rule, interpretation: Interpretation, possibly: set[Atom]) -> bool:
    """Can *rule* still fire given ``I`` and the current possibly-true set?"""
    for body_atom in rule.body_pos:
        if interpretation.is_false(body_atom):
            return False
        if body_atom not in possibly:
            return False
    for body_atom in rule.body_neg:
        if interpretation.is_true(body_atom):
            return False
    return True


def greatest_unfounded_set(
    program: GroundProgram,
    interpretation: Interpretation,
    *,
    universe: Optional[Iterable[Atom]] = None,
) -> set[Atom]:
    """The greatest unfounded set ``U_P(I)`` restricted to the relevant universe.

    Parameters
    ----------
    program:
        The finite ground program.
    interpretation:
        The current partial interpretation ``I``.
    universe:
        The atom universe to consider; defaults to the program's relevant
        universe (every atom occurring in some rule).  Atoms outside the
        program's relevant universe are unfounded regardless, so callers that
        pass a larger universe simply get those extra atoms included.
    """
    atom_universe = set(universe) if universe is not None else set(program.atoms())
    possibly = possibly_true_atoms(program, interpretation)
    return {a for a in atom_universe if a not in possibly}


def is_unfounded_set(
    candidate: Iterable[Atom],
    program: GroundProgram,
    interpretation: Interpretation,
) -> bool:
    """Check the unfounded-set conditions (i)/(ii) for an explicit candidate set.

    Used by tests and by the property-based suite to validate
    :func:`greatest_unfounded_set` against the paper's definition.
    """
    unfounded = set(candidate)
    for atom in unfounded:
        for rule in program.rules_with_head(atom):
            if not _rule_blocked(rule, interpretation, unfounded):
                return False
    return True


def _rule_blocked(rule, interpretation: Interpretation, unfounded: set[Atom]) -> bool:
    """Is *rule* blocked in the sense of conditions (i)/(ii) of the definition?"""
    for body_atom in rule.body_pos:
        if interpretation.is_false(body_atom) or body_atom in unfounded:
            return True
    for body_atom in rule.body_neg:
        if interpretation.is_true(body_atom):
            return True
    return False
