"""Stable-model (answer-set) semantics for finite ground normal programs.

The paper remarks that the WFS "approximates the answer set semantics": every
well-founded atom is true in every stable model and every unfounded atom is
false in every stable model.  This module provides a small, exact stable-model
facility so the test-suite can check that property on concrete programs:

* :func:`is_stable_model` — test whether a candidate atom set is a stable
  model (least model of its Gelfond–Lifschitz reduct);
* :func:`stable_models` — enumerate all stable models by search over the
  undefined atoms (exponential in the worst case, intended for the small
  programs used in tests and ablation benchmarks only).

The search is pruned with the well-founded model: true atoms must be in, false
atoms must be out, which is exactly the approximation property being validated.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Optional

from ..lang.atoms import Atom
from .grounding import GroundProgram
from .wfs import well_founded_model

__all__ = ["is_stable_model", "stable_models"]


def is_stable_model(program: GroundProgram, candidate: Iterable[Atom]) -> bool:
    """Is *candidate* a stable model of the ground program?

    ``M`` is stable iff ``M`` equals the least model of the reduct ``P^M``,
    computed as one ``Γ`` propagation on the program's rule index (the reduct
    is represented by blocking rules, never materialised).
    """
    candidate_set = set(candidate)
    return program.index().gamma(candidate_set) == candidate_set


def stable_models(
    program: GroundProgram,
    *,
    max_undefined: int = 25,
    use_wfs_pruning: bool = True,
) -> Iterator[set[Atom]]:
    """Enumerate the stable models of a finite ground normal program.

    The search space is the power set of the atoms left *undefined* by the
    well-founded model (when pruning is on): by the classical approximation
    theorem every stable model contains all well-founded atoms and no
    unfounded atom, so only undefined atoms need to be guessed.

    Parameters
    ----------
    program:
        The finite ground program.
    max_undefined:
        Guard against accidental exponential blow-ups: if more than this many
        atoms are undefined a ``ValueError`` is raised (2^25 candidate sets is
        already far beyond what the tests need).
    use_wfs_pruning:
        When ``False``, search over all atoms of the relevant universe instead
        (used by tests to confirm the pruned and unpruned enumerations agree).
    """
    universe = sorted(program.atoms(), key=lambda a: a.sort_key())
    if use_wfs_pruning:
        wfm = well_founded_model(program)
        fixed_true = [a for a in universe if wfm.is_true(a)]
        guessable = [a for a in universe if wfm.is_undefined(a)]
    else:
        fixed_true = []
        guessable = list(universe)

    if len(guessable) > max_undefined:
        raise ValueError(
            f"{len(guessable)} atoms would need to be guessed, exceeding max_undefined={max_undefined}"
        )

    seen: set[frozenset[Atom]] = set()
    for bits in itertools.product((False, True), repeat=len(guessable)):
        candidate = set(fixed_true)
        candidate.update(a for a, chosen in zip(guessable, bits) if chosen)
        frozen = frozenset(candidate)
        if frozen in seen:
            continue
        if is_stable_model(program, candidate):
            seen.add(frozen)
            yield candidate
