"""Grounding of normal logic programs (Sec. 2.2: ``ground(P)``).

The semantics of a normal program is defined on its grounding.  Materialising
the full grounding over the Herbrand base is hopeless in general (and
impossible with function symbols), so this module implements *relevant
grounding*: only rule instances whose positive body atoms are potentially
derivable are produced.  This is the standard "intelligent grounding" used by
Datalog/ASP systems and it is sound for the well-founded semantics because an
atom with no potentially-applicable rule is unfounded anyway.

Two entry points:

* :func:`relevant_grounding` — iterate rule application (ignoring negative
  bodies) from the program's facts to a fixpoint, producing a
  :class:`GroundProgram`.  The iteration is *semi-naive*: a persistent
  :class:`PredicateIndex` over the candidate atoms is grown incrementally and
  each round only instantiates rules against the atoms that are new since the
  previous round (the delta), so work is proportional to the new instances
  rather than to everything derived so far.  Terminates for function-free
  programs; a round / atom budget guards the function-symbol case.
* :func:`ground_over_atoms` — ground the rules of a program over a *fixed*
  set of candidate atoms (no fixpoint).  The Datalog± engine uses this to turn
  a finite chase segment into a finite ground program.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional, Sequence

from ..exceptions import GroundingError
from ..lang.atoms import Atom
from ..lang.program import NormalProgram
from ..lang.rules import NormalRule
from ..lang.substitution import Substitution, match
from .fixpoint import RuleIndex

__all__ = [
    "GroundProgram",
    "PredicateIndex",
    "SemiNaiveGrounder",
    "relevant_grounding",
    "ground_over_atoms",
    "ground_rule_instances",
]


class GroundProgram:
    """A finite ground normal program with the indexes the WFS computation needs.

    The program is stored as a list of ground :class:`NormalRule`; rules are
    indexed by their head atom, and the set of all atoms occurring anywhere in
    the program (the *relevant universe*) is maintained incrementally.  Atoms
    outside the relevant universe have no rule and are false under the WFS,
    so the fixpoint computations never need to look beyond it.

    :meth:`index` exposes the program's :class:`~repro.lp.fixpoint.RuleIndex`
    — built lazily, cached, and grown incrementally as rules are added, so the
    Datalog± engine's iterative deepening never rebuilds it from scratch.
    """

    def __init__(self, rules: Iterable[NormalRule] = ()):
        self._rules: list[NormalRule] = []
        self._seen: set[NormalRule] = set()
        self._by_head: dict[Atom, list[NormalRule]] = {}
        self._atoms: set[Atom] = set()
        self._atoms_frozen: Optional[frozenset[Atom]] = None
        self._index: Optional[RuleIndex] = None
        for rule in rules:
            self.add(rule)

    # -- construction -----------------------------------------------------------

    def add(self, rule: NormalRule) -> None:
        """Add a ground rule (duplicates ignored).

        Raises
        ------
        GroundingError
            If the rule is not ground.
        """
        if not rule.is_ground():
            raise GroundingError(f"GroundProgram only accepts ground rules, got {rule}")
        if rule in self._seen:
            return
        self._seen.add(rule)
        self._rules.append(rule)
        self._by_head.setdefault(rule.head, []).append(rule)
        atoms = self._atoms
        before = len(atoms)
        atoms.add(rule.head)
        atoms.update(rule.body_pos)
        atoms.update(rule.body_neg)
        if len(atoms) != before:
            self._atoms_frozen = None
        if self._index is not None:
            self._index.add_rule(rule)

    def update(self, rules: Iterable[NormalRule]) -> None:
        """Add every rule of *rules*."""
        for rule in rules:
            self.add(rule)

    # -- access -------------------------------------------------------------------

    def __iter__(self) -> Iterator[NormalRule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule: NormalRule) -> bool:
        return rule in self._seen

    def rules(self) -> tuple[NormalRule, ...]:
        """All ground rules, in insertion order."""
        return tuple(self._rules)

    def rules_since(self, start: int) -> tuple[NormalRule, ...]:
        """The rules appended at insertion positions ``>= start``.

        The program is append-only, so ``rules_since(len(previous_view))`` is
        exactly the delta between two observations — what the incremental
        condensation/WFS machinery re-solves against, and what callers that
        mirror the program elsewhere (benchmarks, differential tests) feed
        forward per step.
        """
        return tuple(self._rules[start:])

    def rules_with_head(self, atom: Atom) -> Sequence[NormalRule]:
        """All rules whose head is exactly *atom*."""
        return self._by_head.get(atom, ())

    def head_atoms(self) -> set[Atom]:
        """Atoms that occur as the head of at least one rule."""
        return set(self._by_head)

    def atoms(self) -> frozenset[Atom]:
        """The relevant universe: every atom occurring in some rule.

        Cached between :meth:`add` calls that introduce new atoms, so the
        per-depth model snapshots of iterative deepening share one frozenset
        instead of rebuilding an O(atoms) copy each time.
        """
        if self._atoms_frozen is None:
            self._atoms_frozen = frozenset(self._atoms)
        return self._atoms_frozen

    def index(self) -> RuleIndex:
        """The program's worklist :class:`~repro.lp.fixpoint.RuleIndex`.

        Built on first use and kept in sync incrementally by :meth:`add`, so
        repeated fixpoint computations (and iterative deepening over a growing
        program) share one index.
        """
        if self._index is None:
            self._index = RuleIndex(self._rules)
        return self._index

    def facts(self) -> list[Atom]:
        """Heads of rules with empty bodies."""
        return [r.head for r in self._rules if r.is_fact()]

    def is_positive(self) -> bool:
        """``True`` iff no rule has a negative body."""
        return all(r.is_positive() for r in self._rules)

    def positive_part(self) -> "GroundProgram":
        """The ground program with all negative body literals removed."""
        return GroundProgram(r.positive_part() for r in self._rules)

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self._rules)

    def __repr__(self) -> str:
        return f"GroundProgram({len(self._rules)} rules, {len(self._atoms)} atoms)"


class PredicateIndex:
    """A persistent predicate-name → atoms index for semi-naive grounding.

    Quacks like the mapping :func:`ground_rule_instances` expects (``get``)
    while supporting cheap incremental insertion with duplicate detection, so
    the grounding loop never rebuilds the index of everything derived so far.
    """

    __slots__ = ("_by_predicate", "_atoms")

    def __init__(self, atoms: Iterable[Atom] = ()):
        #: predicate -> insertion-ordered dict used as a set: iteration is
        #: deterministic and :meth:`discard` is O(1), which plain lists are not
        self._by_predicate: dict[str, dict[Atom, None]] = {}
        self._atoms: set[Atom] = set()
        for atom in atoms:
            self.add(atom)

    def add(self, atom: Atom) -> bool:
        """Insert *atom*; return ``True`` iff it was not present before."""
        if atom in self._atoms:
            return False
        self._atoms.add(atom)
        self._by_predicate.setdefault(atom.predicate, {})[atom] = None
        return True

    def discard(self, atom: Atom) -> bool:
        """Remove *atom* if present; return ``True`` iff it was removed."""
        if atom not in self._atoms:
            return False
        self._atoms.discard(atom)
        bucket = self._by_predicate.get(atom.predicate)
        if bucket is not None:
            bucket.pop(atom, None)
        return True

    def get(self, predicate: str, default: Sequence[Atom] = ()) -> Iterable[Atom]:
        """The atoms with the given predicate name (mapping protocol)."""
        return self._by_predicate.get(predicate, default)

    def __len__(self) -> int:
        return len(self._atoms)

    def __contains__(self, atom: Atom) -> bool:
        return atom in self._atoms

    def atoms(self) -> frozenset[Atom]:
        """Every indexed atom."""
        return frozenset(self._atoms)

    def __repr__(self) -> str:
        return f"PredicateIndex({len(self._atoms)} atoms, {len(self._by_predicate)} predicates)"


def ground_rule_instances(
    rule: NormalRule,
    atom_index: Mapping[str, Sequence[Atom]],
    *,
    require_ground: bool = True,
) -> Iterator[NormalRule]:
    """Enumerate ground instances of *rule* over the given candidate atoms.

    Every positive body atom must match an atom of ``atom_index`` (a mapping
    from predicate name to candidate atoms).  Safety of the rule guarantees
    that the resulting head and negative body are ground.
    """
    if rule.is_fact():
        if rule.is_ground():
            yield rule
        return
    substitutions = _match_body(list(rule.body_pos), atom_index, Substitution.empty())
    for subst in substitutions:
        yield from _instantiate(rule, subst, require_ground)


def _instantiate(
    rule: NormalRule, subst: Substitution, require_ground: bool
) -> Iterator[NormalRule]:
    """Apply *subst* to every atom of *rule*, yielding the instance if usable."""
    head = subst.apply_atom(rule.head)
    body_pos = tuple(subst.apply_atom(a) for a in rule.body_pos)
    body_neg = tuple(subst.apply_atom(a) for a in rule.body_neg)
    instance = NormalRule(head, body_pos, body_neg)
    if require_ground and not instance.is_ground():
        return
    yield instance


def _delta_rule_instances(
    rule: NormalRule,
    full_index: "PredicateIndex",
    delta_index: "PredicateIndex",
) -> Iterator[NormalRule]:
    """Semi-naive instance enumeration: at least one positive body atom is new.

    For each position of the positive body in turn, the atom at that position
    is matched against the *delta* (atoms new since the previous round) and
    the remaining positions against the full candidate index.  Instances whose
    body atoms are all old were produced in an earlier round; instances using
    several new atoms are produced once per such position, and the caller's
    duplicate check absorbs the overlap.
    """
    patterns = list(rule.body_pos)
    for position, pattern in enumerate(patterns):
        for candidate in delta_index.get(pattern.predicate, ()):
            seeded = match(pattern, candidate)
            if seeded is None:
                continue
            rest = patterns[:position] + patterns[position + 1 :]
            for subst in _match_body(rest, full_index, seeded):
                yield from _instantiate(rule, subst, True)


def _match_body(
    patterns: list[Atom],
    atom_index: Mapping[str, Sequence[Atom]],
    subst: Substitution,
) -> Iterator[Substitution]:
    """Enumerate substitutions matching every pattern against the candidate atoms."""
    if not patterns:
        yield subst
        return
    first, rest = patterns[0], patterns[1:]
    for candidate in atom_index.get(first.predicate, ()):  # pragma: no branch
        extended = match(first, candidate, subst)
        if extended is not None:
            yield from _match_body(rest, atom_index, extended)


def _index_atoms(atoms: Iterable[Atom]) -> dict[str, list[Atom]]:
    """Group atoms by predicate name."""
    index: dict[str, list[Atom]] = {}
    for atom in atoms:
        index.setdefault(atom.predicate, []).append(atom)
    return index


def ground_over_atoms(
    program: NormalProgram | Iterable[NormalRule],
    atoms: Iterable[Atom],
) -> GroundProgram:
    """Ground every rule of *program* over the fixed candidate atom set *atoms*.

    No fixpoint is computed: a rule instance is produced iff each of its
    positive body atoms occurs in *atoms*.  Ground facts of the program are
    always included.
    """
    index = _index_atoms(atoms)
    ground = GroundProgram()
    for rule in program:
        for instance in ground_rule_instances(rule, index):
            ground.add(instance)
    return ground


class SemiNaiveGrounder:
    """Stateful semi-naive relevant grounding with resumable budgets.

    The grounder owns the persistent candidate :class:`PredicateIndex` and the
    growing :class:`GroundProgram`; :meth:`run` iterates delta rounds until a
    fixpoint (``saturated``) or a budget is hit.  Unlike the
    :func:`relevant_grounding` convenience wrapper, budget exhaustion can be
    reported as a flag instead of an exception (``raise_on_budget=False``),
    which is what the magic-sets query path uses to fall back gracefully, and
    :meth:`run` may be called again with larger budgets to resume.
    """

    def __init__(
        self,
        program: NormalProgram | Iterable[NormalRule],
        extra_atoms: Iterable[Atom] = (),
    ):
        self.ground = GroundProgram()
        self.index = PredicateIndex()
        self.rounds = 0
        #: insertion position of :attr:`ground` before the most recent
        #: :meth:`run` call; ``delta_rules()`` returns everything after it
        self._delta_start = 0
        self._delta: list[Atom] = []
        self._proper_rules: list[NormalRule] = []

        for atom in extra_atoms:
            self._seed(atom)
        once_rules: list[NormalRule] = []
        for rule in program:
            if rule.is_fact() and rule.is_ground():
                self.ground.add(rule)
                self._seed(rule.head)
            elif not rule.is_fact():
                if rule.body_pos:
                    self._proper_rules.append(rule)
                else:
                    once_rules.append(rule)

        # Rules with an empty positive body (ground constraints-by-negation
        # such as ``not q -> p``) have nothing to match: instantiate them once.
        for rule in once_rules:
            for instance in ground_rule_instances(rule, self.index):
                self.ground.add(instance)
                self._seed(instance.head)

    def _seed(self, atom: Atom) -> None:
        if self.index.add(atom):
            self._delta.append(atom)

    def add_fact(self, atom: Atom) -> None:
        """Add a ground EDB fact to the grounder's state.

        The fact rule is stored in :attr:`ground` (duplicates ignored — the
        program is append-only) and the atom joins the candidate index as a
        pending delta atom, so the next :meth:`run` grounds exactly the rule
        instances the new fact can fire.  This is the insertion seam of the
        materialized-view layer.
        """
        if not atom.is_ground():
            raise GroundingError(f"facts must be ground, got {atom}")
        self.ground.add(NormalRule(atom))
        self._seed(atom)

    def retract_fact(self, atom: Atom) -> bool:
        """Drop *atom* from the candidate index; return whether it was present.

        Purely a matching-state optimisation: already-produced rule instances
        stay in :attr:`ground` (it is append-only; the view layer tracks
        which stored rules are *active*), but future delta rounds no longer
        join against the atom.  The caller must guarantee the atom is no
        longer derivable — retracting an atom that is still a candidate would
        make future grounding incomplete — and re-seed it via
        :meth:`add_fact`/:meth:`reseed` if it ever becomes derivable again.
        """
        removed = self.index.discard(atom)
        if removed and self._delta:
            try:
                self._delta.remove(atom)
            except ValueError:
                pass
        return removed

    def reseed(self, atom: Atom) -> None:
        """Re-enter a previously retracted atom into the candidate index.

        Unlike :meth:`add_fact` no fact rule is stored: the atom is derivable
        through existing rules again (the view layer's rederivation decided
        so) and only the matching state must catch up — the next :meth:`run`
        produces the joins the atom missed while it was out of the index.
        """
        self._seed(atom)

    @property
    def saturated(self) -> bool:
        """``True`` iff the fixpoint was reached (no pending delta atoms)."""
        return not self._delta

    def delta_rules(self) -> tuple[NormalRule, ...]:
        """The ground rules produced by the most recent :meth:`run` call.

        Budget-interrupted runs compose: a resumed :meth:`run` reports only
        its own contribution, so a caller that folds every delta forward (the
        incremental WFS layer, a mirrored program) sees each rule exactly
        once.
        """
        return self.ground.rules_since(self._delta_start)

    def run(
        self,
        *,
        max_rounds: Optional[int] = None,
        max_atoms: Optional[int] = None,
        raise_on_budget: bool = True,
    ) -> bool:
        """Iterate delta rounds to a fixpoint; return whether it saturated.

        ``max_rounds`` bounds the *total* number of rounds across calls and
        ``max_atoms`` the size of the candidate index.  On budget exhaustion
        either a :class:`GroundingError` is raised (``raise_on_budget=True``)
        or ``False`` is returned and the grounder stays resumable.  The rules
        this call produced are afterwards available as :meth:`delta_rules`.
        """
        self._delta_start = len(self.ground)
        while self._delta:
            if max_rounds is not None and self.rounds + 1 > max_rounds:
                if raise_on_budget:
                    raise GroundingError(
                        f"relevant grounding did not converge within {max_rounds} rounds "
                        "(the program probably has function symbols); use a budget or the chase engine"
                    )
                return False
            self.rounds += 1
            delta_index = PredicateIndex(self._delta)
            self._delta = []
            for rule in self._proper_rules:
                # materialise before seeding: the candidate buckets are
                # insertion-ordered dicts, so the scan must see a snapshot
                # (freshly seeded heads are matched next round via the delta)
                for instance in list(
                    _delta_rule_instances(rule, self.index, delta_index)
                ):
                    if instance not in self.ground:
                        self.ground.add(instance)
                        self._seed(instance.head)
            if max_atoms is not None and len(self.index) > max_atoms:
                if raise_on_budget:
                    raise GroundingError(
                        f"relevant grounding exceeded the atom budget of {max_atoms}"
                    )
                return False
        return True


def relevant_grounding(
    program: NormalProgram | Iterable[NormalRule],
    extra_atoms: Iterable[Atom] = (),
    *,
    max_rounds: Optional[int] = None,
    max_atoms: Optional[int] = None,
    backend: str = "tuple",
) -> GroundProgram:
    """Relevant (intelligent) grounding of a normal program, semi-naively.

    Starting from the program's ground facts plus *extra_atoms*, rules are
    instantiated over the atoms derived so far (treating negative bodies as
    satisfiable) and their head atoms are added to the candidate set, until a
    fixpoint is reached.  The result contains exactly the rule instances whose
    positive bodies are potentially derivable, which preserves the WFS (and
    the stable and stratified semantics) of the full grounding.

    Each round after the first only matches rules against the *delta* — the
    candidate atoms that are new since the previous round — over a persistent
    :class:`PredicateIndex`, instead of re-matching every rule against every
    candidate from scratch.  The loop itself lives in
    :class:`SemiNaiveGrounder`; this wrapper runs it to saturation.

    Parameters
    ----------
    program:
        The normal program to ground.
    extra_atoms:
        Additional ground atoms treated as potentially true (e.g. a database).
    max_rounds, max_atoms:
        Safety budgets for programs with function symbols, whose relevant
        grounding may be infinite.  Exceeding a budget raises
        :class:`GroundingError`.
    backend:
        Grounding executor: ``"tuple"`` (this module's per-candidate matcher),
        ``"columnar"`` or ``"sqlite"`` (bulk relational delta joins; see
        :mod:`repro.lp.columnar`).  The resulting programs are equal as rule
        sets for every backend.
    """
    # Imported here: repro.lp.columnar builds on this module's primitives.
    from .columnar import make_grounder

    grounder = make_grounder(program, extra_atoms, backend=backend)
    grounder.run(max_rounds=max_rounds, max_atoms=max_atoms, raise_on_budget=True)
    return grounder.ground


def _relevant_grounding_naive(
    program: NormalProgram | Iterable[NormalRule],
    extra_atoms: Iterable[Atom] = (),
    *,
    max_rounds: Optional[int] = None,
    max_atoms: Optional[int] = None,
) -> GroundProgram:
    """The seed's whole-program re-scan grounding, retained as a reference.

    Semantically identical to :func:`relevant_grounding`; the test-suite
    cross-checks the semi-naive implementation against it on the workload
    generators.  Not part of the public API.
    """
    rules = list(program)
    candidates: set[Atom] = set(extra_atoms)
    ground = GroundProgram()
    for rule in rules:
        if rule.is_fact() and rule.is_ground():
            ground.add(rule)
            candidates.add(rule.head)

    proper_rules = [r for r in rules if not r.is_fact()]
    rounds = 0
    changed = True
    while changed:
        changed = False
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            raise GroundingError(
                f"relevant grounding did not converge within {max_rounds} rounds "
                "(the program probably has function symbols); use a budget or the chase engine"
            )
        index = _index_atoms(candidates)
        for rule in proper_rules:
            for instance in ground_rule_instances(rule, index):
                if instance not in ground:
                    ground.add(instance)
                    if instance.head not in candidates:
                        candidates.add(instance.head)
                        changed = True
        if max_atoms is not None and len(candidates) > max_atoms:
            raise GroundingError(
                f"relevant grounding exceeded the atom budget of {max_atoms}"
            )
    return ground
