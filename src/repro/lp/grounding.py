"""Grounding of normal logic programs (Sec. 2.2: ``ground(P)``).

The semantics of a normal program is defined on its grounding.  Materialising
the full grounding over the Herbrand base is hopeless in general (and
impossible with function symbols), so this module implements *relevant
grounding*: only rule instances whose positive body atoms are potentially
derivable are produced.  This is the standard "intelligent grounding" used by
Datalog/ASP systems and it is sound for the well-founded semantics because an
atom with no potentially-applicable rule is unfounded anyway.

Two entry points:

* :func:`relevant_grounding` — iterate rule application (ignoring negative
  bodies) from the program's facts to a fixpoint, producing a
  :class:`GroundProgram`.  Terminates for function-free programs; a round /
  atom budget guards the function-symbol case.
* :func:`ground_over_atoms` — ground the rules of a program over a *fixed*
  set of candidate atoms (no fixpoint).  The Datalog± engine uses this to turn
  a finite chase segment into a finite ground program.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional, Sequence

from ..exceptions import GroundingError
from ..lang.atoms import Atom
from ..lang.program import NormalProgram
from ..lang.rules import NormalRule
from ..lang.substitution import Substitution, match

__all__ = ["GroundProgram", "relevant_grounding", "ground_over_atoms", "ground_rule_instances"]


class GroundProgram:
    """A finite ground normal program with the indexes the WFS computation needs.

    The program is stored as a list of ground :class:`NormalRule`; rules are
    indexed by their head atom, and the set of all atoms occurring anywhere in
    the program (the *relevant universe*) is maintained incrementally.  Atoms
    outside the relevant universe have no rule and are false under the WFS,
    so the fixpoint computations never need to look beyond it.
    """

    def __init__(self, rules: Iterable[NormalRule] = ()):
        self._rules: list[NormalRule] = []
        self._seen: set[NormalRule] = set()
        self._by_head: dict[Atom, list[NormalRule]] = {}
        self._atoms: set[Atom] = set()
        for rule in rules:
            self.add(rule)

    # -- construction -----------------------------------------------------------

    def add(self, rule: NormalRule) -> None:
        """Add a ground rule (duplicates ignored).

        Raises
        ------
        GroundingError
            If the rule is not ground.
        """
        if not rule.is_ground():
            raise GroundingError(f"GroundProgram only accepts ground rules, got {rule}")
        if rule in self._seen:
            return
        self._seen.add(rule)
        self._rules.append(rule)
        self._by_head.setdefault(rule.head, []).append(rule)
        self._atoms.add(rule.head)
        self._atoms.update(rule.body_pos)
        self._atoms.update(rule.body_neg)

    def update(self, rules: Iterable[NormalRule]) -> None:
        """Add every rule of *rules*."""
        for rule in rules:
            self.add(rule)

    # -- access -------------------------------------------------------------------

    def __iter__(self) -> Iterator[NormalRule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule: NormalRule) -> bool:
        return rule in self._seen

    def rules(self) -> tuple[NormalRule, ...]:
        """All ground rules, in insertion order."""
        return tuple(self._rules)

    def rules_with_head(self, atom: Atom) -> Sequence[NormalRule]:
        """All rules whose head is exactly *atom*."""
        return self._by_head.get(atom, ())

    def head_atoms(self) -> set[Atom]:
        """Atoms that occur as the head of at least one rule."""
        return set(self._by_head)

    def atoms(self) -> frozenset[Atom]:
        """The relevant universe: every atom occurring in some rule."""
        return frozenset(self._atoms)

    def facts(self) -> list[Atom]:
        """Heads of rules with empty bodies."""
        return [r.head for r in self._rules if r.is_fact()]

    def is_positive(self) -> bool:
        """``True`` iff no rule has a negative body."""
        return all(r.is_positive() for r in self._rules)

    def positive_part(self) -> "GroundProgram":
        """The ground program with all negative body literals removed."""
        return GroundProgram(r.positive_part() for r in self._rules)

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self._rules)

    def __repr__(self) -> str:
        return f"GroundProgram({len(self._rules)} rules, {len(self._atoms)} atoms)"


def ground_rule_instances(
    rule: NormalRule,
    atom_index: Mapping[str, Sequence[Atom]],
    *,
    require_ground: bool = True,
) -> Iterator[NormalRule]:
    """Enumerate ground instances of *rule* over the given candidate atoms.

    Every positive body atom must match an atom of ``atom_index`` (a mapping
    from predicate name to candidate atoms).  Safety of the rule guarantees
    that the resulting head and negative body are ground.
    """
    if rule.is_fact():
        if rule.is_ground():
            yield rule
        return
    substitutions = _match_body(list(rule.body_pos), atom_index, Substitution.empty())
    for subst in substitutions:
        head = subst.apply_atom(rule.head)
        body_pos = tuple(subst.apply_atom(a) for a in rule.body_pos)
        body_neg = tuple(subst.apply_atom(a) for a in rule.body_neg)
        instance = NormalRule(head, body_pos, body_neg)
        if require_ground and not instance.is_ground():
            continue
        yield instance


def _match_body(
    patterns: list[Atom],
    atom_index: Mapping[str, Sequence[Atom]],
    subst: Substitution,
) -> Iterator[Substitution]:
    """Enumerate substitutions matching every pattern against the candidate atoms."""
    if not patterns:
        yield subst
        return
    first, rest = patterns[0], patterns[1:]
    for candidate in atom_index.get(first.predicate, ()):  # pragma: no branch
        extended = match(first, candidate, subst)
        if extended is not None:
            yield from _match_body(rest, atom_index, extended)


def _index_atoms(atoms: Iterable[Atom]) -> dict[str, list[Atom]]:
    """Group atoms by predicate name."""
    index: dict[str, list[Atom]] = {}
    for atom in atoms:
        index.setdefault(atom.predicate, []).append(atom)
    return index


def ground_over_atoms(
    program: NormalProgram | Iterable[NormalRule],
    atoms: Iterable[Atom],
) -> GroundProgram:
    """Ground every rule of *program* over the fixed candidate atom set *atoms*.

    No fixpoint is computed: a rule instance is produced iff each of its
    positive body atoms occurs in *atoms*.  Ground facts of the program are
    always included.
    """
    index = _index_atoms(atoms)
    ground = GroundProgram()
    for rule in program:
        for instance in ground_rule_instances(rule, index):
            ground.add(instance)
    return ground


def relevant_grounding(
    program: NormalProgram | Iterable[NormalRule],
    extra_atoms: Iterable[Atom] = (),
    *,
    max_rounds: Optional[int] = None,
    max_atoms: Optional[int] = None,
) -> GroundProgram:
    """Relevant (intelligent) grounding of a normal program.

    Starting from the program's ground facts plus *extra_atoms*, rules are
    instantiated over the atoms derived so far (treating negative bodies as
    satisfiable) and their head atoms are added to the candidate set, until a
    fixpoint is reached.  The result contains exactly the rule instances whose
    positive bodies are potentially derivable, which preserves the WFS (and
    the stable and stratified semantics) of the full grounding.

    Parameters
    ----------
    program:
        The normal program to ground.
    extra_atoms:
        Additional ground atoms treated as potentially true (e.g. a database).
    max_rounds, max_atoms:
        Safety budgets for programs with function symbols, whose relevant
        grounding may be infinite.  Exceeding a budget raises
        :class:`GroundingError`.
    """
    rules = list(program)
    candidates: set[Atom] = set(extra_atoms)
    ground = GroundProgram()
    for rule in rules:
        if rule.is_fact() and rule.is_ground():
            ground.add(rule)
            candidates.add(rule.head)

    proper_rules = [r for r in rules if not r.is_fact()]
    rounds = 0
    changed = True
    while changed:
        changed = False
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            raise GroundingError(
                f"relevant grounding did not converge within {max_rounds} rounds "
                "(the program probably has function symbols); use a budget or the chase engine"
            )
        index = _index_atoms(candidates)
        for rule in proper_rules:
            for instance in ground_rule_instances(rule, index):
                if instance not in ground:
                    ground.add(instance)
                    if instance.head not in candidates:
                        candidates.add(instance.head)
                        changed = True
        if max_atoms is not None and len(candidates) > max_atoms:
            raise GroundingError(
                f"relevant grounding exceeded the atom budget of {max_atoms}"
            )
    return ground
