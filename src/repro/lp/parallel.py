"""Parallel evaluation of the condensation DAG (ready-set scheduling).

The SCC-modular evaluator of :mod:`repro.lp.wfs` already computes each
condensation component as a *pure function* of its external inputs — the
modularity ("splitting") property of the well-founded semantics.  The
dependencies-first topological order is therefore exactly a parallel
schedule: a component may be solved the moment every component it depends on
is solved, and two components with no path between them may be solved
concurrently.  This module implements that schedule:

* :func:`run_ready_set` — a generic ready-set scheduler over a DAG.  Nodes
  whose dependencies are complete are dispatched to a worker pool; the
  coordinator collects results and releases dependents.  ``workers=1``
  degrades to the plain serial loop over the given topological order, which
  stays the differential oracle for every parallel run.
* :func:`resolve_components_scratch` / :func:`resolve_components_incremental`
  — the WFS drivers.  Each worker calls the unchanged
  :func:`repro.lp.wfs._solve_component` against an **immutable snapshot** of
  its external true/false inputs (built by the coordinator from the already
  completed dependency results); the caller commits the returned deltas in
  topological order, so models *and* stats (``rounds``, resolve/reuse
  counts, changed-atom sets) are bit-identical to the serial evaluation.
* :class:`ComponentShard` — a picklable slice of a
  :class:`~repro.lp.fixpoint.RuleIndex` holding exactly one component's
  rules.  It *borrows* the index's closure implementations unchanged, so the
  process-pool path can never drift from the in-process one.

Executor selection: ``"thread"`` uses a shared :class:`ThreadPoolExecutor`
(true parallelism on free-threaded CPython 3.13+, latency overlap under a
GIL), ``"process"`` ships :class:`ComponentShard` payloads to a shared
:class:`ProcessPoolExecutor`, and ``"auto"`` picks threads on free-threaded
builds and processes otherwise.  Pools are process-global and reused across
calls; they are an implementation detail and never outlive the interpreter.
"""

from __future__ import annotations

import atexit
import heapq
import sys
import threading
from concurrent.futures import FIRST_COMPLETED, Executor, ProcessPoolExecutor, ThreadPoolExecutor, wait
from typing import Callable, Collection, Hashable, Iterable, Mapping, Optional, Sequence

from .fixpoint import IncrementalCondensation, RuleIndex

__all__ = [
    "ComponentShard",
    "free_threading_available",
    "resolve_executor_kind",
    "run_ready_set",
    "resolve_components_scratch",
    "resolve_components_incremental",
]


# ---------------------------------------------------------------------------
# Executor selection and pooling
# ---------------------------------------------------------------------------


def free_threading_available() -> bool:
    """``True`` on a free-threaded (PEP 703) build running without the GIL."""
    probe = getattr(sys, "_is_gil_enabled", None)
    return probe is not None and not probe()


def resolve_executor_kind(executor: str) -> str:
    """Normalise an executor request to ``"thread"`` or ``"process"``.

    ``"auto"`` picks threads when the interpreter is free-threaded (worker
    threads then run closures truly in parallel) and processes otherwise —
    the only way to get CPU parallelism under a GIL.  Explicit ``"thread"``
    is still useful under a GIL for latency-bound serving workloads (see
    ``benchmarks/bench_parallel_wfs.py``): independent components' external
    waits overlap even though their compute serialises.
    """
    if executor in ("thread", "process"):
        return executor
    if executor != "auto":
        raise ValueError(f"unknown executor kind: {executor!r}")
    return "thread" if free_threading_available() else "process"


_pools: dict[tuple[str, int], Executor] = {}
_pools_lock = threading.Lock()


def _shutdown_pools() -> None:
    with _pools_lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(_shutdown_pools)


def _get_pool(kind: str, workers: int) -> Executor:
    """A shared executor for (kind, workers), created lazily and reused.

    Process pools degrade to thread pools when the platform cannot start
    worker processes (restricted containers without working semaphores) —
    results are identical either way, only the parallelism regime changes.
    """
    key = (kind, workers)
    with _pools_lock:
        pool = _pools.get(key)
        if pool is None:
            if kind == "process":
                try:
                    pool = ProcessPoolExecutor(max_workers=workers)
                except (OSError, ImportError, NotImplementedError):
                    pool = ThreadPoolExecutor(max_workers=workers)
            else:
                pool = ThreadPoolExecutor(max_workers=workers)
            _pools[key] = pool
    return pool


# ---------------------------------------------------------------------------
# The generic ready-set scheduler
# ---------------------------------------------------------------------------


def run_ready_set(
    order: Sequence[Hashable],
    deps: Mapping[Hashable, Collection[Hashable]],
    plan: Callable[[Hashable, Mapping[Hashable, object]], tuple],
    *,
    workers: int = 1,
    executor_kind: str = "thread",
    finish: Optional[Callable[[Hashable, object], object]] = None,
) -> dict:
    """Run a DAG of tasks, dispatching nodes as their dependencies complete.

    ``order`` is a topological order of the nodes (the serial execution
    order and the tie-break for parallel dispatch); ``deps[n]`` names the
    nodes that must complete before ``n`` may start (entries outside
    ``order`` are treated as already complete).  ``plan(node, results)`` is
    called on the coordinator once all of ``node``'s dependencies are in
    ``results`` and returns either ``("done", value)`` — the node completes
    immediately, e.g. an incremental reuse decision — or
    ``("call", fn, args)`` — ``fn(*args)`` is dispatched to the pool.
    ``finish(node, raw)``, when given, post-processes a dispatched call's
    raw return value on the coordinator (building deltas, attaching
    metadata) before it is published to dependents.

    With ``workers=1`` no pool is touched: nodes run inline in ``order``,
    which is by construction dependency-compatible — this is exactly the
    serial loop and the oracle every parallel run is pinned against.  With
    ``workers>1`` the ready set is kept as a heap on topological position,
    so dispatch order is deterministic given a completion order.  The first
    task failure (in topological order) is re-raised after in-flight work
    drains; no new nodes start once a failure is seen.
    """
    results: dict = {}

    if workers <= 1:
        for node in order:
            action = plan(node, results)
            if action[0] == "done":
                results[node] = action[1]
            else:
                raw = action[1](*action[2])
                results[node] = finish(node, raw) if finish is not None else raw
        return results

    pos = {node: i for i, node in enumerate(order)}
    remaining: dict[Hashable, set] = {}
    dependents: dict[Hashable, list] = {}
    for node in order:
        blocking = {d for d in deps.get(node, ()) if d in pos and d != node}
        remaining[node] = blocking
        for d in blocking:
            dependents.setdefault(d, []).append(node)

    ready = [pos[node] for node in order if not remaining[node]]
    heapq.heapify(ready)
    inflight: dict = {}
    errors: dict = {}
    pool = _get_pool(executor_kind, workers)

    def complete(node, value) -> None:
        results[node] = value
        for dep in dependents.get(node, ()):
            blocking = remaining[dep]
            blocking.discard(node)
            if not blocking:
                heapq.heappush(ready, pos[dep])

    while ready or inflight:
        while ready and not errors:
            node = order[heapq.heappop(ready)]
            action = plan(node, results)
            if action[0] == "done":
                complete(node, action[1])
            else:
                future = pool.submit(action[1], *action[2])
                inflight[future] = node
        if not inflight:
            break
        done, _ = wait(inflight, return_when=FIRST_COMPLETED)
        for future in done:
            node = inflight.pop(future)
            try:
                raw = future.result()
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                errors[node] = exc
                continue
            complete(node, finish(node, raw) if finish is not None else raw)

    if errors:
        raise errors[min(errors, key=pos.get)]
    return results


# ---------------------------------------------------------------------------
# Picklable component shards (the process-pool payload)
# ---------------------------------------------------------------------------


class ComponentShard:
    """The rules of one condensation component, detached from its index.

    Exactly the slice of :class:`~repro.lp.fixpoint.RuleIndex` state the
    component closures read — per-rule head / positive-body / negative-body
    atom ids, keyed by the *original* rule ids — so the shard can cross a
    process boundary by pickling a few small dicts.  The closure methods are
    borrowed from :class:`RuleIndex` itself (unbound), which keeps the
    process-pool evaluation the same code as the in-process one: there is no
    second implementation to drift.
    """

    __slots__ = ("_heads", "_pos", "_neg")

    def __init__(
        self,
        heads: dict[int, int],
        pos: dict[int, tuple[int, ...]],
        neg: dict[int, tuple[int, ...]],
    ):
        self._heads = heads
        self._pos = pos
        self._neg = neg

    @classmethod
    def from_index(cls, index: RuleIndex, rule_ids: Iterable[int]) -> "ComponentShard":
        heads: dict[int, int] = {}
        pos: dict[int, tuple[int, ...]] = {}
        neg: dict[int, tuple[int, ...]] = {}
        for rule_id in rule_ids:
            heads[rule_id] = index.head_id(rule_id)
            pos[rule_id] = index.pos_ids(rule_id)
            neg[rule_id] = index.neg_ids(rule_id)
        return cls(heads, pos, neg)

    def pos_ids(self, rule_id: int) -> tuple[int, ...]:
        return self._pos[rule_id]

    def neg_ids(self, rule_id: int) -> tuple[int, ...]:
        return self._neg[rule_id]

    # The component-restricted closures only touch _heads/_pos/_neg via
    # membership tests and per-rule lookups, so the index implementations
    # work unchanged against the shard's dicts.
    definite_closure_ids = RuleIndex.definite_closure_ids
    possible_closure_ids = RuleIndex.possible_closure_ids
    _drain_closure = RuleIndex._drain_closure

    def __getstate__(self):
        return (self._heads, self._pos, self._neg)

    def __setstate__(self, state):
        self._heads, self._pos, self._neg = state


def _solve_shard(
    shard: ComponentShard,
    component: frozenset[int],
    rule_ids: tuple[int, ...],
    ext_true: frozenset[int],
    ext_false: frozenset[int],
) -> tuple[set[int], set[int], int]:
    """Process-pool entry point: solve one component from its shard."""
    from .wfs import _solve_component

    return _solve_component(shard, set(component), rule_ids, ext_true, ext_false)


# ---------------------------------------------------------------------------
# The WFS drivers
# ---------------------------------------------------------------------------


def _prepare_component(
    index: RuleIndex, member_ids: Iterable[int]
) -> tuple[set[int], list[int], set[int]]:
    """(component, active rule ids, external body atom ids) for one component."""
    component = set(member_ids)
    rule_ids = [
        rule_id
        for atom_id in component
        for rule_id in index.active_rule_ids_for_head_id(atom_id)
    ]
    externals = {
        atom_id
        for rule_id in rule_ids
        for atom_id in (*index.pos_ids(rule_id), *index.neg_ids(rule_id))
        if atom_id not in component
    }
    return component, rule_ids, externals


def _snapshot_externals(
    externals: Iterable[int],
    comp_of: Callable[[int], Hashable],
    results: Mapping[Hashable, object],
    base_true: Collection[int],
    base_false: Collection[int],
) -> tuple[frozenset[int], frozenset[int]]:
    """The immutable external-input snapshot a worker solves against.

    For an external atom whose component re-solved this round the snapshot
    reads the *new* (not yet committed) solution from ``results``; for a
    reused component it reads the base global sets, which still hold the
    stored values.  Atoms in neither set are undefined — exactly the value
    the serial loop would observe at this component's turn.
    """
    ext_true: set[int] = set()
    ext_false: set[int] = set()
    for atom_id in externals:
        outcome = results.get(comp_of(atom_id))
        if outcome is not None:
            if atom_id in outcome[0]:
                ext_true.add(atom_id)
            elif atom_id in outcome[1]:
                ext_false.add(atom_id)
        else:
            if atom_id in base_true:
                ext_true.add(atom_id)
            elif atom_id in base_false:
                ext_false.add(atom_id)
    return frozenset(ext_true), frozenset(ext_false)


def _solve_action(
    index: RuleIndex,
    component: set[int],
    rule_ids: Sequence[int],
    ext_true: frozenset[int],
    ext_false: frozenset[int],
    executor_kind: str,
    component_hook,
) -> tuple:
    """The ``("call", fn, args)`` action solving one component on a worker.

    Thread workers share the index and run the hook in-worker (so injected
    latency genuinely overlaps); process workers receive a picklable
    :class:`ComponentShard`, with the hook running on the coordinator at
    dispatch (hooks need not be picklable).
    """
    if executor_kind == "process":
        if component_hook is not None:
            component_hook(component)
        shard = ComponentShard.from_index(index, rule_ids)
        return (
            "call",
            _solve_shard,
            (shard, frozenset(component), tuple(rule_ids), ext_true, ext_false),
        )

    from .wfs import _solve_component

    def task():
        if component_hook is not None:
            component_hook(component)
        return _solve_component(index, component, rule_ids, ext_true, ext_false)

    return ("call", task, ())


def resolve_components_scratch(
    index: RuleIndex,
    *,
    workers: int,
    executor: str = "auto",
    component_hook=None,
) -> tuple[set[int], set[int], int]:
    """From-scratch parallel WFS over the index's condensation.

    Every component resolves; results commit in topological order, so the
    returned ``(true_ids, false_ids, rounds)`` triple is bit-identical to
    the serial loop in :func:`repro.lp.wfs.well_founded_model`.
    """
    kind = resolve_executor_kind(executor)
    components = index.dependency_components_ids()
    order = list(range(len(components)))
    comp_of = {
        atom_id: position
        for position, member_ids in enumerate(components)
        for atom_id in member_ids
    }
    prepared = {
        position: _prepare_component(index, components[position]) for position in order
    }
    deps = {
        position: {comp_of[a] for a in prepared[position][2]} for position in order
    }
    empty: frozenset[int] = frozenset()

    def plan(position, results):
        component, rule_ids, externals = prepared[position]
        ext_true, ext_false = _snapshot_externals(
            externals, comp_of.__getitem__, results, empty, empty
        )
        return _solve_action(
            index, component, rule_ids, ext_true, ext_false, kind, component_hook
        )

    results = run_ready_set(
        order, deps, plan, workers=workers, executor_kind=kind
    )

    true_ids: set[int] = set()
    false_ids: set[int] = set()
    rounds = 0
    for position in order:
        local_true, local_false, component_rounds = results[position]
        true_ids |= local_true
        false_ids |= local_false
        rounds += component_rounds
    return true_ids, false_ids, rounds


def resolve_components_incremental(
    index: RuleIndex,
    condensation: IncrementalCondensation,
    true_ids: Collection[int],
    false_ids: Collection[int],
    *,
    stored: Mapping[int, tuple[frozenset[int], frozenset[int]]],
    stored_inputs: Mapping[int, frozenset[int]],
    dirty: Collection[int],
    initial_changed: Collection[int],
    workers: int,
    executor: str = "auto",
    component_hook=None,
) -> dict[int, Optional[tuple[set[int], set[int], int, frozenset[int]]]]:
    """One parallel refresh of :class:`repro.lp.wfs.IncrementalWFS`.

    Returns, per component id in the condensation order, either ``None``
    (the stored solution is reused) or ``(local_true, local_false, rounds,
    inputs)`` for the caller to commit in topological order.  The
    resolve-or-reuse decision is made on the coordinator when a component's
    dependencies complete: a component re-solves iff it is ``dirty``, has no
    stored solution, or one of its stored external inputs is in
    ``initial_changed`` (dropped removed-component solutions) or in a
    resolved dependency's value delta — exactly the serial ripple, which
    checks the accumulated changed set against the same inputs.

    ``true_ids``/``false_ids`` are the caller's global sets *before* any
    commit (stored solutions of this round's resolvers still included);
    they are read-only here.  External snapshots overlay resolved
    dependencies' fresh local solutions on top of them, reproducing the
    values the serial loop observes mid-sweep.
    """
    kind = resolve_executor_kind(executor)
    order = list(condensation.order())
    known = set(order)
    comp_of = condensation.component_of_atom
    dirty = set(dirty)
    initial_changed = frozenset(initial_changed)

    prepared: dict[int, tuple[set[int], list[int], set[int]]] = {}
    deps: dict[int, set[int]] = {}
    for cid in order:
        if stored.get(cid) is not None and cid not in dirty:
            inputs = stored_inputs.get(cid) or frozenset()
            deps[cid] = {comp_of(a) for a in inputs} & known
        else:
            info = _prepare_component(index, condensation.members(cid))
            prepared[cid] = info
            deps[cid] = {comp_of(a) for a in info[2]} & known

    deltas: dict[int, frozenset[int]] = {}

    def plan(cid, results):
        info = prepared.get(cid)
        if info is None:
            # Reuse candidate: decide now — every dependency has delivered
            # its delta, so the serial changed∩inputs test is final.
            inputs = stored_inputs.get(cid) or frozenset()
            resolve = not initial_changed.isdisjoint(inputs)
            if not resolve:
                for dep in deps[cid]:
                    delta = deltas.get(dep)
                    if delta and not delta.isdisjoint(inputs):
                        resolve = True
                        break
            if not resolve:
                return ("done", None)
            info = _prepare_component(index, condensation.members(cid))
            prepared[cid] = info
        component, rule_ids, externals = info
        ext_true, ext_false = _snapshot_externals(
            externals, comp_of, results, true_ids, false_ids
        )
        return _solve_action(
            index, component, rule_ids, ext_true, ext_false, kind, component_hook
        )

    def finish(cid, raw):
        local_true, local_false, component_rounds = raw
        previous = stored.get(cid)
        if previous is None:
            deltas[cid] = frozenset(local_true | local_false)
        else:
            deltas[cid] = frozenset(
                (previous[0] ^ local_true) | (previous[1] ^ local_false)
            )
        inputs = frozenset(prepared[cid][2])
        return (local_true, local_false, component_rounds, inputs)

    return run_ready_set(
        order, deps, plan, workers=workers, executor_kind=kind, finish=finish
    )
