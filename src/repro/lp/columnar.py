"""Columnar semi-naive grounding: bulk relational delta joins over interned ids.

:class:`~repro.lp.grounding.SemiNaiveGrounder` walks rule bodies one candidate
``Atom`` at a time through :func:`~repro.lang.substitution.match`, copying a
substitution dict per binding — the classic engine-vs-interpreter gap that
set-at-a-time Datalog engines (DLV's instantiator, the Vadalog pipeline) close
with relational execution.  This module is that engine:

* every ground term and predicate is *interned* to a dense integer id
  (extending the atom-id seam of :mod:`repro.lp.fixpoint` down to terms);
* each predicate's extension is a :class:`_Relation` of fixed-width tuples of
  int columns, with hash indexes over needed column subsets built on demand
  and maintained incrementally;
* each rule body is compiled once into join *plans* — one per delta position —
  and a semi-naive round executes each plan as a hash join: seed bindings from
  the delta rows, then probe the remaining atoms' indexes on their bound
  columns.  Magic guards (:mod:`repro.rewrite.magic`) arrive as the first body
  atom of every gated rule, so the guard's bound columns drive the first probe
  and the join degenerates into a semi-join filter exactly where the rewriting
  wants one;
* complete bindings are deduplicated in int space (batched diff against the
  already-emitted instances) before any ``Atom``/``NormalRule`` object is
  built, and only genuinely new instances reach the shared
  :class:`~repro.lp.grounding.GroundProgram`.

The resulting ground program and candidate index are *equal as sets* to the
tuple backend's (insertion order may differ); the differential and property
suites pin that equivalence.  Round boundaries are the one place the two
disciplines are allowed to disagree: the tuple matcher seeds head atoms into
its live index mid-round (so a rule can even observe its *own* emissions
while it is still enumerating), whereas this backend runs each rule pass
over a consistent snapshot and makes emissions visible from the next rule
on (``engine="sqlite"``: from the next round on).  A ``max_rounds`` budget
may therefore cut the two backends at slightly different prefixes; resuming
any backend to saturation always lands on the identical fixpoint.  Rules whose positive body contains a non-ground
function term (a pattern like ``p(f(X))`` that must destructure a Skolem term)
fall back to the tuple matcher for that rule only — columns are opaque ids, so
structural matching stays in term space.

``engine="sqlite"`` executes the same compiled plans as SQL against an
in-memory :mod:`sqlite3` database (one table per predicate, one delta table
per round) instead of the pure-Python dict-of-tuples join.  Both engines share
interning, emission, and budgets; sqlite trades per-row Python overhead for
query-planner generality and is gated so environments without the stdlib
module still import cleanly.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..exceptions import GroundingError
from ..lang.atoms import Atom
from ..lang.program import NormalProgram
from ..lang.rules import NormalRule
from ..lang.terms import FunctionTerm, Term, Variable, is_ground_term
from .grounding import (
    GroundProgram,
    PredicateIndex,
    SemiNaiveGrounder,
    _delta_rule_instances,
    ground_rule_instances,
)

try:  # pragma: no cover - stdlib, present on every supported build
    import sqlite3

    _HAS_SQLITE = True
except ImportError:  # pragma: no cover
    sqlite3 = None  # type: ignore[assignment]
    _HAS_SQLITE = False

__all__ = [
    "BACKENDS",
    "ColumnarGrounder",
    "make_grounder",
]

#: Accepted values for every ``backend=`` knob in the stack.
BACKENDS = ("tuple", "columnar", "sqlite")


class _Relation:
    """One predicate's extension as rows of interned term ids.

    ``rows`` gives O(1) duplicate detection, ``atom_of`` maps a row back to
    the original :class:`Atom` object (so emission reuses candidates instead
    of rebuilding them), and ``indexes`` holds one hash index per column
    subset some join plan probes on.  Indexes are built lazily from the
    current rows and then maintained by :meth:`add` — the relational analogue
    of the persistent :class:`~repro.lp.grounding.PredicateIndex`.
    """

    __slots__ = ("arity", "rows", "atom_of", "indexes")

    def __init__(self, arity: int):
        self.arity = arity
        self.rows: set[tuple[int, ...]] = set()
        #: insertion-ordered row -> Atom map; doubles as the row list that
        #: lazy index builds iterate, so deletions need no parallel list
        self.atom_of: dict[tuple[int, ...], Atom] = {}
        self.indexes: dict[tuple[int, ...], dict[tuple[int, ...], list]] = {}

    def add(self, row: tuple[int, ...], atom: Atom) -> None:
        self.rows.add(row)
        self.atom_of[row] = atom
        for columns, index in self.indexes.items():
            key = tuple(row[c] for c in columns)
            index.setdefault(key, []).append(row)

    def remove(self, row: tuple[int, ...]) -> bool:
        """Delete a row (deletion delta); maintains every built index."""
        if row not in self.rows:
            return False
        self.rows.discard(row)
        self.atom_of.pop(row, None)
        for columns, index in self.indexes.items():
            key = tuple(row[c] for c in columns)
            bucket = index.get(key)
            if bucket is not None:
                try:
                    bucket.remove(row)
                except ValueError:  # pragma: no cover - defensive
                    pass
                if not bucket:
                    del index[key]
        return True

    def ensure_index(self, columns: tuple[int, ...]) -> dict:
        """The hash index over *columns*, building it from existing rows."""
        index = self.indexes.get(columns)
        if index is None:
            index = {}
            for row in self.atom_of:
                key = tuple(row[c] for c in columns)
                index.setdefault(key, []).append(row)
            self.indexes[columns] = index
        return index


class _Probe:
    """A compiled probe of one body atom inside a join plan.

    ``key_sources`` builds the index key at join time — a ``(True, id)`` entry
    contributes an interned constant, ``(False, slot)`` the current binding of
    a variable slot.  ``checks`` are intra-atom repeated-variable equalities
    between a later column and the defining one; ``out`` lists the columns
    that bind fresh slots.
    """

    __slots__ = ("relation", "columns", "key_sources", "checks", "out")

    def __init__(self, relation, columns, key_sources, checks, out):
        self.relation = relation
        self.columns = columns
        self.key_sources = key_sources
        self.checks = checks
        self.out = out


class _Plan:
    """One rule's join plan for one delta position."""

    __slots__ = ("delta_key", "const_checks", "rep_checks", "var_defs", "probes")

    def __init__(self, delta_key, const_checks, rep_checks, var_defs, probes):
        self.delta_key = delta_key
        self.const_checks = const_checks
        self.rep_checks = rep_checks
        self.var_defs = var_defs
        self.probes = probes


class _CompiledRule:
    """A rule compiled for columnar execution (or flagged for fallback)."""

    __slots__ = ("rule", "fallback", "nvars", "plans", "body_builders", "head_builder", "neg_builders", "emitted")

    def __init__(self, rule: NormalRule):
        self.rule = rule
        self.fallback = any(
            not (isinstance(arg, Variable) or _is_ground(arg))
            for atom in rule.body_pos
            for arg in atom.args
        )
        self.nvars = 0
        self.plans: list[_Plan] = []
        self.body_builders: list = []
        self.head_builder = None
        self.neg_builders: list = []
        #: int-space bindings already turned into instances (batched diff)
        self.emitted: set[tuple[int, ...]] = set()


def _is_ground(term: Term) -> bool:
    return not isinstance(term, Variable) and is_ground_term(term)


class ColumnarGrounder:
    """Semi-naive relevant grounding over columnar int relations.

    A drop-in replacement for :class:`~repro.lp.grounding.SemiNaiveGrounder`:
    same constructor shape, same ``ground`` / ``index`` / ``rounds`` /
    ``saturated`` / :meth:`delta_rules` / :meth:`run` surface, same budget
    semantics — only the inner loop differs.  ``engine`` selects the join
    executor: ``"dict"`` (pure-Python hash joins) or ``"sqlite"`` (the same
    plans as SQL over an in-memory database).
    """

    def __init__(
        self,
        program: NormalProgram | Iterable[NormalRule],
        extra_atoms: Iterable[Atom] = (),
        *,
        engine: str = "dict",
    ):
        if engine not in ("dict", "sqlite"):
            raise ValueError(f"unknown columnar engine {engine!r}")
        if engine == "sqlite" and not _HAS_SQLITE:
            raise GroundingError(
                "backend 'sqlite' requires the stdlib sqlite3 module, "
                "which is unavailable in this interpreter"
            )
        self.engine = engine
        self.ground = GroundProgram()
        self.index = PredicateIndex()
        self.rounds = 0
        self._delta_start = 0

        # -- interning ---------------------------------------------------------
        self._term_ids: dict[Term, int] = {}
        self._terms: list[Term] = []
        self._relations: dict[tuple[str, int], _Relation] = {}

        # -- pending delta -----------------------------------------------------
        self._delta: list[Atom] = []
        self._delta_rows: dict[tuple[str, int], list[tuple[int, ...]]] = {}

        self._compiled: list[_CompiledRule] = []
        self._has_fallback = False

        # -- sqlite state ------------------------------------------------------
        self._conn = None
        self._predicate_ids: dict[tuple[str, int], int] = {}
        self._sql_tables: set[str] = set()
        self._sql_cache: dict[tuple[int, int], tuple[str, int]] = {}
        self._pending_sql_rows: dict[tuple[str, int], list[tuple[int, ...]]] = {}
        self._dirty_delta_tables: set[str] = set()
        if engine == "sqlite":
            self._conn = sqlite3.connect(":memory:")

        for atom in extra_atoms:
            self._seed(atom)
        once_rules: list[NormalRule] = []
        for rule in program:
            if rule.is_fact() and rule.is_ground():
                self.ground.add(rule)
                self._seed(rule.head)
            elif not rule.is_fact():
                if rule.body_pos:
                    compiled = _CompiledRule(rule)
                    if compiled.fallback:
                        self._has_fallback = True
                    else:
                        self._compile(compiled)
                    self._compiled.append(compiled)
                else:
                    once_rules.append(rule)

        for rule in once_rules:
            for instance in ground_rule_instances(rule, self.index):
                self.ground.add(instance)
                self._seed(instance.head)

    # -- interning -------------------------------------------------------------

    def _intern_term(self, term: Term) -> int:
        term_id = self._term_ids.get(term)
        if term_id is None:
            term_id = len(self._terms)
            self._term_ids[term] = term_id
            self._terms.append(term)
        return term_id

    def _relation(self, predicate: str, arity: int) -> _Relation:
        key = (predicate, arity)
        relation = self._relations.get(key)
        if relation is None:
            relation = _Relation(arity)
            self._relations[key] = relation
        return relation

    # -- seeding ---------------------------------------------------------------

    def _seed(self, atom: Atom) -> None:
        if not self.index.add(atom):
            return
        if not atom.is_ground():
            raise GroundingError(
                f"columnar grounding only accepts ground candidate atoms, got {atom}"
            )
        row = tuple(self._intern_term(arg) for arg in atom.args)
        self._relation(atom.predicate, len(atom.args)).add(row, atom)
        key = (atom.predicate, len(atom.args))
        self._delta.append(atom)
        self._delta_rows.setdefault(key, []).append(row)
        if self.engine == "sqlite":
            self._pending_sql_rows.setdefault(key, []).append(row or (0,))

    # -- fact-level deltas (materialized-view maintenance seam) ----------------

    def add_fact(self, atom: Atom) -> None:
        """Add a ground EDB fact: store its fact rule and stage it as delta.

        Mirrors :meth:`SemiNaiveGrounder.add_fact` — the next :meth:`run`
        executes only the join plans the new row can drive.
        """
        if not atom.is_ground():
            raise GroundingError(f"facts must be ground, got {atom}")
        self.ground.add(NormalRule(atom))
        self._seed(atom)

    def retract_fact(self, atom: Atom) -> bool:
        """Drop *atom* from the candidate state; return whether it was present.

        The row leaves the predicate's relation (and every built hash index,
        and the sqlite full/pending tables), so future delta joins no longer
        see it.  Stored ground instances are untouched — activity is the view
        layer's job — and the caller must only retract atoms that are no
        longer derivable, re-entering them via :meth:`reseed` if rederived.
        """
        if not self.index.discard(atom):
            return False
        if self._delta:
            try:
                self._delta.remove(atom)
            except ValueError:
                pass
        key = (atom.predicate, len(atom.args))
        row = tuple(self._term_ids[arg] for arg in atom.args)
        relation = self._relations.get(key)
        if relation is not None:
            relation.remove(row)
        staged = self._delta_rows.get(key)
        if staged is not None:
            try:
                staged.remove(row)
            except ValueError:
                pass
        if self.engine == "sqlite":
            sql_row = row or (0,)
            pending = self._pending_sql_rows.get(key)
            removed_pending = False
            if pending is not None:
                try:
                    pending.remove(sql_row)
                    removed_pending = True
                except ValueError:
                    pass
            if not removed_pending:
                table = f"r{self._predicate_id(*key)}"
                if table in self._sql_tables:
                    condition = " AND ".join(
                        f"c{i} = ?" for i in range(len(sql_row))
                    )
                    self._conn.execute(
                        f"DELETE FROM {table} WHERE {condition}", sql_row
                    )
        return True

    def reseed(self, atom: Atom) -> None:
        """Re-enter a previously retracted atom into the candidate state."""
        self._seed(atom)

    # -- rule compilation ------------------------------------------------------

    def _compile(self, compiled: _CompiledRule) -> None:
        rule = compiled.rule
        slots: dict[Variable, int] = {}
        for atom in rule.body_pos:
            for arg in atom.args:
                if isinstance(arg, Variable) and arg not in slots:
                    slots[arg] = len(slots)
        compiled.nvars = len(slots)

        body = list(rule.body_pos)
        for delta_position in range(len(body)):
            compiled.plans.append(self._compile_plan(body, delta_position, slots))

        def row_builder(atom: Atom):
            relation = self._relation(atom.predicate, len(atom.args))
            sources = tuple(
                (True, self._intern_term(arg))
                if not isinstance(arg, Variable)
                else (False, slots[arg])
                for arg in atom.args
            )
            return relation, sources

        compiled.body_builders = [row_builder(atom) for atom in body]
        compiled.head_builder = self._atom_builder(rule.head, slots)
        compiled.neg_builders = [self._atom_builder(a, slots) for a in rule.body_neg]

    def _compile_plan(
        self, body: list[Atom], delta_position: int, slots: dict[Variable, int]
    ) -> _Plan:
        delta_atom = body[delta_position]
        const_checks: list[tuple[int, int]] = []
        rep_checks: list[tuple[int, int]] = []
        var_defs: list[tuple[int, int]] = []
        bound: dict[Variable, bool] = {}
        first_col: dict[Variable, int] = {}
        for column, arg in enumerate(delta_atom.args):
            if isinstance(arg, Variable):
                if arg in first_col:
                    rep_checks.append((column, first_col[arg]))
                else:
                    first_col[arg] = column
                    var_defs.append((column, slots[arg]))
                    bound[arg] = True
            else:
                const_checks.append((column, self._intern_term(arg)))

        probes: list[_Probe] = []
        for position, atom in enumerate(body):
            if position == delta_position:
                continue
            columns: list[int] = []
            key_sources: list[tuple[bool, int]] = []
            checks: list[tuple[int, int]] = []
            out: list[tuple[int, int]] = []
            local_first: dict[Variable, int] = {}
            for column, arg in enumerate(atom.args):
                if not isinstance(arg, Variable):
                    columns.append(column)
                    key_sources.append((True, self._intern_term(arg)))
                elif arg in bound:
                    columns.append(column)
                    key_sources.append((False, slots[arg]))
                elif arg in local_first:
                    checks.append((column, local_first[arg]))
                else:
                    local_first[arg] = column
                    out.append((column, slots[arg]))
            for arg in local_first:
                bound[arg] = True
            relation = self._relation(atom.predicate, len(atom.args))
            probes.append(
                _Probe(relation, tuple(columns), tuple(key_sources), tuple(checks), tuple(out))
            )
        return _Plan(
            (delta_atom.predicate, len(delta_atom.args)),
            tuple(const_checks),
            tuple(rep_checks),
            tuple(var_defs),
            probes,
        )

    def _atom_builder(self, atom: Atom, slots: dict[Variable, int]):
        """A ``binding -> Atom`` constructor for a head or negative-body atom."""
        terms = self._terms
        builders: list[Callable] = []
        for arg in atom.args:
            if isinstance(arg, Variable):
                slot = slots[arg]
                builders.append(lambda b, s=slot: terms[b[s]])
            elif _is_ground(arg):
                builders.append(lambda b, t=arg: t)
            else:
                builders.append(self._term_builder(arg, slots))
        predicate = atom.predicate
        return lambda binding: Atom(
            predicate, tuple(build(binding) for build in builders)
        )

    def _term_builder(self, term: FunctionTerm, slots: dict[Variable, int]):
        """Recursive builder for a non-ground (Skolem) function-term pattern."""
        terms = self._terms
        parts: list[Callable] = []
        for arg in term.args:
            if isinstance(arg, Variable):
                slot = slots[arg]
                parts.append(lambda b, s=slot: terms[b[s]])
            elif _is_ground(arg):
                parts.append(lambda b, t=arg: t)
            else:
                parts.append(self._term_builder(arg, slots))
        function = term.function
        return lambda binding: FunctionTerm(function, tuple(p(binding) for p in parts))

    # -- the semi-naive loop ---------------------------------------------------

    @property
    def saturated(self) -> bool:
        """``True`` iff the fixpoint was reached (no pending delta atoms)."""
        return not self._delta

    def delta_rules(self) -> tuple[NormalRule, ...]:
        """The ground rules produced by the most recent :meth:`run` call."""
        return self.ground.rules_since(self._delta_start)

    def run(
        self,
        *,
        max_rounds: Optional[int] = None,
        max_atoms: Optional[int] = None,
        raise_on_budget: bool = True,
    ) -> bool:
        """Iterate delta rounds to a fixpoint; return whether it saturated.

        Budget semantics match :meth:`SemiNaiveGrounder.run` exactly; only the
        per-round step differs (bulk joins instead of per-candidate matching).
        Because this backend's rounds are snapshot-consistent while the tuple
        matcher's observe mid-round emissions, a budget-interrupted prefix may
        trail the oracle's by a round of chained derivations — the saturated
        result is set-identical either way (see the module docstring).
        """
        self._delta_start = len(self.ground)
        while self._delta:
            if max_rounds is not None and self.rounds + 1 > max_rounds:
                if raise_on_budget:
                    raise GroundingError(
                        f"relevant grounding did not converge within {max_rounds} rounds "
                        "(the program probably has function symbols); use a budget or the chase engine"
                    )
                return False
            self.rounds += 1
            delta_atoms = self._delta
            delta_rows = self._delta_rows
            self._delta = []
            self._delta_rows = {}
            if self.engine == "sqlite":
                self._sqlite_begin_round(delta_rows)
            fallback_index = (
                PredicateIndex(delta_atoms) if self._has_fallback else None
            )
            for rule_id, compiled in enumerate(self._compiled):
                if compiled.fallback:
                    # snapshot before seeding: the candidate buckets are
                    # insertion-ordered dicts and must not grow mid-scan
                    for instance in list(
                        _delta_rule_instances(
                            compiled.rule, self.index, fallback_index
                        )
                    ):
                        if instance not in self.ground:
                            self.ground.add(instance)
                            self._seed(instance.head)
                else:
                    self._delta_step(rule_id, compiled, delta_rows)
            if max_atoms is not None and len(self.index) > max_atoms:
                if raise_on_budget:
                    raise GroundingError(
                        f"relevant grounding exceeded the atom budget of {max_atoms}"
                    )
                return False
        return True

    def _delta_step(
        self,
        rule_id: int,
        compiled: _CompiledRule,
        delta_rows: dict[tuple[str, int], list[tuple[int, ...]]],
    ) -> None:
        """Run every delta-position plan of one rule and emit new instances."""
        bindings: list[tuple[int, ...]] = []
        for position, plan in enumerate(compiled.plans):
            rows = delta_rows.get(plan.delta_key)
            if not rows:
                continue
            if self.engine == "sqlite":
                self._run_plan_sqlite(rule_id, position, compiled, plan, bindings)
            else:
                self._run_plan_dict(plan, rows, compiled.nvars, bindings)
        if bindings:
            self._emit(compiled, bindings)

    def _run_plan_dict(
        self,
        plan: _Plan,
        rows: list[tuple[int, ...]],
        nvars: int,
        results: list[tuple[int, ...]],
    ) -> None:
        probes = plan.probes
        indexes = [probe.relation.ensure_index(probe.columns) for probe in probes]
        nprobes = len(probes)

        def extend(level: int, binding: list[int]) -> None:
            if level == nprobes:
                results.append(tuple(binding))
                return
            probe = probes[level]
            key = tuple(
                value if is_const else binding[value]
                for is_const, value in probe.key_sources
            )
            bucket = indexes[level].get(key)
            if not bucket:
                return
            checks = probe.checks
            out = probe.out
            for row in bucket:
                if checks and any(row[a] != row[b] for a, b in checks):
                    continue
                for column, slot in out:
                    binding[slot] = row[column]
                extend(level + 1, binding)

        const_checks = plan.const_checks
        rep_checks = plan.rep_checks
        var_defs = plan.var_defs
        for row in rows:
            if const_checks and any(row[c] != v for c, v in const_checks):
                continue
            if rep_checks and any(row[a] != row[b] for a, b in rep_checks):
                continue
            binding = [0] * nvars
            for column, slot in var_defs:
                binding[slot] = row[column]
            extend(0, binding)

    def _emit(self, compiled: _CompiledRule, bindings: list[tuple[int, ...]]) -> None:
        """Batched diff against already-emitted instances, then materialise."""
        emitted = compiled.emitted
        ground = self.ground
        head_builder = compiled.head_builder
        neg_builders = compiled.neg_builders
        body_builders = compiled.body_builders
        for binding in bindings:
            if binding in emitted:
                continue
            emitted.add(binding)
            body: list[Atom] = []
            for relation, sources in body_builders:
                row = tuple(
                    value if is_const else binding[value] for is_const, value in sources
                )
                body.append(relation.atom_of[row])
            instance = NormalRule(
                head_builder(binding),
                tuple(body),
                tuple(build(binding) for build in neg_builders),
            )
            if instance not in ground:
                ground.add(instance)
                self._seed(instance.head)

    # -- sqlite execution ------------------------------------------------------

    def _sqlite_table(self, predicate: str, arity: int, *, delta: bool) -> str:
        """The (created-on-demand) table name for one predicate's rows."""
        prefix = "d" if delta else "r"
        name = f"{prefix}{self._predicate_id(predicate, arity)}"
        if name not in self._sql_tables:
            columns = ", ".join(f"c{i} INTEGER" for i in range(max(arity, 1)))
            self._conn.execute(f"CREATE TABLE {name} ({columns})")
            self._sql_tables.add(name)
        return name

    def _predicate_id(self, predicate: str, arity: int) -> int:
        ids = self._predicate_ids
        pid = ids.get((predicate, arity))
        if pid is None:
            pid = len(ids)
            ids[(predicate, arity)] = pid
        return pid

    def _sqlite_begin_round(self, delta_rows: dict[tuple[str, int], list[tuple[int, ...]]]) -> None:
        """Flush pending full-table inserts and load this round's delta tables."""
        conn = self._conn
        for table in self._dirty_delta_tables:
            conn.execute(f"DELETE FROM {table}")
        self._dirty_delta_tables.clear()
        pending = self._pending_sql_rows
        self._pending_sql_rows = {}
        for (predicate, arity), rows in pending.items():
            table = self._sqlite_table(predicate, arity, delta=False)
            marks = ", ".join("?" for _ in range(max(arity, 1)))
            conn.executemany(f"INSERT INTO {table} VALUES ({marks})", rows)
        for (predicate, arity), rows in delta_rows.items():
            table = self._sqlite_table(predicate, arity, delta=True)
            marks = ", ".join("?" for _ in range(max(arity, 1)))
            conn.executemany(
                f"INSERT INTO {table} VALUES ({marks})",
                [row or (0,) for row in rows],
            )
            self._dirty_delta_tables.add(table)

    def _sqlite_query(self, rule_id: int, position: int, compiled: _CompiledRule) -> tuple[str, int]:
        """The cached SELECT computing the plan's variable bindings."""
        cached = self._sql_cache.get((rule_id, position))
        if cached is not None:
            return cached
        rule = compiled.rule
        body = list(rule.body_pos)
        slots: dict[Variable, int] = {}
        for atom in body:
            for arg in atom.args:
                if isinstance(arg, Variable) and arg not in slots:
                    slots[arg] = len(slots)
        tables: list[str] = []
        conditions: list[str] = []
        defined: dict[Variable, str] = {}
        # the delta atom is scanned first so every plan is delta-driven
        order = [position] + [i for i in range(len(body)) if i != position]
        for alias, body_position in enumerate(order):
            atom = body[body_position]
            arity = len(atom.args)
            table = self._sqlite_table(
                atom.predicate, arity, delta=body_position == position
            )
            tables.append(f"{table} t{alias}")
            for column, arg in enumerate(atom.args):
                reference = f"t{alias}.c{column}"
                if isinstance(arg, Variable):
                    if arg in defined:
                        conditions.append(f"{reference} = {defined[arg]}")
                    else:
                        defined[arg] = reference
                else:
                    conditions.append(f"{reference} = {self._intern_term(arg)}")
        selected = [defined[v] for v, _ in sorted(slots.items(), key=lambda kv: kv[1])]
        select = ", ".join(selected) if selected else "1"
        sql = f"SELECT {select} FROM {', '.join(tables)}"
        if conditions:
            sql += " WHERE " + " AND ".join(conditions)
        result = (sql, len(selected))
        self._sql_cache[(rule_id, position)] = result
        return result

    def _run_plan_sqlite(
        self,
        rule_id: int,
        position: int,
        compiled: _CompiledRule,
        plan: _Plan,
        results: list[tuple[int, ...]],
    ) -> None:
        sql, width = self._sqlite_query(rule_id, position, compiled)
        for row in self._conn.execute(sql):
            results.append(tuple(row) if width else ())


def make_grounder(
    program: NormalProgram | Iterable[NormalRule],
    extra_atoms: Iterable[Atom] = (),
    *,
    backend: str = "tuple",
):
    """Construct the grounding backend selected by *backend*.

    ``"tuple"`` is the per-candidate :class:`SemiNaiveGrounder` — the
    differential oracle every other backend is pinned against; ``"columnar"``
    the pure-Python hash-join :class:`ColumnarGrounder`; ``"sqlite"`` the same
    plans executed by an in-memory sqlite database.
    """
    if backend == "tuple":
        return SemiNaiveGrounder(program, extra_atoms)
    if backend == "columnar":
        return ColumnarGrounder(program, extra_atoms, engine="dict")
    if backend == "sqlite":
        return ColumnarGrounder(program, extra_atoms, engine="sqlite")
    raise ValueError(f"unknown grounding backend {backend!r}; expected one of {BACKENDS}")
