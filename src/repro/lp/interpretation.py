"""Three-valued interpretations (Sec. 2.2 of the paper).

A (three-valued) interpretation w.r.t. a program ``P`` is a *consistent* set
of ground literals ``I ⊆ Lit_P``: an atom may be true (``a ∈ I``), false
(``¬a ∈ I``) or undefined (neither).  :class:`Interpretation` stores the true
and false atoms in two separate sets and enforces consistency.

The class implements the ``ThreeValuedLike`` protocol used by query
evaluation, and offers the set-algebra needed by the fixpoint computations
(union, subset tests, literal iteration).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from ..exceptions import InconsistentInterpretationError
from ..lang.atoms import Atom, Literal

__all__ = ["Interpretation", "TruthValue"]


class TruthValue:
    """The three truth values, as string constants."""

    TRUE = "true"
    FALSE = "false"
    UNDEFINED = "undefined"


class Interpretation:
    """A consistent set of ground literals, i.e. a three-valued interpretation."""

    __slots__ = ("_true", "_false")

    def __init__(
        self,
        true_atoms: Iterable[Atom] = (),
        false_atoms: Iterable[Atom] = (),
    ):
        self._true: set[Atom] = set(true_atoms)
        self._false: set[Atom] = set(false_atoms)
        overlap = self._true & self._false
        if overlap:
            sample = next(iter(overlap))
            raise InconsistentInterpretationError(
                f"interpretation is inconsistent: {sample} is both true and false"
            )

    # -- constructors ---------------------------------------------------------

    @classmethod
    def empty(cls) -> "Interpretation":
        """The empty interpretation (everything undefined)."""
        return cls()

    @classmethod
    def from_literals(cls, literals: Iterable[Literal]) -> "Interpretation":
        """Build an interpretation from ground literals."""
        true_atoms = []
        false_atoms = []
        for literal in literals:
            if literal.positive:
                true_atoms.append(literal.atom)
            else:
                false_atoms.append(literal.atom)
        return cls(true_atoms, false_atoms)

    def copy(self) -> "Interpretation":
        """An independent copy of the interpretation."""
        return Interpretation(self._true, self._false)

    # -- membership -----------------------------------------------------------

    def is_true(self, atom: Atom) -> bool:
        """``True`` iff the atom is true in the interpretation."""
        return atom in self._true

    def is_false(self, atom: Atom) -> bool:
        """``True`` iff the atom is false in the interpretation."""
        return atom in self._false

    def is_undefined(self, atom: Atom) -> bool:
        """``True`` iff the atom is neither true nor false."""
        return atom not in self._true and atom not in self._false

    def value(self, atom: Atom) -> str:
        """The :class:`TruthValue` of the atom."""
        if atom in self._true:
            return TruthValue.TRUE
        if atom in self._false:
            return TruthValue.FALSE
        return TruthValue.UNDEFINED

    def holds(self, literal: Literal) -> bool:
        """``True`` iff the literal is satisfied (its atom has the right value)."""
        if literal.positive:
            return self.is_true(literal.atom)
        return self.is_false(literal.atom)

    def __contains__(self, literal: Literal) -> bool:
        if not isinstance(literal, Literal):
            return NotImplemented
        return self.holds(literal)

    # -- views -----------------------------------------------------------------

    def true_atoms(self) -> frozenset[Atom]:
        """The set of true atoms."""
        return frozenset(self._true)

    def false_atoms(self) -> frozenset[Atom]:
        """The set of false atoms."""
        return frozenset(self._false)

    def literals(self) -> Iterator[Literal]:
        """Iterate over all literals of the interpretation (positives first)."""
        for atom in self._true:
            yield Literal(atom, True)
        for atom in self._false:
            yield Literal(atom, False)

    def defined_atoms(self) -> frozenset[Atom]:
        """All atoms with a classical (non-undefined) value."""
        return frozenset(self._true | self._false)

    def __len__(self) -> int:
        return len(self._true) + len(self._false)

    def __iter__(self) -> Iterator[Literal]:
        return self.literals()

    # -- mutation ----------------------------------------------------------------

    def add_true(self, atom: Atom) -> None:
        """Mark *atom* as true (raises if it is already false)."""
        if atom in self._false:
            raise InconsistentInterpretationError(f"{atom} is already false")
        self._true.add(atom)

    def add_false(self, atom: Atom) -> None:
        """Mark *atom* as false (raises if it is already true)."""
        if atom in self._true:
            raise InconsistentInterpretationError(f"{atom} is already true")
        self._false.add(atom)

    def add_literal(self, literal: Literal) -> None:
        """Add a ground literal."""
        if literal.positive:
            self.add_true(literal.atom)
        else:
            self.add_false(literal.atom)

    def update(self, other: "Interpretation") -> None:
        """Add every literal of *other* (raises on inconsistency)."""
        conflict = (self._true & other._false) | (self._false & other._true)
        if conflict:
            sample = next(iter(conflict))
            raise InconsistentInterpretationError(
                f"union would be inconsistent on {sample}"
            )
        self._true |= other._true
        self._false |= other._false

    # -- algebra ----------------------------------------------------------------

    def union(self, other: "Interpretation") -> "Interpretation":
        """The union of two interpretations (must be consistent)."""
        result = self.copy()
        result.update(other)
        return result

    def issubset(self, other: "Interpretation") -> bool:
        """Information ordering: every literal of ``self`` is in ``other``."""
        return self._true <= other._true and self._false <= other._false

    def __le__(self, other: "Interpretation") -> bool:
        return self.issubset(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Interpretation):
            return NotImplemented
        return self._true == other._true and self._false == other._false

    def __hash__(self) -> int:
        return hash((frozenset(self._true), frozenset(self._false)))

    def is_consistent(self) -> bool:
        """Always ``True`` by construction; present for API symmetry."""
        return not (self._true & self._false)

    def is_total_on(self, atoms: Iterable[Atom]) -> bool:
        """``True`` iff every atom of *atoms* has a classical truth value."""
        return all(not self.is_undefined(a) for a in atoms)

    def restricted_to(self, atoms: Iterable[Atom]) -> "Interpretation":
        """The interpretation restricted to the given atoms."""
        atom_set = set(atoms)
        return Interpretation(self._true & atom_set, self._false & atom_set)

    # -- display -------------------------------------------------------------------

    def __str__(self) -> str:
        trues = sorted(self._true, key=lambda a: a.sort_key())
        falses = sorted(self._false, key=lambda a: a.sort_key())
        parts = [str(a) for a in trues] + [f"not {a}" for a in falses]
        return "{" + ", ".join(parts) + "}"

    def __repr__(self) -> str:
        return f"Interpretation({len(self._true)} true, {len(self._false)} false)"
