"""Worklist-based fixpoint substrate shared by every LP-layer fixpoint.

All the semantics implemented in :mod:`repro.lp` — the well-founded model,
the alternating fixpoint, unfounded sets, the Kripke–Kleene model, stable
models, perfect models — bottom out in least-fixpoint computations over a
finite ground program.  The seed implementation ran each of those as a naive
whole-program re-scan loop (quadratic in the number of rules per iteration);
this module provides the indexed substrate they all share now:

* :class:`RuleIndex` — ground rules indexed by their positive and negative
  body atoms and by their head, with Dowling–Gallier-style per-rule counters
  of not-yet-satisfied positive body atoms.  Atoms are *interned* to dense
  integer ids on insertion: every propagation, SCC decomposition and
  component closure runs in id space (hashing a small ``int`` instead of a
  structural :class:`~repro.lang.atoms.Atom` tuple), and results are
  translated back to atoms only at the API boundary.  Every propagation
  visits each rule–atom incidence at most once, so a closure costs time
  linear in the size of the ground program instead of
  ``rules × iterations``.
* the propagators every caller needs: :meth:`RuleIndex.least_model`
  (positive least fixpoint), :meth:`RuleIndex.gamma` (least model of the
  Gelfond–Lifschitz reduct, without materialising the reduct),
  :meth:`RuleIndex.possibly_true` (the complement of the greatest unfounded
  set) and the component-restricted closures used by the SCC-modular
  well-founded evaluation.
* :func:`strongly_connected_components` — an iterative Tarjan SCC
  decomposition emitting components dependencies-first, so a component is
  evaluated only after every component it depends on.
* :class:`IncrementalCondensation` — the same condensation maintained
  *incrementally* as the index grows (the Datalog± engine's iterative
  deepening only ever appends ground rules): new atoms join as singleton
  components, order-consistent edge insertions are absorbed in O(1), and only
  edges that violate the maintained topological order trigger a Tarjan rerun,
  confined to the affected suffix of the component order.

The index is deliberately ignorant of three-valued semantics: it stores the
rule structure once and exposes raw propagation; the semantic modules decide
which rules are enabled and what a derived head means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Mapping, Optional, Sequence, TYPE_CHECKING

from ..lang.atoms import Atom

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (grounding imports us)
    from ..lang.rules import NormalRule
    from .interpretation import Interpretation

__all__ = [
    "RuleIndex",
    "IncrementalCondensation",
    "CondensationUpdate",
    "strongly_connected_components",
]

#: Shared empty exclusion set for closures that exclude nothing.
_EMPTY_IDS: frozenset[int] = frozenset()


class RuleIndex:
    """Ground rules indexed for worklist propagation (Dowling–Gallier 1984).

    Rules are stored once, in insertion order, under dense integer ids, and
    every atom occurring anywhere is interned to a dense integer *atom id*.
    For every rule the index keeps its head and the *deduplicated* positive
    and negative body atom ids; for every atom the ids of the rules watching
    it positively, negatively and as a head.  The index is append-only —
    :class:`~repro.lp.grounding.GroundProgram` grows it incrementally as the
    Datalog± engine deepens its chase segment.

    The public methods speak :class:`~repro.lang.atoms.Atom`; the ``*_ids``
    methods expose the id-space layer for callers that run whole fixpoint
    loops (the WFS and Kripke–Kleene evaluators) and want to translate only
    once at the end.
    """

    __slots__ = (
        "_rules",
        "_atom_ids",
        "_atom_list",
        "_heads",
        "_pos",
        "_neg",
        "_watch_pos",
        "_watch_neg",
        "_rules_by_head",
        "_disabled",
    )

    def __init__(self, rules: Iterable["NormalRule"] = ()):
        self._rules: list["NormalRule"] = []
        self._atom_ids: dict[Atom, int] = {}
        self._atom_list: list[Atom] = []
        self._heads: list[int] = []
        self._pos: list[tuple[int, ...]] = []
        self._neg: list[tuple[int, ...]] = []
        self._watch_pos: list[list[int]] = []
        self._watch_neg: list[list[int]] = []
        self._rules_by_head: list[list[int]] = []
        #: rule ids currently switched off (see :meth:`disable_rule`); empty
        #: for every caller except the materialized-view maintenance layer
        self._disabled: set[int] = set()
        for rule in rules:
            self.add_rule(rule)

    # -- construction -----------------------------------------------------------

    def _intern(self, atom: Atom) -> int:
        """The dense id of *atom*, assigning a fresh one on first sight."""
        atom_id = self._atom_ids.get(atom)
        if atom_id is None:
            atom_id = len(self._atom_list)
            self._atom_ids[atom] = atom_id
            self._atom_list.append(atom)
            self._watch_pos.append([])
            self._watch_neg.append([])
            self._rules_by_head.append([])
        return atom_id

    def add_rule(self, rule: "NormalRule") -> int:
        """Append a ground rule and return its dense id.

        Body atoms are deduplicated so the per-rule counters used by the
        propagators count *distinct* unsatisfied atoms.
        """
        rule_id = len(self._rules)
        head_id = self._intern(rule.head)
        pos = tuple(dict.fromkeys(self._intern(a) for a in rule.body_pos))
        neg = tuple(dict.fromkeys(self._intern(a) for a in rule.body_neg))
        self._rules.append(rule)
        self._heads.append(head_id)
        self._pos.append(pos)
        self._neg.append(neg)
        for atom_id in pos:
            self._watch_pos[atom_id].append(rule_id)
        for atom_id in neg:
            self._watch_neg[atom_id].append(rule_id)
        self._rules_by_head[head_id].append(rule_id)
        return rule_id

    # -- atom interning ----------------------------------------------------------

    def atom_count(self) -> int:
        """Number of distinct atoms interned (the relevant universe size)."""
        return len(self._atom_list)

    def atom_of(self, atom_id: int) -> Atom:
        """The atom behind a dense atom id."""
        return self._atom_list[atom_id]

    def atom_id(self, atom: Atom) -> Optional[int]:
        """The dense id of *atom*, or ``None`` if it occurs in no rule."""
        return self._atom_ids.get(atom)

    def atoms_of(self, atom_ids: Iterable[int]) -> set[Atom]:
        """Translate a collection of atom ids back to atoms."""
        atom_list = self._atom_list
        return {atom_list[atom_id] for atom_id in atom_ids}

    def atoms(self) -> frozenset[Atom]:
        """Every atom occurring in some indexed rule (the relevant universe)."""
        return frozenset(self._atom_list)

    # -- rule access -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rules)

    def rule(self, rule_id: int) -> "NormalRule":
        """The rule stored under *rule_id*."""
        return self._rules[rule_id]

    def head(self, rule_id: int) -> Atom:
        """The head atom of the rule."""
        return self._atom_list[self._heads[rule_id]]

    def pos_body(self, rule_id: int) -> tuple[Atom, ...]:
        """The deduplicated positive body atoms of the rule."""
        return tuple(self._atom_list[a] for a in self._pos[rule_id])

    def neg_body(self, rule_id: int) -> tuple[Atom, ...]:
        """The deduplicated negative body atoms of the rule."""
        return tuple(self._atom_list[a] for a in self._neg[rule_id])

    def head_id(self, rule_id: int) -> int:
        """The head atom id of the rule."""
        return self._heads[rule_id]

    def pos_ids(self, rule_id: int) -> tuple[int, ...]:
        """The deduplicated positive body atom ids of the rule."""
        return self._pos[rule_id]

    def neg_ids(self, rule_id: int) -> tuple[int, ...]:
        """The deduplicated negative body atom ids of the rule."""
        return self._neg[rule_id]

    def rule_ids_for_head(self, atom: Atom) -> Sequence[int]:
        """Ids of the rules whose head is *atom*."""
        atom_id = self._atom_ids.get(atom)
        return () if atom_id is None else self._rules_by_head[atom_id]

    def rule_ids_for_head_id(self, atom_id: int) -> Sequence[int]:
        """Ids of the rules whose head has the given atom id."""
        return self._rules_by_head[atom_id]

    def watchers_pos_id(self, atom_id: int) -> Sequence[int]:
        """Ids of the rules with the atom in their positive body."""
        return self._watch_pos[atom_id]

    def watchers_neg_id(self, atom_id: int) -> Sequence[int]:
        """Ids of the rules with the atom in their negative body."""
        return self._watch_neg[atom_id]

    # -- rule activity -----------------------------------------------------------

    def disable_rule(self, rule_id: int) -> None:
        """Switch a rule off: every propagator and closure ignores it.

        The index stays append-only structurally — watcher lists, body tuples
        and the dependency condensation keep the rule — but semantically a
        disabled rule does not exist.  The materialized-view layer uses this
        to retract ground rules (DRed overdeletion, fact removal) without
        rebuilding the index.
        """
        self._disabled.add(rule_id)

    def enable_rule(self, rule_id: int) -> None:
        """Switch a previously disabled rule back on."""
        self._disabled.discard(rule_id)

    def is_enabled(self, rule_id: int) -> bool:
        """``True`` iff the rule currently participates in propagation."""
        return rule_id not in self._disabled

    def disabled_count(self) -> int:
        """Number of currently disabled rules."""
        return len(self._disabled)

    def active_rule_ids_for_head_id(self, atom_id: int) -> Sequence[int]:
        """Ids of the *enabled* rules whose head has the given atom id.

        Returns the shared head list unfiltered when nothing is disabled, so
        callers outside the view-maintenance path pay nothing.
        """
        ids = self._rules_by_head[atom_id]
        if not self._disabled:
            return ids
        disabled = self._disabled
        return [rule_id for rule_id in ids if rule_id not in disabled]

    # -- core propagation ---------------------------------------------------------

    def _propagate_ids(
        self, seed: set[int], blocked: Optional[Callable[[int], bool]]
    ) -> set[int]:
        """Core Dowling–Gallier propagation, in atom-id space.

        Computes the least set ``D ⊇ seed`` closed under firing every
        non-blocked rule whose (distinct) positive body atoms all lie in
        ``D``.  Negative bodies are never consulted — callers encode them in
        *blocked*.  Each rule–atom incidence is touched at most once.
        """
        derived = set(seed)
        counts: list[int] = [0] * len(self._rules)
        heads = self._heads
        watch_pos = self._watch_pos
        disabled = self._disabled
        stack: list[int] = []
        for rule_id, pos in enumerate(self._pos):
            if rule_id in disabled or (blocked is not None and blocked(rule_id)):
                counts[rule_id] = -1
                continue
            # Counters are computed against the seed snapshot only: heads fired
            # during this loop land on the stack and decrement their watchers
            # when popped, so excluding them here would double-count them.
            remaining = sum(1 for atom_id in pos if atom_id not in seed)
            counts[rule_id] = remaining
            if remaining == 0:
                head_id = heads[rule_id]
                if head_id not in derived:
                    derived.add(head_id)
                    stack.append(head_id)
        while stack:
            atom_id = stack.pop()
            for rule_id in watch_pos[atom_id]:
                if counts[rule_id] <= 0:
                    continue  # blocked, or already fired
                counts[rule_id] -= 1
                if counts[rule_id] == 0:
                    head_id = heads[rule_id]
                    if head_id not in derived:
                        derived.add(head_id)
                        stack.append(head_id)
        return derived

    def _seed_ids(self, atoms: Iterable[Atom]) -> set[int]:
        """Intern-free translation of seed atoms; unknown atoms are dropped.

        An atom occurring in no rule cannot unlock any counter, so dropping
        it from the id-space seed is harmless — callers receive it back via
        the union with their original seed where relevant.
        """
        atom_ids = self._atom_ids
        result: set[int] = set()
        for atom in atoms:
            atom_id = atom_ids.get(atom)
            if atom_id is not None:
                result.add(atom_id)
        return result

    # -- propagators -------------------------------------------------------------

    def least_model(self, start: Iterable[Atom] = ()) -> set[Atom]:
        """Least model of the positive parts of the indexed rules.

        Negative bodies are ignored entirely (callers index reducts, which are
        positive by construction, or want exactly the ``P⁺`` closure).
        ``start`` seeds the model with externally-known true atoms (they are
        included in the result even when they occur in no rule).
        """
        start = set(start)
        derived = self.atoms_of(self._propagate_ids(self._seed_ids(start), None))
        return derived | start

    def gamma_ids(self, assumed_true: set[int]) -> set[int]:
        """``Γ(J)`` in id space: least model of the reduct ``P^J``.

        The reduct is never materialised: a rule with a negative body atom in
        *assumed_true* is simply blocked, and the remaining rules propagate
        through their positive bodies only — exactly the least model of the
        reduct.
        """
        negs = self._neg

        def is_blocked(rule_id: int) -> bool:
            for atom_id in negs[rule_id]:
                if atom_id in assumed_true:
                    return True
            return False

        return self._propagate_ids(set(), is_blocked)

    def gamma(self, assumed_true: set[Atom]) -> set[Atom]:
        """``Γ(J)``: the least model of the Gelfond–Lifschitz reduct ``P^J``."""
        return self.atoms_of(self.gamma_ids(self._seed_ids(assumed_true)))

    def possibly_true_ids(self, true_ids: set[int], false_ids: set[int]) -> set[int]:
        """Possibly-true atoms in id space, w.r.t. explicit true/false id sets.

        The least fixpoint of the operator that fires a rule whose positive
        body atoms are all possibly true and not false and whose negative
        body atoms are all not true — the complement (inside the relevant
        universe) of the greatest unfounded set ``U_P(I)``.
        """
        pos, negs = self._pos, self._neg

        def is_blocked(rule_id: int) -> bool:
            for atom_id in pos[rule_id]:
                if atom_id in false_ids:
                    return True
            for atom_id in negs[rule_id]:
                if atom_id in true_ids:
                    return True
            return False

        return self._propagate_ids(set(), is_blocked)

    def possibly_true(self, interpretation: "Interpretation") -> set[Atom]:
        """Atoms with a potentially usable derivation w.r.t. *interpretation*."""
        true_ids = self._seed_ids(interpretation.true_atoms())
        false_ids = self._seed_ids(interpretation.false_atoms())
        return self.atoms_of(self.possibly_true_ids(true_ids, false_ids))

    def tp(self, interpretation: "Interpretation") -> set[Atom]:
        """A single application of the immediate-consequence operator ``T_P(I)``."""
        is_true = interpretation.is_true
        is_false = interpretation.is_false
        atom_list = self._atom_list
        disabled = self._disabled
        derived: set[Atom] = set()
        for rule_id, pos in enumerate(self._pos):
            if rule_id in disabled:
                continue
            if all(is_true(atom_list[a]) for a in pos) and all(
                is_false(atom_list[a]) for a in self._neg[rule_id]
            ):
                derived.add(atom_list[self._heads[rule_id]])
        return derived

    # -- component-restricted closures (SCC-modular WFS) ---------------------------

    def _drain_closure(
        self,
        counts: dict[int, int],
        watchers: dict[int, Sequence[int]],
        stack: list[int],
        derived: set[int],
        exclude: set[int],
    ) -> None:
        """Shared drain loop of the two component closures.

        Pops derived atom ids, decrements the counters of the rules watching
        them, and fires heads whose counters hit zero — unless the head is in
        *exclude* (atoms the caller already accounts for) or already derived.
        Mutates ``derived`` in place.
        """
        heads = self._heads
        while stack:
            atom_id = stack.pop()
            for rule_id in watchers.get(atom_id, ()):
                counts[rule_id] -= 1
                if counts[rule_id] == 0:
                    head_id = heads[rule_id]
                    if head_id not in exclude and head_id not in derived:
                        derived.add(head_id)
                        stack.append(head_id)

    def definite_closure_ids(
        self,
        rule_ids: Sequence[int],
        component: set[int],
        true_ids: set[int],
        false_ids: set[int],
    ) -> set[int]:
        """Closure of the definite consequences of the component's rules.

        A rule fires when every positive body atom is true (globally known, or
        derived during this closure) and every negative body atom is false.
        Atoms outside the component are final, so a rule with a non-true
        external positive atom can never fire here and is dropped up front.
        Returns the *newly* derived head ids (disjoint from ``true_ids``).
        """
        heads, pos_bodies, neg_bodies = self._heads, self._pos, self._neg
        derived: set[int] = set()
        counts: dict[int, int] = {}
        watchers: dict[int, list[int]] = {}
        stack: list[int] = []

        for rule_id in rule_ids:
            if any(a not in false_ids for a in neg_bodies[rule_id]):
                continue
            remaining = 0
            dead = False
            pending: list[int] = []
            for atom_id in pos_bodies[rule_id]:
                if atom_id in true_ids:
                    continue
                if atom_id not in component:
                    dead = True  # external and not true: final, never derivable here
                    break
                remaining += 1
                pending.append(atom_id)
            if dead:
                continue
            if remaining == 0:
                head_id = heads[rule_id]
                if head_id not in true_ids and head_id not in derived:
                    derived.add(head_id)
                    stack.append(head_id)
            else:
                counts[rule_id] = remaining
                for atom_id in pending:
                    watchers.setdefault(atom_id, []).append(rule_id)

        self._drain_closure(counts, watchers, stack, derived, true_ids)
        return derived

    def possible_closure_ids(
        self,
        rule_ids: Sequence[int],
        component: set[int],
        true_ids: set[int],
        false_ids: set[int],
    ) -> set[int]:
        """The possibly-true atoms of the component w.r.t. the global values.

        A rule provides possible support when no body literal is already
        refuted: no positive body atom is false (external atoms are final, so
        "not false" suffices for them; internal ones must additionally be
        derived possibly true) and no negative body atom is true.  The
        component atoms outside the result form the component's share of the
        greatest unfounded set.
        """
        heads, pos_bodies, neg_bodies = self._heads, self._pos, self._neg
        possible: set[int] = set()
        counts: dict[int, int] = {}
        watchers: dict[int, list[int]] = {}
        stack: list[int] = []

        for rule_id in rule_ids:
            if any(a in true_ids for a in neg_bodies[rule_id]):
                continue
            remaining = 0
            dead = False
            pending: list[int] = []
            for atom_id in pos_bodies[rule_id]:
                if atom_id in false_ids:
                    dead = True
                    break
                if atom_id in component:
                    remaining += 1
                    pending.append(atom_id)
            if dead:
                continue
            if remaining == 0:
                head_id = heads[rule_id]
                if head_id not in possible:
                    possible.add(head_id)
                    stack.append(head_id)
            else:
                counts[rule_id] = remaining
                for atom_id in pending:
                    watchers.setdefault(atom_id, []).append(rule_id)

        self._drain_closure(counts, watchers, stack, possible, _EMPTY_IDS)
        return possible

    # -- dependency structure ------------------------------------------------------

    def dependency_components_ids(self) -> list[list[int]]:
        """SCCs of the atom-id dependency graph, dependencies first.

        The graph has an edge from every rule head to every atom of its body,
        positive *and* negative: negative edges must participate in the
        condensation too, otherwise mutually negative atoms (the win/move
        game's positions, say) would land in different components with no
        evaluation order between them.
        """
        graph: dict[int, list[int]] = {atom_id: [] for atom_id in range(len(self._atom_list))}
        for rule_id, head_id in enumerate(self._heads):
            successors = graph[head_id]
            successors.extend(self._pos[rule_id])
            successors.extend(self._neg[rule_id])
        return strongly_connected_components(graph)

    def __repr__(self) -> str:
        return f"RuleIndex({len(self._rules)} rules, {len(self._atom_list)} atoms)"


def strongly_connected_components(
    graph: Mapping[Hashable, Iterable[Hashable]],
) -> list[list[Hashable]]:
    """Tarjan's SCC algorithm, iterative, emitting components dependencies-first.

    *graph* maps each node to its successors (``u → v`` reads "u depends on
    v"); successors absent from the mapping's key set are treated as isolated
    nodes.  The returned components are ordered so that every component
    appears **after** all components it can reach — i.e. in the evaluation
    order a modular fixpoint computation wants (dependencies before
    dependents).
    """
    indices: dict[Hashable, int] = {}
    lowlinks: dict[Hashable, int] = {}
    on_stack: set[Hashable] = set()
    stack: list[Hashable] = []
    components: list[list[Hashable]] = []
    counter = 0

    for root in graph:
        if root in indices:
            continue
        work: list[tuple[Hashable, Iterable]] = [(root, iter(graph.get(root, ())))]
        indices[root] = lowlinks[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            descended = False
            for child in successors:
                if child not in indices:
                    indices[child] = lowlinks[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(graph.get(child, ()))))
                    descended = True
                    break
                if child in on_stack:
                    if indices[child] < lowlinks[node]:
                        lowlinks[node] = indices[child]
            if descended:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlinks[node] < lowlinks[parent]:
                    lowlinks[parent] = lowlinks[node]
            if lowlinks[node] == indices[node]:
                component: list[Hashable] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


# ---------------------------------------------------------------------------
# Incremental condensation maintenance (the deepening loop's SCC substrate)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CondensationUpdate:
    """What one :meth:`IncrementalCondensation.refresh` changed.

    Attributes
    ----------
    dirty:
        Ids of the components whose well-founded solution can no longer be
        trusted: newly created components (new atoms, or memberships changed
        by a merge) and components that gained a rule (a new rule's head lies
        inside them).  Value-change propagation to *dependents* of these
        components is the caller's job — the condensation only knows
        structure, not truth values.
    removed:
        Ids of components that no longer exist (their members were absorbed
        into a merged component, which appears in *dirty*).
    new_rules:
        The ids of the index rules consumed by this refresh (a contiguous
        range — the index is append-only).
    """

    dirty: frozenset
    removed: frozenset
    new_rules: range


class IncrementalCondensation:
    """The SCC condensation of a growing :class:`RuleIndex`, maintained in place.

    The dependency graph is the one of
    :meth:`RuleIndex.dependency_components_ids` — an edge from every rule head
    to every atom of its body, positive and negative.  The maintained state is
    the partition of the interned atoms into components plus a *topological
    order* of the components (dependencies first: every component appears
    after every component it can reach, the evaluation order of the
    SCC-modular WFS).

    :meth:`refresh` consumes the rules and atoms appended to the index since
    the previous call:

    * new atoms join as singleton components appended at the end of the order;
    * a new dependency edge whose endpoints already respect the maintained
      order (``position(body) < position(head)``) is absorbed without any
      recomputation — it can close no cycle that the order does not already
      rule out;
    * edges that *violate* the order (possible when an existing atom gains a
      rule over later-ordered atoms, e.g. a chase firing that was unlocked
      late) trigger one Tarjan rerun confined to the **affected suffix** of
      the order — the components at positions at or after the earliest
      violating edge's head.  Any new cycle must turn around at an
      order-violating edge, and every violating edge starts inside the
      suffix, so components before it can neither merge nor change their
      relative order; their ids, memberships and positions are untouched.

    Components that survive a suffix rerun with identical membership keep
    their id (and their cached solutions remain addressable); merged
    memberships get fresh ids and are reported dirty.  On the pure
    iterative-deepening pattern — new rules whose heads are new atoms over
    older bodies — every insertion is order-consistent and a refresh costs
    time proportional to the delta, not to the accumulated program.
    """

    __slots__ = (
        "_index",
        "_consumed_rules",
        "_consumed_atoms",
        "_comp_of",
        "_members",
        "_order",
        "_positions",
        "_next_id",
        "tarjan_reruns",
        "rerun_atom_total",
    )

    def __init__(self, index: RuleIndex):
        self._index = index
        self._consumed_rules = 0
        self._consumed_atoms = 0
        #: atom id -> component id
        self._comp_of: list[int] = []
        #: component id -> member atom ids
        self._members: dict[int, tuple[int, ...]] = {}
        #: component ids, dependencies first
        self._order: list[int] = []
        #: component id -> index into :attr:`_order`
        self._positions: dict[int, int] = {}
        self._next_id = 0
        #: instrumentation: suffix Tarjan reruns performed / atoms they visited
        self.tarjan_reruns = 0
        self.rerun_atom_total = 0

    # -- views -------------------------------------------------------------------

    def order(self) -> tuple[int, ...]:
        """The component ids, dependencies first."""
        return tuple(self._order)

    def members(self, component_id: int) -> tuple[int, ...]:
        """The member atom ids of a component."""
        return self._members[component_id]

    def component_of_atom(self, atom_id: int) -> int:
        """The id of the component containing *atom_id*."""
        return self._comp_of[atom_id]

    def components_ids(self) -> list[list[int]]:
        """The condensation as atom-id components, dependencies first.

        The same shape as :meth:`RuleIndex.dependency_components_ids`; the
        partition is identical and the order is a valid dependencies-first
        order (the orders themselves may differ — both are correct).
        """
        return [list(self._members[cid]) for cid in self._order]

    def __len__(self) -> int:
        return len(self._order)

    # -- maintenance --------------------------------------------------------------

    def refresh(self) -> CondensationUpdate:
        """Fold the index's appended rules/atoms in; report what changed."""
        index = self._index
        first_rule = self._consumed_rules
        total_rules = len(index)
        total_atoms = index.atom_count()
        new_rules = range(first_rule, total_rules)
        new_atom_start = self._consumed_atoms
        if first_rule == total_rules and new_atom_start == total_atoms:
            return CondensationUpdate(frozenset(), frozenset(), new_rules)

        comp_of, positions = self._comp_of, self._positions
        known_before = set(self._members)
        for atom_id in range(new_atom_start, total_atoms):
            cid = self._next_id
            self._next_id += 1
            comp_of.append(cid)
            self._members[cid] = (atom_id,)
            positions[cid] = len(self._order)
            self._order.append(cid)
        self._consumed_atoms = total_atoms

        # Find the earliest order violation among the delta edges.  Consistent
        # edges (body strictly before head) need no work at all: the order
        # remains valid and no new cycle can pass through them alone.
        window_start: Optional[int] = None
        for rule_id in new_rules:
            head_comp = comp_of[index.head_id(rule_id)]
            head_pos = positions[head_comp]
            if window_start is not None and head_pos >= window_start:
                continue  # already inside the window; cannot shrink it further
            for atom_id in index.pos_ids(rule_id):
                if positions[comp_of[atom_id]] > head_pos:
                    window_start = head_pos
                    break
            else:
                for atom_id in index.neg_ids(rule_id):
                    if positions[comp_of[atom_id]] > head_pos:
                        window_start = head_pos
                        break
        self._consumed_rules = total_rules

        removed: frozenset = frozenset()
        created: set[int] = set()
        if window_start is not None:
            # only components the caller has seen belong in `removed` — a
            # singleton created and merged away within this same refresh was
            # never observable
            removed = self._recompute_suffix(window_start, created) & known_before

        dirty = set(created)
        for atom_id in range(new_atom_start, total_atoms):
            dirty.add(comp_of[atom_id])
        for rule_id in new_rules:
            dirty.add(comp_of[index.head_id(rule_id)])
        return CondensationUpdate(frozenset(dirty), removed, new_rules)

    def _recompute_suffix(self, window_start: int, created: set[int]) -> frozenset:
        """Tarjan on the components at order positions ``>= window_start``.

        Every order-violating edge starts inside this suffix, and a cycle's
        minimum-position component can only be left upward through a violating
        edge, so every possible merge lies entirely within it; components
        before the window keep ids, memberships and positions.  Edges leaving
        the suffix (into the stable prefix) are dropped from the subgraph —
        the prefix is unreachable-from and cannot participate in a cycle.
        """
        index = self._index
        comp_of = self._comp_of
        suffix_cids = self._order[window_start:]
        region_atoms: set[int] = set()
        for cid in suffix_cids:
            region_atoms.update(self._members[cid])
        self.tarjan_reruns += 1
        self.rerun_atom_total += len(region_atoms)

        graph: dict[int, list[int]] = {}
        for atom_id in region_atoms:
            successors: list[int] = []
            for rule_id in index.rule_ids_for_head_id(atom_id):
                for body_id in index.pos_ids(rule_id):
                    if body_id in region_atoms:
                        successors.append(body_id)
                for body_id in index.neg_ids(rule_id):
                    if body_id in region_atoms:
                        successors.append(body_id)
            graph[atom_id] = successors

        new_tail: list[int] = []
        for members in strongly_connected_components(graph):
            old_cid = comp_of[members[0]]
            existing = self._members.get(old_cid)
            if (
                existing is not None
                and len(existing) == len(members)
                and all(comp_of[atom_id] == old_cid for atom_id in members)
            ):
                new_tail.append(old_cid)
                continue
            cid = self._next_id
            self._next_id += 1
            created.add(cid)
            self._members[cid] = tuple(members)
            for atom_id in members:
                comp_of[atom_id] = cid
            new_tail.append(cid)

        removed = frozenset(suffix_cids) - set(new_tail)
        positions = self._positions
        for cid in removed:
            del self._members[cid]
            del positions[cid]
        del self._order[window_start:]
        self._order.extend(new_tail)
        for offset, cid in enumerate(new_tail, start=window_start):
            positions[cid] = offset
        return removed

    def __repr__(self) -> str:
        return (
            f"IncrementalCondensation({len(self._order)} components, "
            f"{self._consumed_rules} rules consumed)"
        )
