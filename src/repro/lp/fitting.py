"""Fitting's operator and the Kripke–Kleene semantics of normal programs.

The Kripke–Kleene (Fitting) semantics is the third classical three-valued
semantics next to the WFS and the stable-model semantics, and the standard
point of comparison in the literature the paper builds on (it is the least
fixpoint of Fitting's operator Φ_P, which derives an atom true when *some*
rule body is true and false when *every* rule body is false).  It is weaker
than the WFS: every Kripke–Kleene consequence is a well-founded consequence,
but the WFS additionally falsifies atoms whose support is circular (e.g.
``p ← p`` is false under the WFS and undefined under Kripke–Kleene).

The module exists for exactly that comparison (the test-suite asserts the
containment on random programs), and because Fitting's operator is a useful
building block when explaining why unfounded sets — and not just "all bodies
false" — are needed to capture the paper's Example 4.

:func:`fitting_operator` is the single-step reference transcription of Φ_P.
:func:`kripke_kleene_model` computes ``lfp(Φ_P)`` directly with a two-sided
worklist over the program's :class:`~repro.lp.fixpoint.RuleIndex`: per rule a
counter of body literals not yet satisfied (fires the head *true* at zero)
and per head a counter of not-yet-blocked rules (fires the head *false* at
zero).  Each rule–atom incidence is processed at most twice, so the least
fixpoint costs time linear in the program instead of ``rules × iterations``.
Both are equivalent; the tests check the closure against iterating the
operator.
"""

from __future__ import annotations

from typing import Iterable

from ..lang.atoms import Atom
from .grounding import GroundProgram
from .interpretation import Interpretation
from .wfs import WellFoundedModel

__all__ = ["fitting_operator", "kripke_kleene_model"]


def fitting_operator(program: GroundProgram, interpretation: Interpretation) -> Interpretation:
    """One application of Fitting's operator Φ_P to a three-valued interpretation.

    * an atom becomes **true** if some rule with that head has every positive
      body atom true and every negative body atom false in *interpretation*;
    * an atom becomes **false** if every rule with that head (possibly none)
      has a positive body atom false or a negative body atom true.
    """
    true_atoms: set[Atom] = set()
    false_atoms: set[Atom] = set()
    universe = program.atoms()
    for atom in universe:
        rules = program.rules_with_head(atom)
        some_body_true = any(
            all(interpretation.is_true(b) for b in rule.body_pos)
            and all(interpretation.is_false(b) for b in rule.body_neg)
            for rule in rules
        )
        every_body_false = all(
            any(interpretation.is_false(b) for b in rule.body_pos)
            or any(interpretation.is_true(b) for b in rule.body_neg)
            for rule in rules
        )
        if some_body_true:
            true_atoms.add(atom)
        elif every_body_false:
            false_atoms.add(atom)
    return Interpretation(true_atoms, false_atoms - true_atoms)


def kripke_kleene_model(program: GroundProgram, *, max_iterations: int = 100_000) -> WellFoundedModel:
    """The Kripke–Kleene model: the least fixpoint of Fitting's operator.

    Computed as a worklist closure over the rule index (see the module
    docstring); monotonicity of Φ_P makes the closure order-independent and
    equal to the iterated least fixpoint.  Returned as a
    :class:`~repro.lp.wfs.WellFoundedModel` wrapper (the class is just
    "three-valued model over a relevant universe"), so it supports the same
    query API and can be compared literal-by-literal with the WFS.

    ``max_iterations`` is kept for API compatibility; the worklist always
    terminates after at most one event per atom.
    """
    index = program.index()
    universe = program.atoms()
    num_atoms = index.atom_count()
    true_ids: set[int] = set()
    false_ids: set[int] = set()
    # Per rule: body literals not yet satisfied (pos must become true, neg false).
    unsatisfied: list[int] = [0] * len(index)
    rule_blocked: list[bool] = [False] * len(index)
    # Per head atom id: rules that could still fire it true.
    unblocked_rules: list[int] = [0] * num_atoms
    events: list[tuple[int, bool]] = []  # (atom id, value) still to propagate

    def assign(atom_id: int, value: bool) -> None:
        if atom_id in true_ids or atom_id in false_ids:
            return  # already decided; Φ_P never revises a value
        (true_ids if value else false_ids).add(atom_id)
        events.append((atom_id, value))

    def block(rule_id: int) -> None:
        if rule_blocked[rule_id]:
            return
        rule_blocked[rule_id] = True
        head_id = index.head_id(rule_id)
        unblocked_rules[head_id] -= 1
        if unblocked_rules[head_id] == 0:
            assign(head_id, False)

    for rule_id in range(len(index)):
        unblocked_rules[index.head_id(rule_id)] += 1
        unsatisfied[rule_id] = len(index.pos_ids(rule_id)) + len(index.neg_ids(rule_id))
    for atom_id in range(num_atoms):
        if not index.rule_ids_for_head_id(atom_id):
            assign(atom_id, False)  # no rule at all: every (zero) bodies are false
    for rule_id in range(len(index)):
        if unsatisfied[rule_id] == 0:
            assign(index.head_id(rule_id), True)  # a fact

    while events:
        atom_id, value = events.pop()
        if value:
            for rule_id in index.watchers_pos_id(atom_id):  # pos atom true: one literal down
                unsatisfied[rule_id] -= 1
                if unsatisfied[rule_id] == 0 and not rule_blocked[rule_id]:
                    assign(index.head_id(rule_id), True)
            for rule_id in index.watchers_neg_id(atom_id):  # neg atom true: rule blocked
                block(rule_id)
        else:
            for rule_id in index.watchers_neg_id(atom_id):  # neg atom false: one literal down
                unsatisfied[rule_id] -= 1
                if unsatisfied[rule_id] == 0 and not rule_blocked[rule_id]:
                    assign(index.head_id(rule_id), True)
            for rule_id in index.watchers_pos_id(atom_id):  # pos atom false: rule blocked
                block(rule_id)

    interpretation = Interpretation(index.atoms_of(true_ids), index.atoms_of(false_ids))
    return WellFoundedModel(interpretation, universe)
