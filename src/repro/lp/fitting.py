"""Fitting's operator and the Kripke–Kleene semantics of normal programs.

The Kripke–Kleene (Fitting) semantics is the third classical three-valued
semantics next to the WFS and the stable-model semantics, and the standard
point of comparison in the literature the paper builds on (it is the least
fixpoint of Fitting's operator Φ_P, which derives an atom true when *some*
rule body is true and false when *every* rule body is false).  It is weaker
than the WFS: every Kripke–Kleene consequence is a well-founded consequence,
but the WFS additionally falsifies atoms whose support is circular (e.g.
``p ← p`` is false under the WFS and undefined under Kripke–Kleene).

The module exists for exactly that comparison (the test-suite asserts the
containment on random programs), and because Fitting's operator is a useful
building block when explaining why unfounded sets — and not just "all bodies
false" — are needed to capture the paper's Example 4.
"""

from __future__ import annotations

from typing import Iterable

from ..lang.atoms import Atom
from .grounding import GroundProgram
from .interpretation import Interpretation
from .wfs import WellFoundedModel

__all__ = ["fitting_operator", "kripke_kleene_model"]


def fitting_operator(program: GroundProgram, interpretation: Interpretation) -> Interpretation:
    """One application of Fitting's operator Φ_P to a three-valued interpretation.

    * an atom becomes **true** if some rule with that head has every positive
      body atom true and every negative body atom false in *interpretation*;
    * an atom becomes **false** if every rule with that head (possibly none)
      has a positive body atom false or a negative body atom true.
    """
    true_atoms: set[Atom] = set()
    false_atoms: set[Atom] = set()
    universe = program.atoms()
    for atom in universe:
        rules = program.rules_with_head(atom)
        some_body_true = any(
            all(interpretation.is_true(b) for b in rule.body_pos)
            and all(interpretation.is_false(b) for b in rule.body_neg)
            for rule in rules
        )
        every_body_false = all(
            any(interpretation.is_false(b) for b in rule.body_pos)
            or any(interpretation.is_true(b) for b in rule.body_neg)
            for rule in rules
        )
        if some_body_true:
            true_atoms.add(atom)
        elif every_body_false:
            false_atoms.add(atom)
    return Interpretation(true_atoms, false_atoms - true_atoms)


def kripke_kleene_model(program: GroundProgram, *, max_iterations: int = 100_000) -> WellFoundedModel:
    """The Kripke–Kleene model: the least fixpoint of Fitting's operator.

    Returned as a :class:`~repro.lp.wfs.WellFoundedModel` wrapper (the class
    is just "three-valued model over a relevant universe"), so it supports the
    same query API and can be compared literal-by-literal with the WFS.
    """
    current = Interpretation.empty()
    for _ in range(max_iterations):
        nxt = fitting_operator(program, current)
        if nxt == current:
            return WellFoundedModel(current, program.atoms())
        current = nxt
    raise RuntimeError("Fitting iteration did not converge within the iteration budget")
