"""Normal-logic-program substrate: grounding, three-valued interpretations,
unfounded sets, the classical well-founded semantics, stratified (perfect)
semantics and stable models.

This package implements Sec. 2.2 and 2.6 of the paper for *finite ground*
programs; the Datalog± layer (:mod:`repro.core`) reduces query answering over
infinite Skolemised programs to computations on finite ground programs
produced from chase segments.
"""

from .fitting import fitting_operator, kripke_kleene_model
from .fixpoint import (
    CondensationUpdate,
    IncrementalCondensation,
    RuleIndex,
    strongly_connected_components,
)
from .grounding import (
    GroundProgram,
    PredicateIndex,
    SemiNaiveGrounder,
    ground_over_atoms,
    relevant_grounding,
)
from .herbrand import herbrand_base, herbrand_base_of_program, herbrand_universe
from .interpretation import Interpretation, TruthValue
from .stable import is_stable_model, stable_models
from .stratification import (
    PerfectModel,
    dependency_graph,
    ground_component_summary,
    ground_dependency_components,
    is_stratified,
    perfect_model,
    stratify,
)
from .unfounded import (
    greatest_unfounded_set,
    is_unfounded_set,
    possibly_true_atoms,
    possibly_true_atoms_naive,
)
from .wfs import (
    IncrementalWFS,
    WellFoundedModel,
    least_model_positive,
    tp_operator,
    well_founded_model,
    well_founded_model_alternating,
    well_founded_model_incremental,
    well_founded_model_naive,
    wp_operator,
)

__all__ = [
    "fitting_operator",
    "kripke_kleene_model",
    "CondensationUpdate",
    "IncrementalCondensation",
    "RuleIndex",
    "strongly_connected_components",
    "GroundProgram",
    "PredicateIndex",
    "SemiNaiveGrounder",
    "ground_over_atoms",
    "relevant_grounding",
    "herbrand_base",
    "herbrand_base_of_program",
    "herbrand_universe",
    "Interpretation",
    "TruthValue",
    "is_stable_model",
    "stable_models",
    "PerfectModel",
    "dependency_graph",
    "ground_component_summary",
    "ground_dependency_components",
    "is_stratified",
    "perfect_model",
    "stratify",
    "greatest_unfounded_set",
    "is_unfounded_set",
    "possibly_true_atoms",
    "possibly_true_atoms_naive",
    "IncrementalWFS",
    "WellFoundedModel",
    "least_model_positive",
    "tp_operator",
    "well_founded_model",
    "well_founded_model_alternating",
    "well_founded_model_incremental",
    "well_founded_model_naive",
    "wp_operator",
]
