"""Stratification and the perfect-model (stratified) semantics.

The paper motivates the WFS as the generalisation of *stratified* negation
(which [1] had already added to Datalog±).  This module provides the
classical machinery for normal programs:

* the predicate dependency graph, with positive and negative edges;
* a stratification test and stratum assignment (negative edges must not occur
  inside a cycle of the dependency graph);
* the perfect model of a stratified program, computed stratum by stratum with
  the usual iterated least-fixpoint construction (each stratum is one
  worklist propagation over a :class:`~repro.lp.fixpoint.RuleIndex`);
* the *ground* (atom-level) analogue used by the SCC-modular well-founded
  evaluation: :func:`ground_dependency_components` condenses the atom
  dependency graph of a finite ground program into strongly connected
  components in dependencies-first order, and
  :func:`ground_component_summary` classifies each component by whether it
  contains internal negation (only those pay for the alternating unfounded
  machinery in :func:`repro.lp.wfs.well_founded_model`).

One of the classical results the test-suite re-checks empirically: on a
stratified program, the well-founded model is total and coincides with the
perfect model.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from ..exceptions import NotStratifiedError
from ..lang.atoms import Atom
from ..lang.program import NormalProgram
from ..lang.rules import NormalRule
from .fixpoint import RuleIndex
from .grounding import GroundProgram, relevant_grounding

__all__ = [
    "dependency_graph",
    "ground_dependency_components",
    "ground_component_summary",
    "stratify",
    "is_stratified",
    "perfect_model",
    "PerfectModel",
]


def dependency_graph(
    program: NormalProgram | Iterable[NormalRule],
) -> tuple[set[tuple[str, str]], set[tuple[str, str]]]:
    """The predicate dependency graph of a normal program.

    Returns ``(positive_edges, negative_edges)`` where an edge ``(p, q)``
    means "the predicate p depends on q" (q occurs in the body of a rule whose
    head predicate is p); the edge is negative when q occurs under negation.
    """
    positive_edges: set[tuple[str, str]] = set()
    negative_edges: set[tuple[str, str]] = set()
    for rule in program:
        head_pred = rule.head.predicate
        for atom in rule.body_pos:
            positive_edges.add((head_pred, atom.predicate))
        for atom in rule.body_neg:
            negative_edges.add((head_pred, atom.predicate))
    return positive_edges, negative_edges


def ground_dependency_components(program: GroundProgram) -> list[list[Atom]]:
    """SCCs of the atom-level dependency graph, in dependencies-first order.

    The graph has an edge from every rule head to every atom of its body,
    positive *and* negative: negative edges must participate in the
    condensation too, otherwise mutually negative atoms (the win/move game's
    positions, say) would land in different components with no evaluation
    order between them.  The returned components are ordered so that every
    component appears after all components it depends on — exactly the order
    in which :func:`repro.lp.wfs.well_founded_model` evaluates them.

    The condensation itself runs in the rule index's dense atom-id space and
    is translated back to atoms here.
    """
    index = program.index()
    return [
        [index.atom_of(atom_id) for atom_id in component]
        for component in index.dependency_components_ids()
    ]


def ground_component_summary(
    program: GroundProgram,
) -> list[tuple[frozenset[Atom], bool]]:
    """The dependency components of a ground program, flagged for negation.

    Returns ``(atoms, has_internal_negation)`` pairs in dependencies-first
    order; a component has internal negation iff some rule heading into it
    negates an atom of the same component.  Components without the flag are
    resolved by a single linear positive pass in the modular WFS evaluation.
    """
    index = program.index()
    summary: list[tuple[frozenset[Atom], bool]] = []
    for component_atoms in ground_dependency_components(program):
        component = frozenset(component_atoms)
        internal_negation = any(
            atom in component
            for head in component_atoms
            for rule_id in index.rule_ids_for_head(head)
            for atom in index.neg_body(rule_id)
        )
        summary.append((component, internal_negation))
    return summary


def stratify(program: NormalProgram | Iterable[NormalRule]) -> dict[str, int]:
    """Assign a stratum (0, 1, 2, …) to every predicate of the program.

    The standard constraint system is solved by iteration to a fixpoint:

    * if p depends positively on q then ``stratum(p) >= stratum(q)``,
    * if p depends negatively on q then ``stratum(p) >= stratum(q) + 1``.

    Raises
    ------
    NotStratifiedError
        If no finite stratification exists, i.e. some predicate depends
        negatively on itself through a cycle.
    """
    rules = list(program)
    predicates: set[str] = set()
    for rule in rules:
        predicates.update(rule.predicates())
    positive_edges, negative_edges = dependency_graph(rules)

    strata: dict[str, int] = {p: 0 for p in predicates}
    # After |predicates| full passes without stabilising, some stratum exceeds
    # the number of predicates, which certifies a negative cycle.
    limit = len(predicates) + 1
    for _ in range(limit * max(1, len(predicates))):
        changed = False
        for head, dep in positive_edges:
            if strata[head] < strata[dep]:
                strata[head] = strata[dep]
                changed = True
        for head, dep in negative_edges:
            if strata[head] < strata[dep] + 1:
                strata[head] = strata[dep] + 1
                changed = True
        if not changed:
            return strata
        if any(level > limit for level in strata.values()):
            break
    raise NotStratifiedError(
        "program is not stratified: a predicate depends negatively on itself through a cycle"
    )


def is_stratified(program: NormalProgram | Iterable[NormalRule]) -> bool:
    """``True`` iff the program admits a stratification."""
    try:
        stratify(program)
    except NotStratifiedError:
        return False
    return True


class PerfectModel:
    """The perfect (stratified) model: a total two-valued model.

    Implements the three-valued protocol so it can be compared directly with
    :class:`~repro.lp.wfs.WellFoundedModel` and used for query evaluation;
    every atom is either true or false (closed world on the relevant universe).
    """

    def __init__(self, true_atoms: Iterable[Atom], universe: Iterable[Atom]):
        self._true = frozenset(true_atoms)
        self._universe = frozenset(universe) | self._true

    def is_true(self, atom: Atom) -> bool:
        """Atom is in the perfect model."""
        return atom in self._true

    def is_false(self, atom: Atom) -> bool:
        """Atom is not in the perfect model (closed world)."""
        return atom not in self._true

    def is_undefined(self, atom: Atom) -> bool:
        """Perfect models are total: nothing is undefined."""
        return False

    def true_atoms(self) -> frozenset[Atom]:
        """The atoms of the model."""
        return self._true

    def universe(self) -> frozenset[Atom]:
        """The relevant universe the model was computed over."""
        return self._universe

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PerfectModel):
            return self._true == other._true
        return NotImplemented

    def __repr__(self) -> str:
        return f"PerfectModel({len(self._true)} true atoms)"


def perfect_model(
    program: NormalProgram | Iterable[NormalRule],
    *,
    ground: Optional[GroundProgram] = None,
    strata: Optional[Mapping[str, int]] = None,
) -> PerfectModel:
    """The perfect model of a stratified normal program.

    The grounding is computed with :func:`relevant_grounding` unless a ground
    program is supplied.  Strata are computed from the (non-ground) program
    unless supplied.  Evaluation proceeds stratum by stratum: each stratum's
    rules are evaluated by a least-fixpoint computation (one worklist
    propagation over a per-stratum rule index) in which negative body atoms
    refer to the (already fixed) lower strata.
    """
    rules = list(program)
    if strata is None:
        strata = stratify(rules)
    if ground is None:
        ground = relevant_grounding(rules)

    max_stratum = max(strata.values(), default=0)
    model: set[Atom] = set()
    for level in range(max_stratum + 1):
        level_rules = [
            r for r in ground if strata.get(r.head.predicate, 0) == level
        ]
        # Within a stratum, negation refers to lower strata only (guaranteed by
        # the stratification), so we may resolve negative bodies against the
        # model computed so far and then run a positive least fixpoint.
        resolved = []
        for rule in level_rules:
            if any(b in model for b in rule.body_neg):
                continue
            resolved.append(rule.positive_part())
        model |= RuleIndex(resolved).least_model(start=model)
    return PerfectModel(model, ground.atoms())
