"""The well-founded semantics of finite ground normal programs (Sec. 2.6).

Three constructions are implemented and cross-checked by the tests:
(a fourth, :class:`IncrementalWFS` / :func:`well_founded_model_incremental`,
re-solves a *growing* program across monotone rule additions and is pinned
bit-identical to :func:`well_founded_model` by the incremental test suites):

* :func:`well_founded_model` — the production path: the ground program's
  atom-level dependency graph is decomposed into strongly connected
  components (:func:`repro.lp.stratification.ground_dependency_components`)
  and evaluated component by component, dependencies first.  A component
  without internal negation is resolved with one linear worklist pass (a
  definite-consequence closure plus one unfounded-set sweep); only components
  with internal negation pay for the alternating ``T``/``U`` machinery, and
  even there every closure is a linear worklist propagation over the shared
  :class:`~repro.lp.fixpoint.RuleIndex`.
* :func:`well_founded_model_naive` — the paper's definition kept verbatim as
  a reference: iterate ``W_P(I) = T_P(I) ∪ ¬.U_P(I)`` from the empty
  interpretation to the least fixpoint, re-scanning the whole program each
  round.
* :func:`well_founded_model_alternating` — Van Gelder's alternating fixpoint:
  iterate ``Γ²`` (two applications of the Gelfond–Lifschitz transform followed
  by a least-model computation) from ``∅``; its least fixpoint gives the true
  atoms and ``Γ`` of it the non-false atoms.  ``Γ`` runs on the rule index
  without materialising reducts.

All three return a :class:`WellFoundedModel`, a thin wrapper around
:class:`~repro.lp.interpretation.Interpretation` that also knows the relevant
atom universe so that atoms outside the ground program are reported false
(they head no rule, hence are unfounded).

Correctness of the modular evaluation rests on the modularity ("splitting")
property of the WFS: the condensation of the dependency graph is acyclic, so
the well-founded model of the whole program restricted to a component equals
the well-founded model of the component's rules with the (final) values of
all lower components fixed.  Undefined lower atoms stay undefined markers:
a rule depending on one can never fire definitely but still provides
possible support, which is exactly how the two closures below treat it.
"""

from __future__ import annotations

from typing import Collection, Iterable, Iterator, Optional, Sequence

from ..lang.atoms import Atom, Literal
from .fixpoint import IncrementalCondensation, RuleIndex
from .grounding import GroundProgram
from .interpretation import Interpretation
from .unfounded import greatest_unfounded_set, possibly_true_atoms_naive

__all__ = [
    "WellFoundedModel",
    "IncrementalWFS",
    "tp_operator",
    "wp_operator",
    "well_founded_model",
    "well_founded_model_incremental",
    "well_founded_model_naive",
    "well_founded_model_alternating",
    "least_model_positive",
    "gelfond_lifschitz_reduct",
]


class WellFoundedModel:
    """The well-founded model ``WFS(P)`` of a finite ground normal program.

    Exposes the three-valued protocol (``is_true`` / ``is_false`` /
    ``is_undefined``) used by query evaluation.  Atoms outside the relevant
    universe of the ground program are *false*: they do not occur in any rule,
    hence belong to every greatest unfounded set.
    """

    def __init__(
        self,
        interpretation: Interpretation,
        universe: Iterable[Atom],
        *,
        iterations: int = 0,
    ):
        self._interpretation = interpretation
        self._universe = frozenset(universe)
        self.iterations = iterations

    # -- three-valued protocol ---------------------------------------------------

    def is_true(self, atom: Atom) -> bool:
        """``True`` iff the atom is well-founded (true in the model)."""
        return self._interpretation.is_true(atom)

    def is_false(self, atom: Atom) -> bool:
        """``True`` iff the atom is unfounded (false in the model).

        Atoms outside the relevant universe are false.
        """
        if self._interpretation.is_false(atom):
            return True
        return atom not in self._universe and not self._interpretation.is_true(atom)

    def is_undefined(self, atom: Atom) -> bool:
        """``True`` iff the atom has the third truth value."""
        return not self.is_true(atom) and not self.is_false(atom)

    def true_atoms(self) -> frozenset[Atom]:
        """The well-founded (true) atoms."""
        return self._interpretation.true_atoms()

    def false_atoms(self) -> frozenset[Atom]:
        """The unfounded (false) atoms *inside the relevant universe*."""
        return self._interpretation.false_atoms()

    def undefined_atoms(self) -> frozenset[Atom]:
        """The undefined atoms of the relevant universe."""
        return frozenset(
            a for a in self._universe if self._interpretation.is_undefined(a)
        )

    def universe(self) -> frozenset[Atom]:
        """The relevant atom universe the model was computed over."""
        return self._universe

    def interpretation(self) -> Interpretation:
        """The underlying consistent literal set."""
        return self._interpretation

    def holds(self, literal: Literal) -> bool:
        """Is the ground literal a consequence under the WFS?"""
        if literal.positive:
            return self.is_true(literal.atom)
        return self.is_false(literal.atom)

    def literals(self) -> Iterator[Literal]:
        """All literals of the model (restricted to the relevant universe)."""
        return self._interpretation.literals()

    def is_total(self) -> bool:
        """``True`` iff no atom of the relevant universe is undefined."""
        return not self.undefined_atoms()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WellFoundedModel):
            return NotImplemented
        return (
            self._interpretation == other._interpretation
            and self._universe == other._universe
        )

    def __str__(self) -> str:
        return str(self._interpretation)

    def __repr__(self) -> str:
        return (
            f"WellFoundedModel({len(self.true_atoms())} true, "
            f"{len(self.false_atoms())} false, {len(self.undefined_atoms())} undefined)"
        )


# ---------------------------------------------------------------------------
# The paper's operators
# ---------------------------------------------------------------------------


def tp_operator(program: GroundProgram, interpretation: Interpretation) -> set[Atom]:
    """The immediate-consequence operator ``T_P(I)``.

    ``T_P(I) = {H(r) | r ∈ ground(P), B⁺(r) ∪ ¬.B⁻(r) ⊆ I}``: a head is
    derived when every positive body atom is true in ``I`` and every negative
    body atom is false in ``I``.
    """
    return program.index().tp(interpretation)


def wp_operator(program: GroundProgram, interpretation: Interpretation) -> Interpretation:
    """One application of ``W_P(I) = T_P(I) ∪ ¬.U_P(I)``."""
    true_atoms = tp_operator(program, interpretation)
    unfounded = greatest_unfounded_set(program, interpretation)
    # W_P is only applied to interpretations compatible with P, for which
    # T_P(I) and U_P(I) are disjoint; the Interpretation constructor re-checks.
    return Interpretation(true_atoms, unfounded - true_atoms)


# ---------------------------------------------------------------------------
# SCC-modular indexed evaluation (the production path)
# ---------------------------------------------------------------------------


def _solve_component(
    index: RuleIndex,
    component: set[int],
    rule_ids: Sequence[int],
    true_ids: Collection[int],
    false_ids: Collection[int],
) -> tuple[set[int], set[int], int]:
    """Solve one condensation component, its dependencies already final.

    Alternates the definite-consequence and possibly-true closures confined
    to *component* until they stabilise (a single pass when the component has
    no internal negation).  ``true_ids``/``false_ids`` are **read-only
    external inputs**: the closures only ever membership-test body atoms, and
    every body atom is either internal to the component (no value yet — the
    component is unsolved) or external (its value is final), so the solve
    snapshots the externals once into private working sets and mutates only
    those.  Returns the component's newly derived true and false ids plus
    the number of alternation rounds; committing the deltas into the global
    sets is the caller's job.  The read-only contract is what lets
    :mod:`repro.lp.parallel` run independent components concurrently against
    one shared snapshot — and it is enforced by the regression suite, which
    passes frozensets here.  This is the shared evaluation core of
    :func:`well_founded_model` and :class:`IncrementalWFS` — one
    implementation, so the incremental path can never drift from the
    from-scratch one.
    """
    internal_negation = any(
        atom_id in component
        for rule_id in rule_ids
        for atom_id in index.neg_ids(rule_id)
    )
    work_true: set[int] = set()
    work_false: set[int] = set()
    for rule_id in rule_ids:
        for atom_id in (*index.pos_ids(rule_id), *index.neg_ids(rule_id)):
            if atom_id in component:
                continue
            if atom_id in true_ids:
                work_true.add(atom_id)
            elif atom_id in false_ids:
                work_false.add(atom_id)
    local_true: set[int] = set()
    local_false: set[int] = set()
    rounds = 0
    while True:
        rounds += 1
        new_true = index.definite_closure_ids(rule_ids, component, work_true, work_false)
        work_true |= new_true
        local_true |= new_true
        possible = index.possible_closure_ids(rule_ids, component, work_true, work_false)
        new_false = {
            atom_id
            for atom_id in component
            if atom_id not in possible and atom_id not in work_false
        }
        work_false |= new_false
        local_false |= new_false
        if not internal_negation or (not new_true and not new_false):
            break
    return local_true, local_false, rounds


def well_founded_model(
    program: GroundProgram,
    *,
    workers: int = 1,
    executor: str = "auto",
    component_hook=None,
) -> WellFoundedModel:
    """``WFS(P)`` by SCC-modular worklist evaluation.

    The atom dependency graph (an edge from each head to each of its body
    atoms, positive or negative) is condensed into strongly connected
    components, which are evaluated dependencies-first:

    * a component without internal negation is *stratified locally*: one
      definite-consequence closure yields its true atoms and one
      possibly-true sweep its false atoms — a single linear pass;
    * a component with internal negation alternates the two closures until
      they stabilise, which is the ``W_P`` iteration confined to the
      component (lower components are already final).

    With ``workers > 1`` independent components are dispatched to a worker
    pool by :mod:`repro.lp.parallel`'s ready-set scheduler; results commit in
    topological order, so the model *and* ``iterations`` are bit-identical
    to the serial evaluation (``workers=1``, the default and the
    differential oracle).  ``executor`` selects the pool kind (``"auto"`` /
    ``"thread"`` / ``"process"``) and ``component_hook`` is a test/bench seam
    invoked once per solved component.

    The whole evaluation runs in the rule index's dense atom-id space and is
    translated back to atoms once at the end.  Agreement with
    :func:`well_founded_model_naive` and
    :func:`well_founded_model_alternating` is asserted by the test-suite.
    """
    index = program.index()
    universe = program.atoms()
    true_ids: set[int] = set()
    false_ids: set[int] = set()
    rounds = 0

    if workers > 1:
        from .parallel import resolve_components_scratch

        true_ids, false_ids, rounds = resolve_components_scratch(
            index,
            workers=workers,
            executor=executor,
            component_hook=component_hook,
        )
    else:
        for component_ids in index.dependency_components_ids():
            component = set(component_ids)
            rule_ids = [
                rule_id
                for atom_id in component_ids
                for rule_id in index.active_rule_ids_for_head_id(atom_id)
            ]
            if component_hook is not None:
                component_hook(component)
            local_true, local_false, component_rounds = _solve_component(
                index, component, rule_ids, true_ids, false_ids
            )
            true_ids |= local_true
            false_ids |= local_false
            rounds += component_rounds

    interpretation = Interpretation(index.atoms_of(true_ids), index.atoms_of(false_ids))
    return WellFoundedModel(interpretation, universe, iterations=rounds)


# ---------------------------------------------------------------------------
# Incremental evaluation across monotone program growth (iterative deepening)
# ---------------------------------------------------------------------------


class IncrementalWFS:
    """The well-founded model of a *growing* ground program, re-solved lazily.

    The Datalog± engine's iterative deepening only ever **adds** ground rules
    to its :class:`~repro.lp.grounding.GroundProgram`; recomputing the full
    SCC-modular model at every depth therefore redoes almost all of the
    previous depth's work.  This solver keeps, across calls to :meth:`model`:

    * an :class:`~repro.lp.fixpoint.IncrementalCondensation` of the program's
      rule index (new rules are folded in, Tarjan reruns confined to the
      affected suffix of the component order);
    * the per-component solutions of the previous call (the component's true
      and false atom ids) plus each component's *external inputs* — the body
      atom ids outside the component whose final values its solution read.

    A refresh re-solves, dependencies first, exactly the components the delta
    can have touched: components reported dirty by the condensation (new
    membership, or a new rule heading into them) and components one of whose
    external inputs changed value — the change set is propagated along the
    component order, so an unchanged re-solve stops the ripple.  Everything
    else keeps its stored solution untouched.

    Correctness is the same modularity ("splitting") argument that justifies
    :func:`well_founded_model`: a component's restriction of the WFS is the
    WFS of the component's rules with all lower components' final values
    fixed.  A component whose membership, rule set and external input values
    are all unchanged therefore has the *same* subproblem as at the previous
    depth — its stored solution is the solution.  The incremental test suites
    pin the resulting models bit-identical to the from-scratch path across
    random programs, growth schedules and budget resumes.
    """

    def __init__(
        self,
        program: GroundProgram,
        *,
        workers: int = 1,
        executor: str = "auto",
        component_hook=None,
    ):
        self._program = program
        self._condensation = IncrementalCondensation(program.index())
        #: parallel evaluation knobs (see :mod:`repro.lp.parallel`);
        #: ``workers=1`` is the serial differential oracle
        self.workers = max(1, int(workers))
        self.executor = executor
        self.component_hook = component_hook
        #: component id -> (true atom ids, false atom ids) of its solution
        self._solutions: dict[int, tuple[frozenset[int], frozenset[int]]] = {}
        #: component id -> external body atom ids its solution depends on
        self._inputs: dict[int, frozenset[int]] = {}
        #: condensation updates accumulated by :meth:`refresh_structure`
        #: calls between :meth:`model` calls — nothing may be lost when a
        #: caller refreshes the condensation without immediately re-solving
        self._pending_dirty: set[int] = set()
        self._pending_removed: set[int] = set()
        #: atom ids invalidated externally (rule activity flipped under the
        #: index by the view-maintenance layer); translated to component ids
        #: at the next :meth:`model` call, after the structural refresh
        self._pending_dirty_atom_ids: set[int] = set()
        self._true_ids: set[int] = set()
        self._false_ids: set[int] = set()
        #: atom-space mirrors of the id sets, updated from per-component
        #: deltas so a depth step never re-translates the untouched bulk
        self._true_atoms: set = set()
        self._false_atoms: set = set()
        self._cached_model: Optional[WellFoundedModel] = None
        #: instrumentation for tests and the benchmark: component solves
        #: performed / skipped by the most recent :meth:`model` call
        self.last_resolved = 0
        self.last_reused = 0
        #: atoms whose truth value changed in the most recent :meth:`model`
        #: call (empty on a no-change step); consumers such as the engine's
        #: frontier-type cache invalidate exactly these
        self.last_changed_atoms: frozenset = frozenset()

    @property
    def program(self) -> GroundProgram:
        """The growing ground program this solver is bound to."""
        return self._program

    @property
    def condensation(self) -> IncrementalCondensation:
        """The incrementally maintained dependency condensation."""
        return self._condensation

    def refresh_structure(self) -> None:
        """Fold appended rules into the condensation without re-solving.

        The resulting :class:`~repro.lp.fixpoint.CondensationUpdate` is
        accumulated into pending state consumed by the next :meth:`model`
        call, so callers that need a current condensation *between* model
        refreshes (the view-maintenance layer asks it which atoms are
        recursive) can refresh eagerly without losing dirt.
        """
        update = self._condensation.refresh()
        self._pending_dirty |= update.dirty
        self._pending_removed |= update.removed

    def invalidate_atom_ids(self, atom_ids: Iterable[int]) -> None:
        """Mark atoms (by index id) whose defining rules changed under the index.

        The view-maintenance layer enables/disables ground rules in place;
        the condensation cannot see those flips (the rule *structure* is
        unchanged), so the affected heads are reported here and their
        components re-solve on the next :meth:`model` call — the value ripple
        to dependent components then follows the normal changed-input path.
        """
        self._pending_dirty_atom_ids.update(atom_ids)

    def model(self) -> WellFoundedModel:
        """``WFS(P)`` for the program's current rule set (re-solving only dirty parts)."""
        index = self._program.index()
        self.refresh_structure()
        if (
            not self._pending_dirty
            and not self._pending_removed
            and not self._pending_dirty_atom_ids
            and self._cached_model is not None
        ):
            # No new rules reached any component, so no solution can change
            # (a genuinely new rule always dirties its head's component), no
            # rule activity flipped, and the universe is unchanged: the
            # previous model *is* the model.
            self.last_resolved = 0
            self.last_reused = len(self._solutions)
            self.last_changed_atoms = frozenset()
            return self._cached_model
        removed = self._pending_removed
        dirty = self._pending_dirty - removed
        for atom_id in self._pending_dirty_atom_ids:
            dirty.add(self._condensation.component_of_atom(atom_id))
        self._pending_dirty = set()
        self._pending_removed = set()
        self._pending_dirty_atom_ids = set()
        changed: set[int] = set()
        for cid in removed:
            solution = self._solutions.pop(cid, None)
            if solution is not None:
                # the merged successor re-solves and re-asserts these atoms;
                # anything it no longer derives has genuinely changed value
                self._true_ids -= solution[0]
                self._false_ids -= solution[1]
                self._true_atoms -= index.atoms_of(solution[0])
                self._false_atoms -= index.atoms_of(solution[1])
                changed |= solution[0] | solution[1]
            self._inputs.pop(cid, None)

        condensation = self._condensation
        true_ids, false_ids = self._true_ids, self._false_ids
        rounds = 0
        resolved = reused = 0

        if self.workers > 1:
            from .parallel import resolve_components_incremental

            outcomes = resolve_components_incremental(
                index,
                condensation,
                true_ids,
                false_ids,
                stored=self._solutions,
                stored_inputs=self._inputs,
                dirty=dirty,
                initial_changed=changed,
                workers=self.workers,
                executor=self.executor,
                component_hook=self.component_hook,
            )
            # Commit in topological order: the bookkeeping below is the
            # serial loop's, verbatim, so stats and mirrors stay
            # bit-identical to the ``workers=1`` oracle.
            for cid in condensation.order():
                outcome = outcomes[cid]
                if outcome is None:
                    reused += 1
                    continue
                resolved += 1
                stored = self._solutions.get(cid)
                if stored is not None:
                    true_ids -= stored[0]
                    false_ids -= stored[1]
                    self._true_atoms -= index.atoms_of(stored[0])
                    self._false_atoms -= index.atoms_of(stored[1])
                local_true, local_false, component_rounds, inputs = outcome
                true_ids |= local_true
                false_ids |= local_false
                rounds += component_rounds
                self._true_atoms |= index.atoms_of(local_true)
                self._false_atoms |= index.atoms_of(local_false)
                solution = (frozenset(local_true), frozenset(local_false))
                if stored is None:
                    changed |= solution[0] | solution[1]
                else:
                    changed |= (stored[0] ^ solution[0]) | (stored[1] ^ solution[1])
                self._solutions[cid] = solution
                self._inputs[cid] = inputs
        else:
            for cid in condensation.order():
                stored = self._solutions.get(cid)
                resolve = stored is None or cid in dirty
                if not resolve and changed:
                    inputs = self._inputs.get(cid)
                    resolve = inputs is not None and not changed.isdisjoint(inputs)
                if not resolve:
                    reused += 1
                    continue
                resolved += 1
                component = set(condensation.members(cid))
                rule_ids = [
                    rule_id
                    for atom_id in component
                    for rule_id in index.active_rule_ids_for_head_id(atom_id)
                ]
                if stored is not None:
                    true_ids -= stored[0]
                    false_ids -= stored[1]
                    self._true_atoms -= index.atoms_of(stored[0])
                    self._false_atoms -= index.atoms_of(stored[1])
                if self.component_hook is not None:
                    self.component_hook(component)
                local_true, local_false, component_rounds = _solve_component(
                    index, component, rule_ids, true_ids, false_ids
                )
                true_ids |= local_true
                false_ids |= local_false
                rounds += component_rounds
                self._true_atoms |= index.atoms_of(local_true)
                self._false_atoms |= index.atoms_of(local_false)
                solution = (frozenset(local_true), frozenset(local_false))
                if stored is None:
                    changed |= solution[0] | solution[1]
                else:
                    changed |= (stored[0] ^ solution[0]) | (stored[1] ^ solution[1])
                self._solutions[cid] = solution
                self._inputs[cid] = frozenset(
                    atom_id
                    for rule_id in rule_ids
                    for atom_id in (*index.pos_ids(rule_id), *index.neg_ids(rule_id))
                    if atom_id not in component
                )

        self.last_resolved = resolved
        self.last_reused = reused
        self.last_changed_atoms = frozenset(index.atoms_of(changed))
        # The mirrors already hold the atom translation; Interpretation's
        # constructor copies them, so the model is a stable snapshot.
        interpretation = Interpretation(self._true_atoms, self._false_atoms)
        model = WellFoundedModel(
            interpretation, self._program.atoms(), iterations=rounds
        )
        self._cached_model = model
        return model


def well_founded_model_incremental(
    program: GroundProgram,
    state: Optional[IncrementalWFS] = None,
    *,
    workers: int = 1,
    executor: str = "auto",
) -> tuple[WellFoundedModel, IncrementalWFS]:
    """``WFS(P)`` of a growing program, reusing the previous call's solutions.

    Functional wrapper around :class:`IncrementalWFS` for callers that thread
    state explicitly (the Datalog± engine's deepening schedule): pass the
    state returned by the previous call — made against the *same* (since
    grown) :class:`~repro.lp.grounding.GroundProgram` object — and only the
    components the delta touched are re-solved.  With ``state=None`` (or a
    state bound to a different program) the computation starts cold and is
    equivalent to :func:`well_founded_model`.

    ``workers``/``executor`` apply when a fresh state is created (an existing
    state keeps the knobs it was built with).
    """
    if state is None or state.program is not program:
        state = IncrementalWFS(program, workers=workers, executor=executor)
    return state.model(), state


def well_founded_model_naive(program: GroundProgram) -> WellFoundedModel:
    """``WFS(P) = lfp(W_P)`` computed by iterating ``W_P`` from ``∅``.

    The seed's direct transcription of the paper's definition, retained as the
    reference implementation: each round re-scans the whole program for the
    ``T_P`` consequences and recomputes the greatest unfounded set naively.
    ``W_P`` is monotone on the consistent interpretations compatible with
    ``P``, so the iteration from the empty interpretation reaches the least
    fixpoint after at most ``|relevant universe|`` many steps.
    """
    universe = program.atoms()
    rules = program.rules()
    current = Interpretation.empty()
    iterations = 0
    while True:
        iterations += 1
        derived: set[Atom] = set()
        for rule in rules:
            if all(current.is_true(b) for b in rule.body_pos) and all(
                current.is_false(b) for b in rule.body_neg
            ):
                derived.add(rule.head)
        possible = possibly_true_atoms_naive(program, current)
        unfounded = {a for a in universe if a not in possible}
        nxt = Interpretation(derived, unfounded - derived)
        if nxt == current:
            break
        current = nxt
    return WellFoundedModel(current, universe, iterations=iterations)


# ---------------------------------------------------------------------------
# Alternating fixpoint (Van Gelder 1989) — used as an independent cross-check
# ---------------------------------------------------------------------------


def _index_of(program: GroundProgram | Iterable) -> RuleIndex:
    """The cached index of a :class:`GroundProgram`, or a fresh one for iterables."""
    if isinstance(program, GroundProgram):
        return program.index()
    return RuleIndex(program)


def least_model_positive(program: GroundProgram | Iterable, *, start: Iterable[Atom] = ()) -> set[Atom]:
    """Least Herbrand model of a ground *positive* program (fixpoint of T_P).

    *program* may be a :class:`GroundProgram` or any iterable of ground rules
    whose negative bodies are empty (negative bodies, if present, are ignored —
    callers pass reducts, which are positive by construction).  Computed by a
    single Dowling–Gallier worklist propagation over the rule index.
    """
    return _index_of(program).least_model(start)


def gelfond_lifschitz_reduct(program: GroundProgram, assumed_true: set[Atom]) -> list:
    """The Gelfond–Lifschitz reduct ``P^J`` w.r.t. the atom set *assumed_true*.

    Rules with a negative body atom in *assumed_true* are deleted; the
    remaining rules lose their negative bodies.  (The fixpoint computations
    no longer materialise reducts — they block rules directly on the index —
    but the explicit construction remains part of the API and of the tests.)
    """
    reduct = []
    for rule in program:
        if any(b in assumed_true for b in rule.body_neg):
            continue
        reduct.append(rule.positive_part())
    return reduct


def _gamma(program: GroundProgram, assumed_true: set[Atom]) -> set[Atom]:
    """``Γ(J)``: least model of the reduct ``P^J``, via the rule index."""
    return _index_of(program).gamma(assumed_true)


def well_founded_model_alternating(program: GroundProgram) -> WellFoundedModel:
    """The WFS via Van Gelder's alternating fixpoint.

    The sequence ``I₀ = ∅``, ``I_{k+1} = Γ(Γ(I_k))`` is increasing and its
    limit ``I*`` is the set of true atoms of the WFS; ``Γ(I*)`` is the set of
    atoms that are not false.  Equivalence with the unfounded-set construction
    is a classical result (Van Gelder 1989) and is asserted by the tests.
    Each ``Γ`` is one worklist propagation over the shared rule index — the
    reduct is represented by blocking rules, never materialised.
    """
    universe = program.atoms()
    index = _index_of(program)
    current: set[int] = set()
    iterations = 0
    while True:
        iterations += 1
        upper = index.gamma_ids(current)
        nxt = index.gamma_ids(upper)
        if nxt == current:
            break
        current = nxt
    not_false = index.gamma_ids(current)
    true_atoms = index.atoms_of(current)
    false_atoms = {a for a in universe if index.atom_id(a) not in not_false}
    interpretation = Interpretation(true_atoms, false_atoms)
    return WellFoundedModel(interpretation, universe, iterations=iterations)
