"""The well-founded semantics of finite ground normal programs (Sec. 2.6).

Two equivalent constructions are implemented and cross-checked by the tests:

* :func:`well_founded_model` — the paper's definition: iterate
  ``W_P(I) = T_P(I) ∪ ¬.U_P(I)`` from the empty interpretation to the least
  fixpoint, where ``T_P`` is the immediate-consequence operator and ``U_P``
  the greatest unfounded set (module :mod:`repro.lp.unfounded`).
* :func:`well_founded_model_alternating` — Van Gelder's alternating fixpoint:
  iterate ``Γ²`` (two applications of the Gelfond–Lifschitz transform followed
  by a least-model computation) from ``∅``; its least fixpoint gives the true
  atoms and ``Γ`` of it the non-false atoms.

Both return a :class:`WellFoundedModel`, a thin wrapper around
:class:`~repro.lp.interpretation.Interpretation` that also knows the relevant
atom universe so that atoms outside the ground program are reported false
(they head no rule, hence are unfounded).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from ..lang.atoms import Atom, Literal
from .grounding import GroundProgram
from .interpretation import Interpretation
from .unfounded import greatest_unfounded_set

__all__ = [
    "WellFoundedModel",
    "tp_operator",
    "wp_operator",
    "well_founded_model",
    "well_founded_model_alternating",
    "least_model_positive",
    "gelfond_lifschitz_reduct",
]


class WellFoundedModel:
    """The well-founded model ``WFS(P)`` of a finite ground normal program.

    Exposes the three-valued protocol (``is_true`` / ``is_false`` /
    ``is_undefined``) used by query evaluation.  Atoms outside the relevant
    universe of the ground program are *false*: they do not occur in any rule,
    hence belong to every greatest unfounded set.
    """

    def __init__(
        self,
        interpretation: Interpretation,
        universe: Iterable[Atom],
        *,
        iterations: int = 0,
    ):
        self._interpretation = interpretation
        self._universe = frozenset(universe)
        self.iterations = iterations

    # -- three-valued protocol ---------------------------------------------------

    def is_true(self, atom: Atom) -> bool:
        """``True`` iff the atom is well-founded (true in the model)."""
        return self._interpretation.is_true(atom)

    def is_false(self, atom: Atom) -> bool:
        """``True`` iff the atom is unfounded (false in the model).

        Atoms outside the relevant universe are false.
        """
        if self._interpretation.is_false(atom):
            return True
        return atom not in self._universe and not self._interpretation.is_true(atom)

    def is_undefined(self, atom: Atom) -> bool:
        """``True`` iff the atom has the third truth value."""
        return not self.is_true(atom) and not self.is_false(atom)

    def true_atoms(self) -> frozenset[Atom]:
        """The well-founded (true) atoms."""
        return self._interpretation.true_atoms()

    def false_atoms(self) -> frozenset[Atom]:
        """The unfounded (false) atoms *inside the relevant universe*."""
        return self._interpretation.false_atoms()

    def undefined_atoms(self) -> frozenset[Atom]:
        """The undefined atoms of the relevant universe."""
        return frozenset(
            a for a in self._universe if self._interpretation.is_undefined(a)
        )

    def universe(self) -> frozenset[Atom]:
        """The relevant atom universe the model was computed over."""
        return self._universe

    def interpretation(self) -> Interpretation:
        """The underlying consistent literal set."""
        return self._interpretation

    def holds(self, literal: Literal) -> bool:
        """Is the ground literal a consequence under the WFS?"""
        if literal.positive:
            return self.is_true(literal.atom)
        return self.is_false(literal.atom)

    def literals(self) -> Iterator[Literal]:
        """All literals of the model (restricted to the relevant universe)."""
        return self._interpretation.literals()

    def is_total(self) -> bool:
        """``True`` iff no atom of the relevant universe is undefined."""
        return not self.undefined_atoms()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WellFoundedModel):
            return NotImplemented
        return (
            self._interpretation == other._interpretation
            and self._universe == other._universe
        )

    def __str__(self) -> str:
        return str(self._interpretation)

    def __repr__(self) -> str:
        return (
            f"WellFoundedModel({len(self.true_atoms())} true, "
            f"{len(self.false_atoms())} false, {len(self.undefined_atoms())} undefined)"
        )


# ---------------------------------------------------------------------------
# The paper's operators
# ---------------------------------------------------------------------------


def tp_operator(program: GroundProgram, interpretation: Interpretation) -> set[Atom]:
    """The immediate-consequence operator ``T_P(I)``.

    ``T_P(I) = {H(r) | r ∈ ground(P), B⁺(r) ∪ ¬.B⁻(r) ⊆ I}``: a head is
    derived when every positive body atom is true in ``I`` and every negative
    body atom is false in ``I``.
    """
    derived: set[Atom] = set()
    for rule in program:
        if all(interpretation.is_true(b) for b in rule.body_pos) and all(
            interpretation.is_false(b) for b in rule.body_neg
        ):
            derived.add(rule.head)
    return derived


def wp_operator(program: GroundProgram, interpretation: Interpretation) -> Interpretation:
    """One application of ``W_P(I) = T_P(I) ∪ ¬.U_P(I)``."""
    true_atoms = tp_operator(program, interpretation)
    unfounded = greatest_unfounded_set(program, interpretation)
    # W_P is only applied to interpretations compatible with P, for which
    # T_P(I) and U_P(I) are disjoint; the Interpretation constructor re-checks.
    return Interpretation(true_atoms, unfounded - true_atoms)


def well_founded_model(program: GroundProgram) -> WellFoundedModel:
    """``WFS(P) = lfp(W_P)`` computed by iterating ``W_P`` from ``∅``.

    ``W_P`` is monotone on the consistent interpretations compatible with
    ``P``, so the iteration from the empty interpretation reaches the least
    fixpoint after at most ``|relevant universe|`` many steps.
    """
    current = Interpretation.empty()
    iterations = 0
    while True:
        iterations += 1
        nxt = wp_operator(program, current)
        if nxt == current:
            break
        current = nxt
    return WellFoundedModel(current, program.atoms(), iterations=iterations)


# ---------------------------------------------------------------------------
# Alternating fixpoint (Van Gelder 1989) — used as an independent cross-check
# ---------------------------------------------------------------------------


def least_model_positive(program: GroundProgram | Iterable, *, start: Iterable[Atom] = ()) -> set[Atom]:
    """Least Herbrand model of a ground *positive* program (fixpoint of T_P).

    *program* may be a :class:`GroundProgram` or any iterable of ground rules
    whose negative bodies are empty (negative bodies, if present, are ignored —
    callers pass reducts, which are positive by construction).
    """
    rules = list(program)
    model: set[Atom] = set(start)
    changed = True
    while changed:
        changed = False
        for rule in rules:
            if rule.head in model:
                continue
            if all(b in model for b in rule.body_pos):
                model.add(rule.head)
                changed = True
    return model


def gelfond_lifschitz_reduct(program: GroundProgram, assumed_true: set[Atom]) -> list:
    """The Gelfond–Lifschitz reduct ``P^J`` w.r.t. the atom set *assumed_true*.

    Rules with a negative body atom in *assumed_true* are deleted; the
    remaining rules lose their negative bodies.
    """
    reduct = []
    for rule in program:
        if any(b in assumed_true for b in rule.body_neg):
            continue
        reduct.append(rule.positive_part())
    return reduct


def _gamma(program: GroundProgram, assumed_true: set[Atom]) -> set[Atom]:
    """``Γ(J)``: least model of the reduct ``P^J``."""
    return least_model_positive(gelfond_lifschitz_reduct(program, assumed_true))


def well_founded_model_alternating(program: GroundProgram) -> WellFoundedModel:
    """The WFS via Van Gelder's alternating fixpoint.

    The sequence ``I₀ = ∅``, ``I_{k+1} = Γ(Γ(I_k))`` is increasing and its
    limit ``I*`` is the set of true atoms of the WFS; ``Γ(I*)`` is the set of
    atoms that are not false.  Equivalence with the unfounded-set construction
    is a classical result (Van Gelder 1989) and is asserted by the tests.
    """
    universe = program.atoms()
    current: set[Atom] = set()
    iterations = 0
    while True:
        iterations += 1
        upper = _gamma(program, current)
        nxt = _gamma(program, upper)
        if nxt == current:
            break
        current = nxt
    not_false = _gamma(program, current)
    false_atoms = {a for a in universe if a not in not_false}
    interpretation = Interpretation(current, false_atoms)
    return WellFoundedModel(interpretation, universe, iterations=iterations)
