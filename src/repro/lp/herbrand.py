"""Herbrand universe and Herbrand base (Sec. 2.2 of the paper).

For a normal program ``P`` the Herbrand universe ``HU_P`` is the set of all
ground terms built from the constants and function symbols of ``P`` (if ``P``
has no constant, an arbitrary one is used), and the Herbrand base ``HB_P`` is
the set of all ground atoms over the program's predicates and ``HU_P``.

With function symbols both sets are infinite; this module therefore exposes
*depth-bounded* enumerations: all terms of functional nesting depth at most
``max_depth`` and all atoms over them.  The classical WFS substrate only needs
the full sets for function-free programs (depth 0), while the Datalog± engine
never materialises a Herbrand base at all (it works on the chase forest); the
bounded enumerations are mainly useful for tests, for the brute-force
stable-model checker and for didactic exploration.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Optional, Sequence

from ..exceptions import GroundingError
from ..lang.atoms import Atom
from ..lang.program import NormalProgram, Schema
from ..lang.terms import Constant, FunctionTerm, Term

__all__ = ["herbrand_universe", "herbrand_base", "program_signature"]

#: Constant used when a program mentions no constant at all (the paper allows
#: picking an arbitrary constant from the vocabulary in that case).
DEFAULT_CONSTANT = Constant("c0")


def program_signature(
    program: NormalProgram,
) -> tuple[set[Constant], set[tuple[str, int]], Schema]:
    """Return ``(constants, function_symbols, schema)`` of a normal program."""
    constants = program.constants()
    functions = program.function_symbols()
    schema = program.schema()
    return constants, functions, schema


def herbrand_universe(
    constants: Iterable[Constant],
    function_symbols: Iterable[tuple[str, int]] = (),
    max_depth: int = 0,
) -> set[Term]:
    """The set of ground terms of nesting depth ≤ ``max_depth``.

    Depth 0 terms are the constants; depth ``k+1`` terms additionally contain
    every application of a function symbol to depth-``≤ k`` terms.  If no
    constant is given, :data:`DEFAULT_CONSTANT` is used, matching the paper's
    convention of picking an arbitrary constant.

    Raises
    ------
    GroundingError
        If ``max_depth`` is negative.
    """
    if max_depth < 0:
        raise GroundingError("max_depth must be non-negative")
    current: set[Term] = set(constants)
    if not current:
        current = {DEFAULT_CONSTANT}
    functions = list(function_symbols)
    universe: set[Term] = set(current)
    previous_layer: set[Term] = set(current)
    for _ in range(max_depth):
        new_layer: set[Term] = set()
        for name, arity in functions:
            if arity == 0:
                candidate = FunctionTerm(name, ())
                if candidate not in universe:
                    new_layer.add(candidate)
                continue
            for combo in itertools.product(universe, repeat=arity):
                # at least one argument must come from the previous layer to
                # actually increase the depth; otherwise we re-create old terms.
                candidate = FunctionTerm(name, combo)
                if candidate not in universe:
                    new_layer.add(candidate)
        if not new_layer:
            break
        universe |= new_layer
        previous_layer = new_layer
    return universe


def herbrand_base(
    schema: Schema,
    terms: Iterable[Term],
    *,
    max_atoms: Optional[int] = None,
) -> set[Atom]:
    """All ground atoms over the schema's predicates and the given terms.

    Parameters
    ----------
    schema:
        The relational schema (predicate names and arities).
    terms:
        The ground terms available as arguments.
    max_atoms:
        Optional safety valve: raise :class:`GroundingError` if the base would
        exceed this many atoms (the base grows as ``Σ_P |terms|^{arity(P)}``).
    """
    term_list = list(terms)
    total = sum(len(term_list) ** schema.arity(p) for p in schema)
    if max_atoms is not None and total > max_atoms:
        raise GroundingError(
            f"Herbrand base would contain {total} atoms, exceeding the limit of {max_atoms}"
        )
    base: set[Atom] = set()
    for predicate in schema:
        arity = schema.arity(predicate)
        if arity == 0:
            base.add(Atom(predicate, ()))
            continue
        for combo in itertools.product(term_list, repeat=arity):
            base.add(Atom(predicate, combo))
    return base


def herbrand_base_of_program(
    program: NormalProgram,
    *,
    max_depth: int = 0,
    max_atoms: Optional[int] = None,
) -> set[Atom]:
    """Depth-bounded Herbrand base of a normal program.

    Convenience wrapper combining :func:`program_signature`,
    :func:`herbrand_universe` and :func:`herbrand_base`.
    """
    constants, functions, schema = program_signature(program)
    universe = herbrand_universe(constants, functions, max_depth=max_depth)
    return herbrand_base(schema, universe, max_atoms=max_atoms)
