"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single base class.  More specific subclasses signal
well-defined failure modes (parsing, ill-formed rules, non-guarded programs,
non-convergence of the chase, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` library."""


class ParseError(ReproError):
    """Raised when a textual program, query or database cannot be parsed.

    Attributes
    ----------
    text:
        The offending input fragment.
    position:
        Character offset inside ``text`` at which parsing failed, if known.
    """

    def __init__(self, message: str, text: str | None = None, position: int | None = None):
        super().__init__(message)
        self.text = text
        self.position = position


class IllFormedRuleError(ReproError):
    """Raised when a rule violates a syntactic well-formedness condition.

    Examples: a TGD with a null in it, a normal rule whose head contains a
    variable that does not occur in the positive body (unsafe rule), or a
    negative body atom whose variables are not covered by the positive body.
    """


class NotGuardedError(IllFormedRuleError):
    """Raised when a (normal) TGD that must be guarded has no guard atom.

    A normal TGD is *guarded* if some positive body atom contains every
    universally quantified variable of the rule (Sec. 2.4 of the paper).
    """


class NotStratifiedError(ReproError):
    """Raised when stratified semantics is requested for a non-stratified program."""


class GroundingError(ReproError):
    """Raised when a program cannot be grounded (e.g. infinite Herbrand base
    requested without a depth bound)."""


class ConvergenceError(ReproError):
    """Raised when the Datalog± well-founded engine fails to converge within
    the configured chase-depth budget.

    The exception carries the last (sound but possibly incomplete)
    three-valued approximation so that callers can still inspect it.
    """

    def __init__(self, message: str, partial_model=None, depth: int | None = None):
        super().__init__(message)
        self.partial_model = partial_model
        self.depth = depth


class InconsistentInterpretationError(ReproError):
    """Raised when an operation would produce an interpretation containing
    both an atom and its negation."""


class TranslationError(ReproError):
    """Raised when a DL-Lite ontology cannot be translated to Datalog±."""


class AnalysisError(ReproError):
    """Raised when static analysis rejects a program before evaluation.

    Carries the analyzer's findings so callers can render or inspect them;
    ``diagnostics`` is a tuple of :class:`repro.analysis.Diagnostic` (typed
    loosely here to keep this module import-free).
    """

    def __init__(self, message: str, diagnostics: tuple = ()):
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)
