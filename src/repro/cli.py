"""Command-line interface: load a Datalog± program and answer queries.

Usage (after ``pip install -e .``)::

    python -m repro PROGRAM_FILE [options]

    # answer an NBCQ against the well-founded model
    python -m repro ontology.dlp --query "? isAuthorOf(john, Y)"

    # print the truth value of a ground atom
    python -m repro ontology.dlp --atom "article(pods13)"

    # dump the whole (finite-segment) well-founded model
    python -m repro ontology.dlp --dump-model

The program file uses the textual syntax of :mod:`repro.lang.parser`: NTGDs
written ``body -> head.`` (with ``exists`` for existential head variables and
``not`` for default negation) and plain facts ``atom.``; the facts become the
database.  Additional facts can be supplied from a second file with
``--database``.

The CLI is deliberately thin: it parses, builds a
:class:`~repro.core.engine.WellFoundedEngine`, runs the requested action and
prints plain text, so it can be scripted and diffed.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .core.engine import WellFoundedEngine
from .core.stratified import StratifiedDatalogPM
from .exceptions import NotStratifiedError, ReproError
from .lang.parser import parse_atom, parse_database, parse_program, parse_query

__all__ = ["build_argument_parser", "main"]


def build_argument_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed separately for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Answer queries over a guarded normal Datalog± program under the "
            "well-founded semantics with the unique name assumption (PODS 2013)."
        ),
    )
    parser.add_argument("program", help="path to the program file (rules and facts)")
    parser.add_argument(
        "--database",
        help="optional path to an extra database file (facts only)",
        default=None,
    )
    parser.add_argument(
        "--query",
        action="append",
        default=[],
        metavar="NBCQ",
        help='an NBCQ such as "? p(X), not q(X)" (repeatable)',
    )
    parser.add_argument(
        "--atom",
        action="append",
        default=[],
        metavar="ATOM",
        help="a ground atom whose truth value should be printed (repeatable)",
    )
    parser.add_argument(
        "--dump-model",
        action="store_true",
        help="print every literal of the (finite-segment) well-founded model",
    )
    parser.add_argument(
        "--stratified",
        action="store_true",
        help="also evaluate the queries under the stratified Datalog± baseline of [1]",
    )
    parser.add_argument(
        "--max-depth",
        type=int,
        default=31,
        help="chase depth budget for the iterative deepening (default: 31)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print engine statistics (chase depth, node count, convergence)",
    )
    parser.add_argument(
        "--rewrite",
        action=argparse.BooleanOptionalAction,
        default=False,
        help=(
            "answer --query goal-directedly via magic-sets rewriting "
            "(--no-rewrite forces the classic bottom-up evaluation)"
        ),
    )
    parser.add_argument(
        "--sips",
        choices=["left-to-right", "bound-first"],
        default="left-to-right",
        help="sideways-information-passing strategy used by --rewrite",
    )
    parser.add_argument(
        "--segment-cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "memoize chase subtrees by canonical atom type and splice them "
            "instead of re-deriving (--no-segment-cache disables; answers are "
            "identical either way)"
        ),
    )
    parser.add_argument(
        "--incremental",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "re-solve the well-founded model incrementally across the "
            "iterative-deepening schedule (--no-incremental recomputes it "
            "from scratch at every depth; models are identical either way)"
        ),
    )
    parser.add_argument(
        "--saturation",
        choices=["agenda", "scan"],
        default="agenda",
        help=(
            "chase saturation discipline: the incremental agenda worklist "
            "(default) or the retained breadth-first re-scan; forests and "
            "answers are identical either way"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=["tuple", "columnar", "sqlite"],
        default="columnar",
        help=(
            "grounding backend for the magic-sets query path and --updates "
            "maintenance: bulk columnar hash joins over interned ids "
            "(default), the per-candidate tuple matcher, or the same join "
            "plans on an in-memory sqlite database; ground programs and "
            "answers are identical across backends"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "evaluate independent condensation components (and independent "
            "chase root subtrees) on a pool of N workers; answers, models "
            "and round counts are bit-identical to the serial default "
            "(--workers 1), which remains the differential oracle"
        ),
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print per-query grounding statistics (mode, ground-rule counts, fallbacks)",
    )
    parser.add_argument(
        "--updates",
        metavar="FILE",
        default=None,
        help=(
            "replay an update script against a warm materialized view "
            "(repro.views.MaterializedEngine) instead of a one-shot engine: "
            "each line is '+ fact.' (insert), '- fact.' (retract) or "
            "'? query' (answer against the maintained well-founded model); "
            "'%%'/'#' start comments.  --query/--atom/--dump-model then "
            "report against the final maintained state"
        ),
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "with --updates: after every update, rebuild the model from "
            "scratch and verify the maintained model is identical "
            "(differential oracle; slow, for debugging and CI)"
        ),
    )
    return parser


def _format_query_stats(stats: dict) -> str:
    """One-line ``key=value`` rendering of a query's grounding statistics."""
    parts = []
    for key, value in stats.items():
        if isinstance(value, float):
            value = f"{value:.4f}"
        parts.append(f"{key}={value}")
    return " ".join(parts)


def _read(path: str) -> str:
    """Read a text file, raising a uniform error message on failure."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    except OSError as error:
        raise SystemExit(f"error: cannot read {path}: {error}") from error


def _truth(model, atom) -> str:
    """Three-valued truth of a ground atom in an lp-layer model."""
    if model.is_true(atom):
        return "true"
    if model.is_false(atom):
        return "false"
    return "undefined"


def _run_updates(args) -> int:
    """Replay an update script against a warm :class:`MaterializedEngine`.

    Script syntax, one statement per line (``%``/``#`` start comments)::

        + edge(a, b).      % insert a fact
        - edge(a, b).      % retract a fact
        ? reach(X)         % answer against the maintained model

    The engine stays warm across the whole script: each update grounds and
    re-solves only what it touched.  With ``--check`` the maintained model is
    verified against a from-scratch rebuild after every update.
    """
    from .views import MaterializedEngine

    program, database = parse_program(_read(args.program))
    if args.database:
        extra = parse_database(_read(args.database))
        database = database.copy()
        database.update(extra)
    engine = MaterializedEngine(
        program, database, backend=args.backend, workers=args.workers
    )
    exit_code = 0

    def check(context: str) -> None:
        nonlocal exit_code
        if args.check and engine.model() != engine.scratch_model():
            print(f"# CHECK FAILED {context}", file=sys.stderr)
            exit_code = 3

    check("after init")
    for lineno, raw in enumerate(_read(args.updates).splitlines(), start=1):
        line = raw.split("%", 1)[0].split("#", 1)[0].strip()
        if not line:
            continue
        try:
            if line[0] in "+-":
                atom = parse_atom(line[1:].strip().rstrip("."))
                if line[0] == "+":
                    stats = engine.add_facts(atom)
                else:
                    stats = engine.retract_facts(atom)
                if args.verbose:
                    print(f"# {line[0]}{atom} {_format_query_stats(stats)}")
                check(f"after line {lineno}: {line}")
            elif line[0] == "?":
                query = parse_query(line)
                if query.variables() and not query.negative:
                    answers = engine.answer(query)
                    rendered = sorted(
                        "(" + ", ".join(str(t) for t in tup) + ")"
                        for tup in answers
                    )
                    print(f"{line} : {' '.join(rendered) if rendered else 'no answers'}")
                else:
                    print(f"{line} : {'yes' if engine.holds(query) else 'no'}")
            else:
                print(
                    f"error: line {lineno}: expected '+fact.', '-fact.' or "
                    f"'? query', got {line!r}",
                    file=sys.stderr,
                )
                exit_code = 2
        except ReproError as error:
            print(f"error: line {lineno}: {error}", file=sys.stderr)
            exit_code = 2

    model = engine.model()
    for text in args.query:
        try:
            print(f"{text} : {'yes' if engine.holds(text) else 'no'}")
        except ReproError as error:
            print(f"error in query {text!r}: {error}", file=sys.stderr)
            exit_code = 2
    for text in args.atom:
        try:
            print(f"{text} : {_truth(model, parse_atom(text))}")
        except ReproError as error:
            print(f"error in atom {text!r}: {error}", file=sys.stderr)
            exit_code = 2
    if args.verbose:
        print(f"# view: {_format_query_stats(engine.total_stats)}")
    if args.dump_model:
        for atom in sorted(model.true_atoms(), key=lambda a: a.sort_key()):
            print(f"true   {atom}")
        for atom in sorted(model.false_atoms(), key=lambda a: a.sort_key()):
            print(f"false  {atom}")
        for atom in sorted(model.undefined_atoms(), key=lambda a: a.sort_key()):
            print(f"undef  {atom}")
    return exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro``; returns the process exit code."""
    # The scenario corpus has its own verb-structured CLI; dispatch before
    # the flag-style parser sees (and rejects) the sub-command word.
    effective = list(sys.argv[1:] if argv is None else argv)
    if effective and effective[0] == "scenarios":
        from .scenarios.cli import scenarios_main

        return scenarios_main(effective[1:])
    if effective and effective[0] == "analyze":
        from .analysis.cli import analyze_main

        return analyze_main(effective[1:])

    parser = build_argument_parser()
    args = parser.parse_args(argv)

    if args.updates:
        try:
            return _run_updates(args)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    # The full model is only materialised when something actually needs it
    # (--stats / --atom / --dump-model); with --rewrite, plain --query runs
    # stay goal-directed and never pay for the whole chase segment.
    needs_model = args.stats or args.atom or args.dump_model
    try:
        program, database = parse_program(_read(args.program))
        if args.database:
            extra = parse_database(_read(args.database))
            database = database.copy()
            database.update(extra)
        engine = WellFoundedEngine(
            program,
            database,
            max_depth=args.max_depth,
            rewrite=args.rewrite,
            sips=args.sips,
            segment_cache=args.segment_cache,
            saturation=args.saturation,
            incremental=args.incremental,
            backend=args.backend,
            workers=args.workers,
        )
        model = engine.model() if needs_model else None
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.stats:
        print(
            f"# model: depth={model.depth} converged={model.converged} "
            f"true={len(model.true_atoms())} false={len(model.false_atoms())} "
            f"undefined={len(model.undefined_atoms())}"
        )

    baseline = None
    if args.stratified:
        try:
            baseline = StratifiedDatalogPM(program, database)
        except NotStratifiedError:
            print("# stratified baseline: program is not stratified", file=sys.stderr)

    exit_code = 0
    for text in args.query:
        try:
            answer = engine.holds(text)
        except ReproError as error:
            print(f"error in query {text!r}: {error}", file=sys.stderr)
            exit_code = 2
            continue
        line = f"{text} : {'yes' if answer else 'no'}"
        if baseline is not None:
            line += f"   [stratified: {'yes' if baseline.holds(text) else 'no'}]"
        print(line)
        if args.verbose and engine.last_query_stats is not None:
            print(f"#   {_format_query_stats(engine.last_query_stats)}")

    for text in args.atom:
        try:
            atom = parse_atom(text)
        except ReproError as error:
            print(f"error in atom {text!r}: {error}", file=sys.stderr)
            exit_code = 2
            continue
        print(f"{text} : {model.value(atom)}")

    if args.verbose:
        cache = engine.segment_cache_stats()
        store = cache.pop("store", None)
        line = _format_query_stats({k: v for k, v in cache.items() if not isinstance(v, dict)})
        print(f"# segment-cache: {line}")
        if store is not None:
            print(f"# segment-store: {_format_query_stats(store)}")

    if args.dump_model:
        for atom in sorted(model.true_atoms(), key=lambda a: a.sort_key()):
            print(f"true   {atom}")
        for atom in sorted(model.false_atoms(), key=lambda a: a.sort_key()):
            print(f"false  {atom}")
        for atom in sorted(model.undefined_atoms(), key=lambda a: a.sort_key()):
            print(f"undef  {atom}")

    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
