"""Atom types and X-isomorphisms (the locality machinery of Sec. 3).

The *type* of an atom ``a`` is the pair ``type_P(a) = (a, S)`` where ``S`` is
the set of literals of ``WFS(P)`` whose arguments all occur among the
arguments of ``a``.  Lemma 11 of the paper shows that nodes of the chase
forest with X-isomorphic types have X-isomorphic well-founded submodels below
them; Prop. 12 turns the finite number of non-isomorphic types into a depth
bound for query matching.

This module provides:

* :class:`AtomType` — the pair ``(a, S)`` with a canonical, hashable key that
  identifies types up to isomorphism fixing the constants (nulls are renamed
  by first occurrence);
* :func:`x_isomorphism` — compute an X-isomorphism between two literal sets if
  one exists (used by the test-suite to validate Lemma 11 style properties on
  small programs);
* :func:`count_types` / :func:`max_type_count` — the combinatorial counting
  underlying the δ bound of Prop. 12 (the bound itself is exposed in
  :mod:`repro.core.locality`).

The chase engine uses the canonical keys of *approximate* types (built from
the current three-valued approximation instead of the final WFS) as its
convergence criterion: once every frontier node's approximate type key has
already been seen at a smaller depth, deeper expansion cannot change the truth
values of literals over the stabilised region (this is the practical analogue
of Lemma 11; see DESIGN.md).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from ..lang.atoms import Atom, Literal
from ..lang.terms import Constant, FunctionTerm, Term, Variable

__all__ = [
    "AtomType",
    "canonical_type_key",
    "shape_key",
    "context_part_key",
    "x_isomorphism",
    "are_x_isomorphic",
    "max_type_count",
]


def _rename_nulls(
    terms: Iterable[Term], renaming: dict[Term, str]
) -> None:
    """Assign placeholder names (``"#0"``, ``"#1"``, …) to nulls by first occurrence."""
    for term in terms:
        if isinstance(term, FunctionTerm) and term not in renaming:
            renaming[term] = f"#{len(renaming)}"


def _term_key(term: Term, renaming: Mapping[Term, str]) -> tuple:
    """Canonical key of a term: constants by name, nulls by placeholder."""
    if isinstance(term, Constant):
        return ("c", term.name)
    if isinstance(term, FunctionTerm):
        return ("n", renaming[term])
    # Variables should not occur in ground types, but handle them for robustness.
    return ("v", term.name)


def shape_key(atom: Atom) -> tuple:
    """Canonical key of a single ground atom up to null renaming.

    Two atoms have the same shape key iff one can be obtained from the other
    by a bijective renaming of nulls that fixes every constant.
    """
    renaming: dict[Term, str] = {}
    _rename_nulls(atom.args, renaming)
    return (atom.predicate,) + tuple(_term_key(arg, renaming) for arg in atom.args)


def context_part_key(atom: Atom, context: Iterable[Atom]) -> tuple:
    """Canonical key of a set of ground atoms over ``dom(a)`` (plus constants).

    The nulls of *atom* are renamed by first occurrence in its argument list
    (exactly as in :func:`shape_key`) and the context atoms — whose arguments
    must all lie in ``dom(a)`` or be constants — are keyed with that renaming
    and sorted.  Together with :func:`shape_key` this canonicalises the
    chase-relevant fragment of the paper's type ``(a, S)``: two atoms with
    equal shape *and* equal context part have X-isomorphic side-atom
    environments, which is what makes a memoized chase subtree exactly
    replayable under either of them (Lemma 11, specialised to the positive
    side atoms the chase consults).
    """
    renaming: dict[Term, str] = {}
    _rename_nulls(atom.args, renaming)
    return tuple(
        sorted(
            (c.predicate,) + tuple(_term_key(arg, renaming) for arg in c.args)
            for c in context
        )
    )


def canonical_type_key(atom: Atom, literals: Iterable[Literal]) -> tuple:
    """Canonical key of the pair ``(a, S)`` up to null renaming.

    The nulls of ``a`` are renamed by first occurrence in ``a``'s argument
    list; the literals of ``S`` are then keyed with the same renaming and
    sorted, which yields a key invariant under isomorphisms that fix the
    constants and map ``a``'s arguments positionally.
    """
    renaming: dict[Term, str] = {}
    _rename_nulls(atom.args, renaming)
    atom_part = (atom.predicate,) + tuple(_term_key(arg, renaming) for arg in atom.args)
    literal_keys = []
    for literal in literals:
        inner = literal.atom
        key = (
            literal.positive,
            inner.predicate,
        ) + tuple(_term_key(arg, renaming) for arg in inner.args)
        literal_keys.append(key)
    return (atom_part, tuple(sorted(literal_keys)))


@dataclass(frozen=True)
class AtomType:
    """The type ``type_P(a) = (a, S)`` of an atom (Sec. 3).

    ``literals`` is the set of literals over ``dom(a)`` drawn from the
    (possibly approximate) well-founded model; :meth:`key` gives the canonical
    form used for isomorphism comparisons and for the chase engine's
    convergence test.
    """

    atom: Atom
    literals: frozenset[Literal]

    @classmethod
    def of(cls, atom: Atom, model_literals: Iterable[Literal]) -> "AtomType":
        """Build the type of *atom* from the literals of a model.

        Only literals all of whose arguments occur among ``dom(a)`` are kept,
        per the paper's definition.
        """
        domain = atom.domain()
        selected = frozenset(
            literal for literal in model_literals if set(literal.atom.args) <= domain
        )
        return cls(atom, selected)

    def key(self) -> tuple:
        """Canonical, hashable key identifying the type up to null renaming."""
        return canonical_type_key(self.atom, self.literals)

    def is_isomorphic_to(self, other: "AtomType") -> bool:
        """Types are isomorphic iff their canonical keys coincide."""
        return self.key() == other.key()

    def __str__(self) -> str:
        listed = sorted(self.literals, key=lambda l: l.sort_key())
        return f"type({self.atom}) = ({self.atom}, {{{', '.join(str(l) for l in listed)}}})"


# ---------------------------------------------------------------------------
# X-isomorphisms between literal sets (used by tests of the locality lemmas)
# ---------------------------------------------------------------------------


def _domain_of_literals(literals: Iterable[Literal]) -> set[Term]:
    """All terms occurring as arguments in the literal set."""
    result: set[Term] = set()
    for literal in literals:
        result.update(literal.atom.args)
    return result


def _apply_mapping(literals: Iterable[Literal], mapping: Mapping[Term, Term]) -> set[Literal]:
    """Apply a term mapping to every literal of the set."""
    result: set[Literal] = set()
    for literal in literals:
        new_args = tuple(mapping.get(arg, arg) for arg in literal.atom.args)
        result.add(Literal(Atom(literal.atom.predicate, new_args), literal.positive))
    return result


def x_isomorphism(
    left: Iterable[Literal],
    right: Iterable[Literal],
    fixed: Iterable[Term] = (),
    *,
    max_domain: int = 12,
) -> Optional[dict[Term, Term]]:
    """Find an X-isomorphism from *left* to *right*, or return ``None``.

    An X-isomorphism is a bijection ``f`` between the argument domains with
    ``f(left) = right`` that is the identity on the terms of ``X`` (*fixed*).
    Constants are always kept fixed (the paper's isomorphisms are over
    ``Δ ∪ Δ_N`` but in the UNA setting a constant can only be mapped to
    itself without changing types, and the engine only ever compares types
    whose constants coincide).

    The search enumerates bijections between the non-fixed domain elements and
    is therefore exponential; *max_domain* guards against accidental misuse
    (the tests use small literal sets only).
    """
    left_set = set(left)
    right_set = set(right)
    fixed_set = set(fixed)

    left_domain = _domain_of_literals(left_set)
    right_domain = _domain_of_literals(right_set)
    if len(left_domain) != len(right_domain):
        return None

    always_fixed = {t for t in left_domain if isinstance(t, Constant)} | (
        fixed_set & left_domain
    )
    for term in always_fixed:
        if term not in right_domain and left_domain:
            # a fixed element of the left domain must appear on the right too
            return None

    movable_left = sorted(left_domain - always_fixed, key=str)
    movable_right = sorted(right_domain - always_fixed, key=str)
    if len(movable_left) != len(movable_right):
        return None
    if len(movable_left) > max_domain:
        raise ValueError(
            f"x_isomorphism search domain of size {len(movable_left)} exceeds max_domain={max_domain}"
        )

    base_mapping = {t: t for t in always_fixed}
    for permutation in itertools.permutations(movable_right):
        mapping = dict(base_mapping)
        mapping.update(zip(movable_left, permutation))
        if _apply_mapping(left_set, mapping) == right_set:
            return mapping
    return None


def are_x_isomorphic(
    left: Iterable[Literal],
    right: Iterable[Literal],
    fixed: Iterable[Term] = (),
) -> bool:
    """``True`` iff an X-isomorphism between the two literal sets exists."""
    return x_isomorphism(left, right, fixed) is not None


def max_type_count(num_predicates: int, max_arity: int) -> int:
    """An upper bound on the number of non-isomorphic types for a schema.

    Following the counting in Prop. 12: an atom has at most ``(2w)^w``
    argument patterns over ``2w`` distinguishable argument values, there are
    ``|R|`` predicates and at most ``2^{|R|·(2w)^w}`` literal sets over those
    values, giving ``|R| · (2w)^w · 2^{|R|·(2w)^w}`` — the quantity whose
    doubling is the paper's δ.  Exposed for the locality experiment (E6).
    """
    if max_arity == 0:
        # propositional corner case: only |R| atoms and 2^|R| literal sets
        return max(1, num_predicates) * 2 ** max(1, num_predicates)
    patterns = (2 * max_arity) ** max_arity
    return num_predicates * patterns * 2 ** (num_predicates * patterns)
