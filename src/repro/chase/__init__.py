"""Guarded chase substrate: chase forests, atom types and the chase engine.

Implements Sec. 2.5 of the paper (guarded chase forests ``F(P)`` / ``F⁺(P)``,
derivation levels) plus the type/isomorphism machinery of Sec. 3 that the
locality results are built on.
"""

from .engine import GuardedChaseEngine, chase_forest
from .forest import ChaseForest, ChaseNode
from .segments import (
    CachedSegment,
    SegmentStore,
    canonical_atom_shape,
    clear_segment_stores,
    program_fingerprint,
    segment_store_info,
    shared_segment_store,
)
from .types import (
    AtomType,
    are_x_isomorphic,
    canonical_type_key,
    max_type_count,
    shape_key,
    x_isomorphism,
)

__all__ = [
    "GuardedChaseEngine",
    "chase_forest",
    "ChaseForest",
    "ChaseNode",
    "CachedSegment",
    "SegmentStore",
    "canonical_atom_shape",
    "clear_segment_stores",
    "program_fingerprint",
    "segment_store_info",
    "shared_segment_store",
    "AtomType",
    "are_x_isomorphic",
    "canonical_type_key",
    "max_type_count",
    "shape_key",
    "x_isomorphism",
]
