"""Chase-segment caching by canonical atom type (the memoization of Lemma 11).

Lemma 11 of the paper is the statement that makes the guarded chase
*memoizable*: nodes of the chase forest whose types are X-isomorphic have
X-isomorphic well-founded submodels — the subtree hanging below a node is
determined by the node's type, not by the node's position in the forest.
Production Datalog± engines (e.g. Vadalog) turn exactly this observation into
their termination/reuse machinery.  This module is the corresponding subsystem
for :class:`repro.chase.engine.GuardedChaseEngine`:

* **Canonicalisation** — :func:`canonical_atom_shape` maps a ground atom to its
  *shape*: predicate, constant positions/values and the equality pattern among
  its labelled nulls, modulo a bijective renaming of the nulls.  This is the
  ``a`` part of the paper's type ``type_P(a) = (a, S)``.  The engine pairs the
  shape with the chase-relevant fragment of the ``S`` part — the
  side-relevant labels over ``dom(a)``, canonicalised by
  :func:`repro.chase.types.context_part_key` — to form the full *segment
  key*: equal keys mean identical firing environments for every inherited
  term, which is what lets a splice place interior nodes without re-matching
  any rules (*certified splicing*; see :mod:`repro.chase.engine`).  Every
  reuse is additionally re-validated against the target forest (see below),
  so even a key collision can never corrupt answers.
* **Memoisation** — :class:`SegmentStore` maps a segment key to a
  :class:`CachedSegment`: the fully expanded subtree below a node with that
  key, stored position-independently as a topologically ordered list of
  ``(parent index, canonical rule index)`` derivations plus the relative depth
  to which the subtree was saturated.  Alongside, the store memoizes *ground
  replays* per ``(key, root label)`` (:meth:`SegmentStore.replay_lookup`):
  replaying a segment under a fixed root label is deterministic, so repeated
  workloads place whole subtrees through set lookups and insertions only.
* **Persistence** — stores live in a module-level registry keyed by a
  *program fingerprint* (:func:`program_fingerprint`), so segments recorded by
  one engine instance are spliced by every later engine over the same rule set
  — including fresh engines built after an eviction from the
  :mod:`repro.core.answering` engine LRU, and the relevance-pruned sub-engines
  of the magic-sets fallback path (their pruned rule sets fingerprint
  separately, so reuse composes with the PR 2 rewrite machinery).

Why the splice is exact
-----------------------

A cached derivation is *not* trusted blindly.  Splicing replays it under the
new node by re-matching the rule's guard against the new label (the null
renaming of Lemma 11 falls out of the substitution) and re-checking that every
non-guard positive body atom is a label of the *current* forest.  Because
labels only ever grow, every spliced child is a firing the ordinary
breadth-first expansion would also perform; derivations whose side atoms are
absent are simply dropped.  The engine then runs its normal saturation rounds,
which add anything the segment missed and certify quiescence.  The saturated
forest within a depth bound is the least fixpoint of the chase step and hence
unique — so the forest built with the cache is **identical** (same node trees,
labels, ground rules, levels) to the forest built without it, and every query
answer is bit-identical.  The cache only changes *how fast* the fixpoint is
reached, never *which* fixpoint.

The stores are safe to share between threads (all mutating operations take an
internal lock) and bounded: at most :data:`REGISTRY_SIZE` fingerprints are
kept, each store holds at most ``max_segments`` segments of at most
``max_segment_nodes`` derivations, all evicted LRU-first.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional

from ..lang.atoms import Atom
from ..lang.rules import NormalRule
from .types import shape_key

__all__ = [
    "CachedSegment",
    "SegmentStore",
    "canonical_atom_shape",
    "program_fingerprint",
    "shared_segment_store",
    "clear_segment_stores",
    "segment_store_info",
    "REGISTRY_SIZE",
]


def canonical_atom_shape(atom: Atom) -> tuple:
    """The canonical type key of a ground atom for segment caching.

    Identical to :func:`repro.chase.types.shape_key`: the predicate, the
    constants (by value and position) and the equality pattern among the
    labelled nulls, with nulls renamed by first occurrence.  Two atoms have
    the same shape iff one is obtained from the other by a bijective renaming
    of nulls fixing all constants — the precondition of Lemma 11 for the label
    part of a type.
    """
    return shape_key(atom)


def canonical_rule_order(rules: Iterable[NormalRule]) -> list[NormalRule]:
    """The canonical (sorted, de-duplicated) ordering of a rule set.

    Cached segments refer to rules by their index in this ordering, so any two
    engines whose rule sets sort identically agree on what every stored
    derivation means.  Fact rules never label chase edges and are excluded.
    """
    seen: set[NormalRule] = set()
    unique: list[NormalRule] = []
    for rule in rules:
        if rule.is_fact() or rule in seen:
            continue
        seen.add(rule)
        unique.append(rule)
    unique.sort(key=str)
    return unique


def program_fingerprint(rules: Iterable[NormalRule], *, require_guarded: bool = True) -> str:
    """A stable fingerprint of a (Skolemised) rule set.

    The fingerprint is the SHA-256 of the sorted textual forms of the non-fact
    rules plus the guard-selection mode; it identifies the rule set up to rule
    order and duplicate rules, and is independent of the database — segments
    are database-independent because every splice is re-validated against the
    target forest (see the module docstring).
    """
    digest = hashlib.sha256()
    digest.update(b"guarded" if require_guarded else b"unguarded")
    for rule in canonical_rule_order(rules):
        digest.update(b"\x00")
        digest.update(str(rule).encode("utf-8"))
    return digest.hexdigest()


@dataclass(frozen=True)
class CachedSegment:
    """A fully expanded chase subtree, stored position-independently.

    Attributes
    ----------
    relative_depth:
        How many levels below the segment root the subtree was saturated when
        recorded (the root's distance to the depth bound at recording time).
        A splice under a node closer to the current bound simply places fewer
        levels; one further away leaves the deeper levels to the ordinary
        rounds (which may re-enter the cache for the spliced frontier).
    entries:
        Topologically ordered derivations ``(parent, rule)``: entry ``i``
        describes local node ``i + 1`` (the root is local node ``0``) as the
        child of local node ``parent`` obtained by firing the canonical rule
        with index ``rule`` — the rule's guard matched against the parent's
        label yields the full ground instance, because guards of guarded rules
        bind every rule variable.
    """

    relative_depth: int
    entries: tuple[tuple[int, int], ...]

    def __len__(self) -> int:
        return len(self.entries)


class SegmentStore:
    """An LRU store of :class:`CachedSegment` keyed by canonical segment key
    (atom shape + side-atom context; the store treats keys as opaque tuples).

    One store corresponds to one program fingerprint; engines sharing a
    fingerprint share the store (and hence each other's recorded segments and
    memoized replays).  All operations are thread-safe.
    """

    def __init__(
        self,
        fingerprint: str = "",
        *,
        max_segments: int = 4096,
        max_segment_nodes: int = 100_000,
        max_total_nodes: int = 1_000_000,
        max_replays: int = 4096,
    ):
        self.fingerprint = fingerprint
        self.max_segments = max_segments
        self.max_segment_nodes = max_segment_nodes
        #: budget on the *sum* of entries across all segments, so a store full
        #: of large segments cannot outgrow memory before hitting max_segments
        self.max_total_nodes = max_total_nodes
        #: bound on the number of memoized replays (see :meth:`replay_lookup`)
        self.max_replays = max_replays
        self._segments: "OrderedDict[tuple, CachedSegment]" = OrderedDict()
        self._total_nodes = 0
        # Memoized replays, bucketed per segment key: key -> {root label ->
        # fully ground derivations}, LRU-bounded (by bucket) and invalidated
        # in O(1) whenever the key's segment is re-recorded or evicted.  A
        # replay under a given root label is deterministic (the guard
        # substitutions are fixed by the labels), so engines over the same
        # database can place repeated subtrees without re-running any
        # substitution machinery.
        self._replays: "OrderedDict[tuple, dict]" = OrderedDict()
        self._replay_count = 0
        # Alias keys (see :meth:`record_alias`): a *cold* context-sensitive
        # lookup key served by the segment recorded under a richer
        # post-saturation key.  Resolved transparently by lookup/peek/the
        # replay memos; entries whose target was evicted are dropped lazily.
        self._aliases: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._recordings = 0
        self._evictions = 0
        self._alias_hits = 0

    # -- lookup / record --------------------------------------------------------

    def _resolve_key(self, shape: tuple) -> tuple:
        """The key actually holding a segment for *shape* (follows one alias).

        Caller must hold the lock.  A directly recorded segment always wins
        over an alias; an alias whose target segment was evicted is dropped
        on the way through.
        """
        if shape in self._segments:
            return shape
        target = self._aliases.get(shape)
        if target is not None:
            if target in self._segments:
                return target
            del self._aliases[shape]
        return shape

    def lookup(self, shape: tuple) -> Optional[CachedSegment]:
        """The cached segment for a shape, or ``None`` (counts hit/miss).

        Alias keys (:meth:`record_alias`) resolve to their target's segment
        and count as hits (plus the ``alias_hits`` counter).
        """
        with self._lock:
            resolved = self._resolve_key(shape)
            segment = self._segments.get(resolved)
            if segment is None:
                self._misses += 1
                return None
            self._segments.move_to_end(resolved)
            if resolved is not shape:
                self._aliases.move_to_end(shape)
                self._alias_hits += 1
            self._hits += 1
            return segment

    def contains(self, shape: tuple) -> bool:
        """Is a segment recorded for this shape?  No LRU or counter effects."""
        with self._lock:
            return self._resolve_key(shape) in self._segments

    def peek(self, shape: tuple) -> Optional[CachedSegment]:
        """The segment for a shape without LRU or counter effects."""
        with self._lock:
            return self._segments.get(self._resolve_key(shape))

    def needs(self, shape: tuple, relative_depth: int) -> bool:
        """Would recording a segment saturated to *relative_depth* improve the store?"""
        if relative_depth <= 0:
            return False
        with self._lock:
            existing = self._segments.get(shape)
            return existing is None or existing.relative_depth < relative_depth

    def record(
        self, shape: tuple, relative_depth: int, entries: tuple[tuple[int, int], ...]
    ) -> Optional[CachedSegment]:
        """Store a segment unless it is too large or a better one exists.

        A recorded segment is replaced when the new one is saturated deeper,
        or equally deep but with more derivations — a segment recorded from a
        forest where some side atoms were absent is *stale* (sound but
        incomplete), and a later forest that derived more under the same
        shape supersedes it.  Empty segments are never stored: "no children"
        is a database-dependent observation, not a property of the shape.

        Returns the stored :class:`CachedSegment` (truthy) when recorded and
        ``None`` when rejected — callers that go on to memoize replays pass
        the returned object back to :meth:`replay_record`, which memoizes
        only while that *identical* segment is still the one recorded.
        """
        if relative_depth <= 0 or not entries or len(entries) > self.max_segment_nodes:
            return None
        with self._lock:
            existing = self._segments.get(shape)
            if existing is not None and (
                existing.relative_depth > relative_depth
                or (
                    existing.relative_depth == relative_depth
                    and len(existing) >= len(entries)
                )
            ):
                return None
            if existing is not None:
                self._total_nodes -= len(existing)
                # memoized replays of the superseded segment are stale
                stale = self._replays.pop(shape, None)
                if stale:
                    self._replay_count -= len(stale)
            stored = CachedSegment(relative_depth, entries)
            self._segments[shape] = stored
            self._segments.move_to_end(shape)
            self._aliases.pop(shape, None)  # a direct segment supersedes an alias
            self._total_nodes += len(entries)
            self._recordings += 1
            while self._segments and (
                len(self._segments) > self.max_segments
                or self._total_nodes > self.max_total_nodes
            ):
                evicted_shape, evicted = self._segments.popitem(last=False)
                self._total_nodes -= len(evicted)
                dropped = self._replays.pop(evicted_shape, None)
                if dropped:
                    self._replay_count -= len(dropped)
                self._evictions += 1
            return stored if self._segments.get(shape) is stored else None

    def record_alias(self, alias: tuple, target: tuple) -> None:
        """Serve lookups of *alias* with the segment recorded under *target*.

        Double-keying for *cold context-sensitive keys*: a type whose
        side-atom context only materialises during saturation records under
        the post-saturation key (*target*) while fresh engines look it up
        under the pre-saturation key (*alias*) — without the alias the
        segment would be a guaranteed miss.  The caller
        (:meth:`repro.chase.engine.GuardedChaseEngine._record_segments`)
        registers an alias only when the lookup context is a **subset** of
        the recorded context, which keeps the splice sound: replayed
        derivations can only find side atoms missing (handled by the
        flag/retry machinery and the wake-once watchers), never fire beyond
        what the recording saw.  Aliases are LRU-bounded by ``max_segments``
        and dropped lazily when their target is evicted; a key with a
        directly recorded segment is never aliased away.
        """
        with self._lock:
            if alias == target or alias in self._segments:
                return
            if target not in self._segments:
                return
            self._aliases[alias] = target
            self._aliases.move_to_end(alias)
            while len(self._aliases) > self.max_segments:
                self._aliases.popitem(last=False)

    # -- memoized replays ---------------------------------------------------------

    def replay_lookup(self, key: tuple, root_label) -> Optional[tuple]:
        """The memoized ground replay for (segment key, root label), if any.

        Returns the tuple recorded by :meth:`replay_record` — fully ground
        ``(local index, parent local index, canonical rule index, ground
        rule, side atoms)`` derivations in placement order — or ``None``.
        Exact by construction: replaying a segment under a given root label
        is deterministic, and the whole bucket is dropped whenever the key's
        segment is re-recorded or evicted.
        """
        with self._lock:
            resolved = self._resolve_key(key)
            bucket = self._replays.get(resolved)
            if bucket is None:
                return None
            self._replays.move_to_end(resolved)
            return bucket.get(root_label)

    def replay_record(
        self,
        key: tuple,
        root_label,
        replay: tuple,
        *,
        segment: Optional[CachedSegment] = None,
    ) -> None:
        """Memoize a fully placed ground replay (LRU-bounded per key bucket).

        Alias keys resolve to their target's bucket, so a replay placed
        through an alias lookup is reusable by direct lookups too (and vice
        versa — the replay depends only on the segment and the root label).

        *segment*, when given, is the :class:`CachedSegment` the replay was
        derived from, and the memo is stored only while that **identical**
        object is still the one recorded under *key*.  Without the check, a
        concurrent engine re-recording a deeper or richer segment between
        this caller's lookup and its memoization would attach a memo of the
        *old* (smaller) segment to the new one — replay_lookup then serves
        an incomplete replay as if it were exact.  Checked under the store
        lock, so the compare-and-memoize step is atomic.
        """
        with self._lock:
            key = self._resolve_key(key)
            current = self._segments.get(key)
            if current is None:
                return  # the segment was evicted meanwhile; don't resurrect
            if segment is not None and current is not segment:
                return  # superseded meanwhile; the memo belongs to the old one
            bucket = self._replays.get(key)
            if bucket is None:
                bucket = self._replays[key] = {}
            if root_label not in bucket:
                self._replay_count += 1
            bucket[root_label] = replay
            self._replays.move_to_end(key)
            while self._replay_count > self.max_replays and self._replays:
                _, dropped = self._replays.popitem(last=False)
                self._replay_count -= len(dropped)

    # -- maintenance / introspection --------------------------------------------

    def clear(self) -> None:
        """Drop every segment and reset the counters."""
        with self._lock:
            self._segments.clear()
            self._replays.clear()
            self._aliases.clear()
            self._replay_count = 0
            self._total_nodes = 0
            self._hits = self._misses = self._recordings = self._evictions = 0
            self._alias_hits = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._segments)

    def stats(self) -> dict:
        """Counters of the store (shared by every engine on this fingerprint)."""
        with self._lock:
            return {
                "segments": len(self._segments),
                "cached_nodes": self._total_nodes,
                "hits": self._hits,
                "misses": self._misses,
                "recordings": self._recordings,
                "evictions": self._evictions,
                "aliases": len(self._aliases),
                "alias_hits": self._alias_hits,
            }

    def __repr__(self) -> str:
        return (
            f"SegmentStore({len(self)} segments, fingerprint="
            f"{self.fingerprint[:12] or '-'}...)"
        )


# ---------------------------------------------------------------------------
# The module-level registry: fingerprint → store, persistent across engines
# ---------------------------------------------------------------------------

#: Maximum number of program fingerprints whose stores are kept alive.
REGISTRY_SIZE = 32

_registry_lock = threading.Lock()
_stores: "OrderedDict[str, SegmentStore]" = OrderedDict()


def shared_segment_store(
    rules: Iterable[NormalRule], *, require_guarded: bool = True
) -> SegmentStore:
    """The persistent :class:`SegmentStore` for a rule set (created on miss).

    Keyed by :func:`program_fingerprint`, so every engine over the same
    (Skolemised) rules — across databases, deepening schedules and engine-LRU
    evictions — shares one store.  The registry is LRU-bounded by
    :data:`REGISTRY_SIZE`.
    """
    fingerprint = program_fingerprint(rules, require_guarded=require_guarded)
    with _registry_lock:
        store = _stores.get(fingerprint)
        if store is None:
            store = SegmentStore(fingerprint)
            _stores[fingerprint] = store
        _stores.move_to_end(fingerprint)
        while len(_stores) > REGISTRY_SIZE:
            _stores.popitem(last=False)
        return store


def clear_segment_stores() -> None:
    """Drop every store in the registry (tests, benchmarks, long services)."""
    with _registry_lock:
        _stores.clear()


def segment_store_info() -> dict:
    """Aggregate statistics of the registry, plus per-store counters."""
    with _registry_lock:
        stores = list(_stores.items())
    per_store = {fp[:12]: store.stats() for fp, store in stores}
    return {
        "stores": len(stores),
        "maxsize": REGISTRY_SIZE,
        "segments": sum(s["segments"] for s in per_store.values()),
        "hits": sum(s["hits"] for s in per_store.values()),
        "misses": sum(s["misses"] for s in per_store.values()),
        "per_store": per_store,
    }
