"""Guarded chase forests (Sec. 2.5 of the paper).

For ``P := D ∪ Σ^f`` (a database plus the functional transformation of a
guarded program), the guarded chase forest ``F(P)`` is built in levels:

* ``F₀(P)`` has one node per fact of ``P``, no edges;
* ``F_{i+1}(P)`` adds, for every node ``v`` and every rule
  ``r ∈ ground(P)`` whose guard is the label of ``v`` and whose body is
  contained in the labels of ``F_i(P)``, a child of ``v`` labelled ``H(r)``,
  with the edge labelled ``r``.

``F⁺(P)`` is the forest of the positive part ``P⁺`` with each edge relabelled
by the corresponding rule of ``P`` (negative body atoms restored); the set
``N(F)`` collects the negated body atoms of the rules labelling a subforest's
edges — these are the *negative hypotheses* of forward proofs (Def. 5).

This module holds the data structures (:class:`ChaseNode`, :class:`ChaseForest`);
the expansion procedure lives in :mod:`repro.chase.engine`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional, Sequence

from ..lang.atoms import Atom
from ..lang.rules import NormalRule

__all__ = ["ChaseNode", "ChaseForest"]


@dataclass
class ChaseNode:
    """A node of a guarded chase forest.

    Attributes
    ----------
    node_id:
        Dense integer identifier (stable across the life of the forest).
    label:
        The ground atom labelling the node (the paper's ``label(v)``).
    parent:
        The parent node's id, or ``None`` for roots.
    edge_rule:
        The ground rule of ``P`` labelling the edge from the parent (``None``
        for roots).  Following the construction of ``F⁺(P)``, the rule keeps
        its negative body atoms even though only its positive part was used to
        fire it.
    depth:
        Distance from the root of the node's tree (roots have depth 0).
    level:
        The derivation level ``level_P(v)``: the chase round in which the node
        was created (roots have level 0).  In general different from ``depth``.
    children:
        Ids of the node's children.
    """

    node_id: int
    label: Atom
    parent: Optional[int] = None
    edge_rule: Optional[NormalRule] = None
    depth: int = 0
    level: int = 0
    children: list[int] = field(default_factory=list)

    def is_root(self) -> bool:
        """``True`` iff the node has no parent."""
        return self.parent is None

    def __str__(self) -> str:
        return f"[{self.node_id}] {self.label} (depth={self.depth}, level={self.level})"


class ChaseForest:
    """A (finite, materialised segment of a) guarded chase forest.

    The forest is built incrementally by :class:`repro.chase.engine.GuardedChaseEngine`;
    this class only stores nodes and maintains the indexes used everywhere
    else (labels, nodes per label, applied rule instances, negative body
    atoms).  All query methods treat the forest as the paper's ``F⁺(P)``.
    """

    def __init__(self) -> None:
        self._nodes: list[ChaseNode] = []
        self._roots: list[int] = []
        self._by_label: dict[Atom, list[int]] = {}
        self._labels: set[Atom] = set()
        self._applied: set[tuple[int, NormalRule]] = set()
        self._negative_atoms: set[Atom] = set()
        # Change-notification hooks (see add_listener): called after a node is
        # fully indexed, so listeners observe a consistent forest.
        self._listeners: list[Callable[[ChaseNode, bool], None]] = []
        # Number of nodes at the last recompute_levels pass: the forest is
        # append-only, so levels are canonical iff nothing was added since.
        self._canonical_upto = 0

    # -- change notification -----------------------------------------------------

    def add_listener(self, listener: Callable[["ChaseNode", bool], None]) -> None:
        """Register a callback fired on every node insertion.

        The callback receives ``(node, is_new_label)`` where ``is_new_label``
        tells whether the node's label occurs in the forest for the first
        time.  It runs *after* the node is indexed, so the forest is
        consistent when observed from inside the callback.  This is how the
        agenda-based :class:`repro.chase.engine.GuardedChaseEngine` keeps its
        worklist and side-atom waiters in sync with insertions it did not
        perform itself (segment splices, facts added at construction) without
        re-scanning the forest.
        """
        self._listeners.append(listener)

    # -- construction (used by the engine) -------------------------------------

    def add_root(self, label: Atom) -> ChaseNode:
        """Add a root node labelled with a fact (level 0, depth 0)."""
        node = ChaseNode(node_id=len(self._nodes), label=label)
        self._nodes.append(node)
        self._roots.append(node.node_id)
        is_new_label = self._index(node)
        for listener in self._listeners:
            listener(node, is_new_label)
        return node

    def add_child(
        self,
        parent_id: int,
        label: Atom,
        edge_rule: NormalRule,
        level: int,
    ) -> ChaseNode:
        """Add a child of *parent_id* labelled *label* via the ground rule *edge_rule*."""
        parent = self._nodes[parent_id]
        node = ChaseNode(
            node_id=len(self._nodes),
            label=label,
            parent=parent_id,
            edge_rule=edge_rule,
            depth=parent.depth + 1,
            level=level,
        )
        self._nodes.append(node)
        parent.children.append(node.node_id)
        self._applied.add((parent_id, edge_rule))
        self._negative_atoms.update(edge_rule.body_neg)
        is_new_label = self._index(node)
        for listener in self._listeners:
            listener(node, is_new_label)
        return node

    def _index(self, node: ChaseNode) -> bool:
        """Maintain the label indexes; ``True`` iff the label is new to the forest."""
        self._by_label.setdefault(node.label, []).append(node.node_id)
        is_new = node.label not in self._labels
        if is_new:
            self._labels.add(node.label)
        return is_new

    def was_applied(self, parent_id: int, rule: NormalRule) -> bool:
        """Has this exact ground rule already been fired at this node?"""
        return (parent_id, rule) in self._applied

    # -- node access -------------------------------------------------------------

    def node(self, node_id: int) -> ChaseNode:
        """The node with the given id."""
        return self._nodes[node_id]

    def nodes(self) -> Sequence[ChaseNode]:
        """All nodes, in creation order."""
        return tuple(self._nodes)

    def roots(self) -> list[ChaseNode]:
        """The root nodes (database facts)."""
        return [self._nodes[i] for i in self._roots]

    def children(self, node_id: int) -> list[ChaseNode]:
        """The children of a node."""
        return [self._nodes[i] for i in self._nodes[node_id].children]

    def parent(self, node_id: int) -> Optional[ChaseNode]:
        """The parent of a node, or ``None`` for roots."""
        parent_id = self._nodes[node_id].parent
        return None if parent_id is None else self._nodes[parent_id]

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[ChaseNode]:
        return iter(self._nodes)

    # -- label access -------------------------------------------------------------

    def labels(self) -> frozenset[Atom]:
        """``label(F)``: the set of atoms labelling some node."""
        return frozenset(self._labels)

    def labels_live(self) -> set[Atom]:
        """The *live* label set (no copy).  Read-only by contract.

        The agenda-based engine tests side-atom membership on every firing;
        copying the set per lookup (as :meth:`labels` does) would turn the
        incremental saturation quadratic again.  Callers must not mutate the
        returned set.
        """
        return self._labels

    def has_label(self, atom: Atom) -> bool:
        """Does some node carry this label?"""
        return atom in self._labels

    def nodes_with_label(self, atom: Atom) -> list[ChaseNode]:
        """All nodes labelled with *atom* (there may be several, cf. Example 6)."""
        return [self._nodes[i] for i in self._by_label.get(atom, ())]

    def negative_atoms(self) -> frozenset[Atom]:
        """``N(F)``: atoms occurring negated in some edge rule of the forest."""
        return frozenset(self._negative_atoms)

    # -- structural queries ----------------------------------------------------------

    def level_of_atom(self, atom: Atom) -> Optional[int]:
        """``level_P(a)``: the minimum level of a node labelled *atom* (``None`` = ∞).

        **Contract:** the result is ``None`` exactly when no node of the forest
        is *labelled* with the atom.  In particular, atoms that occur in the
        forest only inside the negative body of an edge rule — i.e. atoms in
        :meth:`negative_atoms` that were never derived — return ``None``, not
        a level: the paper's ``level_P`` is defined on nodes, and a purely
        negative hypothesis has no node.  Callers distinguishing "absent from
        the forest" from "present only as a negative literal" should consult
        :meth:`negative_atoms` as well.
        """
        node_ids = self._by_label.get(atom)
        if not node_ids:
            return None
        return min(self._nodes[i].level for i in node_ids)

    def depth_of_atom(self, atom: Atom) -> Optional[int]:
        """The minimum tree depth of a node labelled *atom* (``None`` if absent).

        **Contract:** like :meth:`level_of_atom`, this returns ``None`` for
        any atom that labels no node — including atoms that occur *only* as
        negative body literals of edge rules (``N(F)``); such atoms have no
        node and therefore no depth.  Use :meth:`negative_atoms` to detect
        that case explicitly.
        """
        node_ids = self._by_label.get(atom)
        if not node_ids:
            return None
        return min(self._nodes[i].depth for i in node_ids)

    def max_depth(self) -> int:
        """The maximum node depth in the forest (0 for a forest of roots)."""
        return max((n.depth for n in self._nodes), default=0)

    def nodes_at_depth(self, depth: int) -> list[ChaseNode]:
        """All nodes at exactly the given tree depth."""
        return [n for n in self._nodes if n.depth == depth]

    def subtree_nodes(self, node_id: int) -> list[ChaseNode]:
        """The nodes of the subtree rooted at *node_id* (preorder)."""
        result: list[ChaseNode] = []
        stack = [node_id]
        while stack:
            current = stack.pop()
            node = self._nodes[current]
            result.append(node)
            stack.extend(reversed(node.children))
        return result

    def subtree_labels(self, node_id: int) -> set[Atom]:
        """The labels of the subtree rooted at *node_id*."""
        return {n.label for n in self.subtree_nodes(node_id)}

    def path_to_root(self, node_id: int) -> list[ChaseNode]:
        """The path from *node_id* up to its tree's root (node first, root last)."""
        path = [self._nodes[node_id]]
        while path[-1].parent is not None:
            path.append(self._nodes[path[-1].parent])
        return path

    def edge_rules(self) -> list[NormalRule]:
        """The ground rules labelling the edges of the forest (with duplicates removed)."""
        seen: set[NormalRule] = set()
        result: list[NormalRule] = []
        for node in self._nodes:
            rule = node.edge_rule
            if rule is not None and rule not in seen:
                seen.add(rule)
                result.append(rule)
        return result

    def side_literals_of_path(self, node_id: int) -> tuple[set[Atom], set[Atom]]:
        """Side literals of the root-to-node path (Sec. 4 / WCHECK).

        Returns ``(positive_side_atoms, negative_side_atoms)``: the non-guard
        positive body atoms and the negated body atoms of the rules applied
        along the path from the root down to *node_id*.
        """
        positive: set[Atom] = set()
        negative: set[Atom] = set()
        for node in self.path_to_root(node_id):
            rule = node.edge_rule
            if rule is None:
                continue
            parent = self.parent(node.node_id)
            guard_label = parent.label if parent is not None else None
            for atom in rule.body_pos:
                if atom != guard_label:
                    positive.add(atom)
            negative.update(rule.body_neg)
        return positive, negative

    # -- canonical levels --------------------------------------------------------

    def recompute_levels(self) -> int:
        """Assign every node its canonical derivation level (the paper's stage).

        The construction of ``F(P)`` proceeds in stages: ``F_{i+1}`` fires
        every rule whose guard labels a node of ``F_i`` and whose body lies in
        ``label(F_i)``.  The stage of a node is therefore the least fixpoint of

            ``level(root) = 0``
            ``level(child) = 1 + max(level(parent), level(a) for side atoms a)``

        where the level of an *atom* is the minimum level over nodes labelled
        with it.  A single-shot saturating expansion assigns exactly these
        values round by round, but incremental deepening (and segment
        splicing) create nodes out of stage order; this method restores the
        canonical values, making levels a pure function of the forest's
        structure — independent of the order in which nodes were added.

        Computed with a Dijkstra-style pass (nodes finalised in nondecreasing
        level order), ``O((nodes + body atoms) log nodes)``.  Nodes whose
        derivation cannot be replayed structurally keep their recorded level
        (this can only happen in hand-built forests, never in forests produced
        by :class:`repro.chase.engine.GuardedChaseEngine`).  Returns the
        number of nodes whose level changed.

        The forest is append-only and levels are only mutated here, so when no
        node was inserted since the previous pass the levels are already
        canonical and the call returns immediately — incremental callers (the
        agenda-based engine recomputes after every saturation) pay nothing for
        already-canonical forests.
        """
        count = len(self._nodes)
        if count == self._canonical_upto:
            return 0
        if count == 0:
            return 0
        # The prerequisites of each non-root node: its parent plus the distinct
        # positive body atoms of its edge rule other than the parent's label
        # (the guard instance; its atom-level never exceeds the parent's).
        sides: list[tuple[Atom, ...]] = []
        for node in self._nodes:
            if node.parent is None:
                sides.append(())
                continue
            parent_label = self._nodes[node.parent].label
            distinct: list[Atom] = []
            seen: set[Atom] = set()
            for atom in node.edge_rule.body_pos:
                if atom != parent_label and atom not in seen:
                    seen.add(atom)
                    distinct.append(atom)
            sides.append(tuple(distinct))

        # Fast path: one forward pass in insertion order (parents always
        # precede their children), taking each side atom's smallest level
        # *seen so far*, then one verification pass against the final
        # per-label minima.  If the verification succeeds, the assignment
        # satisfies the defining equations — whose solution is unique — so it
        # is the canonical one without any heap work.  It fails (and the
        # Dijkstra pass below takes over) exactly when some side atom is only
        # derived by a node inserted after its consumer.
        fast: list[int] = [0] * count
        seen_atom: dict[Atom, int] = {}
        consistent = True
        for node in self._nodes:
            node_id = node.node_id
            if node.parent is None:
                level = 0
            else:
                level = fast[node.parent]
                for atom in sides[node_id]:
                    seen = seen_atom.get(atom)
                    if seen is None:
                        consistent = False
                        break
                    if seen > level:
                        level = seen
                if not consistent:
                    break
                level += 1
            fast[node_id] = level
            previous = seen_atom.get(node.label)
            if previous is None or level < previous:
                seen_atom[node.label] = level
        if consistent:
            for node in self._nodes:
                if node.parent is None:
                    continue
                node_id = node.node_id
                level = fast[node.parent]
                for atom in sides[node_id]:
                    seen = seen_atom[atom]
                    if seen > level:
                        level = seen
                if fast[node_id] != level + 1:
                    consistent = False
                    break
            if consistent:
                changed = 0
                for node_id, level in enumerate(fast):
                    if self._nodes[node_id].level != level:
                        self._nodes[node_id].level = level
                        changed += 1
                self._canonical_upto = count
                return changed

        waiting = [0] * count
        waiters_by_atom: dict[Atom, list[int]] = {}
        final: list[Optional[int]] = [None] * count
        atom_final: dict[Atom, int] = {}
        heap: list[tuple[int, int]] = []
        for node in self._nodes:
            if node.parent is None:
                heap.append((0, node.node_id))
            else:
                waiting[node.node_id] = 1 + len(sides[node.node_id])
                for atom in sides[node.node_id]:
                    waiters_by_atom.setdefault(atom, []).append(node.node_id)
        heapq.heapify(heap)

        def ready(node_id: int) -> None:
            node = self._nodes[node_id]
            level = final[node.parent]
            for atom in sides[node_id]:
                level = max(level, atom_final[atom])
            heapq.heappush(heap, (level + 1, node_id))

        while heap:
            level, node_id = heapq.heappop(heap)
            if final[node_id] is not None:
                continue
            final[node_id] = level
            node = self._nodes[node_id]
            for child_id in node.children:
                waiting[child_id] -= 1
                if waiting[child_id] == 0:
                    ready(child_id)
            if node.label not in atom_final:
                atom_final[node.label] = level
                for waiter_id in waiters_by_atom.get(node.label, ()):
                    waiting[waiter_id] -= 1
                    if waiting[waiter_id] == 0:
                        ready(waiter_id)

        changed = 0
        for node_id, level in enumerate(final):
            if level is not None and self._nodes[node_id].level != level:
                self._nodes[node_id].level = level
                changed += 1
        self._canonical_upto = count
        return changed

    def __repr__(self) -> str:
        return (
            f"ChaseForest({len(self._nodes)} nodes, {len(self._labels)} distinct labels, "
            f"max depth {self.max_depth()})"
        )
