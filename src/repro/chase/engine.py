"""The guarded chase engine: agenda-driven expansion of ``F⁺(P)`` (Sec. 2.5, 3).

The engine materialises a finite, depth-bounded segment of the guarded chase
forest of ``P = D ∪ Σ^f``:

* roots are the database facts (plus ground facts of the Skolemised program);
* for each node ``v`` and each ground instance ``r`` of a Skolemised rule
  whose guard instantiates to ``label(v)`` and whose remaining *positive*
  body atoms all occur as labels of the current forest, a child of ``v``
  labelled ``H(r)`` is added (once per ``(v, r)`` pair), with the edge
  carrying the full rule ``r`` — negative body included — exactly as in the
  construction of ``F⁺(P)``;
* nodes at the configured depth bound are not expanded; they form the
  *frontier* that the Datalog± engine inspects for its convergence test.

Saturation is **agenda-driven** (``saturation="agenda"``, the default): a
worklist of newly inserted forest nodes is drained node by node, and each
``(node, rule)`` pair whose side atoms are not yet all present registers a
*watched-atom waiter* on its first missing ground side atom (the
Dowling–Gallier discipline of :mod:`repro.lp.fixpoint`, lifted from ground
rules to chase firings).  A node is therefore matched against the rules when
it appears — and again only when a watched atom arrives or the depth bound
rises — instead of being re-scanned against every rule in every breadth-first
round.  The historical round-based scan is retained verbatim as
``saturation="scan"`` (:meth:`GuardedChaseEngine._expand_one_round_scan`); it
reaches the identical least fixpoint and serves as the differential-testing
reference.  The saturated forest within a depth bound is the least fixpoint
of the chase step, so the two modes build bit-identical forests (same node
trees, labels, ground rules, canonical levels) under every agenda ordering.

The expansion is incremental: calling :meth:`GuardedChaseEngine.expand` again
with a larger depth bound continues from the existing forest instead of
rebuilding it (frontier nodes deferred at the old bound are re-enqueued).  A
:class:`~repro.exceptions.GroundingError` from an exhausted node budget is
*resumable*: the agenda retains the unfinished work, and the next
:meth:`expand` call finishes saturation (or re-raises, if the budget is still
too small) before doing anything else.

With a :class:`~repro.chase.segments.SegmentStore` attached (``segment_cache``),
expansion additionally *splices* memoized subtrees under nodes whose canonical
atom shape was expanded before — by this engine, at a smaller depth, or by any
previous engine over the same rule set — instead of re-deriving them through
rule matching, and records newly saturated subtrees back into the store.  The
spliced nodes are fed straight into the agenda through the forest's
change-notification hooks (:meth:`repro.chase.forest.ChaseForest.add_listener`),
so post-splice saturation only inspects the spliced frontier instead of
re-scanning the forest; the resulting forest is bit-identical to the one
built without the cache (see :mod:`repro.chase.segments` for the argument).
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Optional, Sequence, Union

from ..exceptions import GroundingError, NotGuardedError
from ..lang.atoms import Atom
from ..lang.program import Database, NormalProgram
from ..lang.rules import NormalRule
from ..lang.substitution import Substitution, match
from ..lang.terms import Constant
from .forest import ChaseForest, ChaseNode
from .segments import (
    CachedSegment,
    SegmentStore,
    canonical_rule_order,
    shared_segment_store,
)
from .types import context_part_key, shape_key

__all__ = ["GuardedChaseEngine", "chase_forest"]

#: Outcomes of :meth:`GuardedChaseEngine._place_one_derivation`, the shared
#: placement core of the validated and memoised splice paths.
_PLACE_PLACED = "placed"
_PLACE_DEPTH_CUT = "depth-cut"
_PLACE_SIDE_MISSING = "side-missing"
_PLACE_ALREADY_APPLIED = "already-applied"


class _PreparedRule:
    """A Skolemised rule with its guard singled out for efficient matching."""

    __slots__ = ("rule", "guard", "other_pos", "other_indices", "seq", "fully_bound")

    def __init__(self, rule: NormalRule, *, require_guarded: bool = True, seq: int = 0):
        self.rule = rule
        self.guard = _find_guard(rule, require_guarded=require_guarded)
        self.other_pos = tuple(a for a in rule.body_pos if a is not self.guard)
        #: positions of the non-guard atoms within body_pos: a ground instance's
        #: side atoms can be read off its body without any substitution
        self.other_indices = tuple(
            i for i, a in enumerate(rule.body_pos) if a is not self.guard
        )
        #: position of the rule in the engine's rule list (memo keys)
        self.seq = seq
        #: does the guard bind every rule variable?  Then a guard match fully
        #: determines the ground instance — at most one firing per node — and
        #: the engine can memoize decided (node, rule) pairs across rounds.
        self.fully_bound = rule.variables() <= self.guard.variables()


def _find_guard(rule: NormalRule, *, require_guarded: bool = True) -> Atom:
    """The guard of a Skolemised guarded rule.

    After Skolemisation the universally quantified variables of the original
    NTGD are exactly the variables of the rule, so the guard is a positive
    body atom containing all of them.  The first such atom (in body order) is
    chosen, matching :meth:`repro.lang.rules.NTGD.guard`.

    With ``require_guarded=False`` (experimentation mode — the paper's
    decidability results do not apply), an unguarded rule falls back to the
    positive body atom covering the most variables; the chase still requires
    every body atom to match existing labels, so derivations remain correct,
    only the forest-locality guarantees are lost.
    """
    all_variables = rule.variables()
    for atom in rule.body_pos:
        if all_variables <= atom.variables():
            return atom
    if require_guarded:
        raise NotGuardedError(f"rule {rule} has no guard atom")
    return max(rule.body_pos, key=lambda atom: len(atom.variables()))


class GuardedChaseEngine:
    """Incrementally expands the guarded chase forest of ``D ∪ Σ^f``.

    Parameters
    ----------
    skolemized_program:
        The functional transformation ``Σ^f`` as a :class:`NormalProgram` (or
        any iterable of Skolemised :class:`NormalRule`).  Every non-fact rule
        must be guarded.
    database:
        The database ``D`` (an iterable of ground atoms or a :class:`Database`).
    max_nodes:
        Safety budget: expansion raises :class:`GroundingError` if the forest
        would exceed this many nodes (default one million).
    segment_cache:
        ``True`` to memoize saturated subtrees by canonical atom shape in the
        persistent per-fingerprint store
        (:func:`repro.chase.segments.shared_segment_store`), or an explicit
        :class:`~repro.chase.segments.SegmentStore` to use instead.  The
        store is consulted and fed by :meth:`expand`.  Caching is declined
        (``cache_stats["disabled_reason"]`` says why, and no registry entry
        is created) when some rule's guard does not bind every rule variable
        (possible only with ``require_guarded=False``), because then a firing
        is no longer determined by the guard match alone.
    saturation:
        ``"agenda"`` (default) drains the incremental worklist described in
        the module docstring; ``"scan"`` runs the historical breadth-first
        re-scan rounds.  Both reach the identical least fixpoint — ``"scan"``
        exists as the differential-testing reference and for the benchmark
        baseline.
    agenda_order:
        Optional scheduling hook for the agenda (testing): a callable that,
        given the current agenda length ``n``, returns the index (``0 ≤ i <
        n``) of the entry to process next.  ``None`` (default) pops from the
        end.  The saturated forest is the same under every ordering — the
        property suite exercises random orderings to prove exactly that.
    """

    def __init__(
        self,
        skolemized_program: NormalProgram | Iterable[NormalRule],
        database: Database | Iterable[Atom],
        *,
        max_nodes: int = 1_000_000,
        require_guarded: bool = True,
        segment_cache: Union[SegmentStore, bool, None] = None,
        saturation: str = "agenda",
        agenda_order: Optional[Callable[[int], int]] = None,
        workers: int = 1,
    ):
        if saturation not in ("agenda", "scan"):
            raise ValueError(f"saturation must be 'agenda' or 'scan', got {saturation!r}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.forest = ChaseForest()
        self.max_nodes = max_nodes
        self.saturation = saturation
        self.agenda_order = agenda_order
        #: worker budget for :meth:`_expand_parallel` (1 = always serial)
        self.workers = workers
        self._require_guarded = require_guarded
        self._rules: list[_PreparedRule] = []
        self._rules_by_guard_pred: dict[str, list[_PreparedRule]] = {}

        fact_atoms: list[Atom] = []
        for rule in skolemized_program:
            if rule.is_fact():
                if rule.is_ground():
                    fact_atoms.append(rule.head)
                continue
            prepared = _PreparedRule(
                rule, require_guarded=require_guarded, seq=len(self._rules)
            )
            self._rules.append(prepared)
            self._rules_by_guard_pred.setdefault(prepared.guard.predicate, []).append(prepared)

        # Predicates occurring in non-guard positive body atoms: only labels
        # of these predicates can enable or disable a chase firing, so they
        # are what segment-key contexts and splice watchers track.  (Computed
        # before the forest listener is installed — the listener maintains the
        # side-relevant label index from the first fact on.)
        self._side_predicates: frozenset[str] = frozenset(
            atom.predicate for p in self._rules for atom in p.other_pos
        )
        # Every constant a side atom instance can mention: constants written
        # in the side-atom patterns themselves, plus constants written in rule
        # *heads* — a head constant enters spliced labels without being
        # inherited from the splice root's domain or being a fresh null, so
        # side atoms over it would be invisible to a root-domain-only context.
        # Folding these constants into every context (and into the watcher
        # wake path) closes that hole.
        self._side_constants: frozenset = frozenset(
            arg
            for p in self._rules
            for atom in (p.rule.head, *p.other_pos)
            for arg in atom.args
            if isinstance(arg, Constant)
        )
        # Live index of side-relevant labels by argument term (plus the
        # nullary ones); consulted by the per-node segment-key context.
        self._side_labels_by_term: dict = {}
        self._side_nullary: set[Atom] = set()
        # Splice watchers: wake-once subscriptions that re-enqueue a certified
        # spliced subtree when a new side-relevant label lands on its terms.
        self._watches: dict[int, tuple[frozenset, list[int]]] = {}
        self._watch_by_term: dict = {}
        self._watch_counter = 0
        # Per-label segment-key cache: the context part of a key is stable
        # until a new side-relevant label lands on the label's terms, so
        # recomputing it for every hostable node on every expansion (the
        # `_record_segments` key scan) is pure waste.  Invalidated through
        # the same side-label bookkeeping the splice watchers use
        # (:meth:`_invalidate_key_cache` from :meth:`_on_node_added`), and
        # initialised before the forest listener is installed — the listener
        # consults it from the very first fact.
        self._key_cache: dict[Atom, tuple] = {}
        self._key_cache_by_term: dict = {}
        # While True (inside _instantiate_segment), newly inserted nodes are
        # *not* self-enqueued: the splice decides which placed nodes need
        # processing (frontier, voided certificates) — that is the whole point
        # of certified splicing.  Label indexing and waiter wake-ups still run.
        self._suppress_agenda = False

        # -- agenda state ------------------------------------------------------
        # The worklist of node ids to (re)consider as guard hosts, with a
        # membership set so a node is queued at most once at a time.
        self._agenda: list[int] = []
        self._in_agenda: set[int] = set()
        # Nodes that reached the depth bound before they could host children;
        # re-enqueued when the bound rises (iterative deepening).
        self._deferred: list[int] = []
        self._in_deferred: set[int] = set()
        # Watched-atom waiters: ground side atom -> nodes whose pending rule
        # firings are blocked on it becoming a label.  When the atom arrives,
        # the nodes re-enter the agenda (and re-derive or re-watch).
        self._atom_waiters: dict[Atom, set[int]] = {}
        # Predicate-level subscriptions for rules whose guard does not bind
        # every variable (require_guarded=False only): their side atoms are
        # non-ground under the guard match, so any new label of the right
        # predicate may complete a join.
        self._pred_waiters: dict[str, set[int]] = {}
        # Live predicate -> labels index used by the non-fully-bound join.
        self._label_index: dict[str, list[Atom]] = {}
        # False while a saturation pass is incomplete (in progress, cut short
        # by max_rounds, or aborted by a GroundingError); expand() resumes an
        # unsaturated pass before honouring new depth requests.
        self._saturated = True
        self.forest.add_listener(self._on_node_added)

        for atom in fact_atoms:
            self._add_fact(atom)

        # Decided (node_id, rule seq) pairs for fully-bound rules: the pair
        # either fired (its unique ground instance is in the forest) or its
        # guard can never match the node's label.  Agenda re-processing (a
        # node woken by a watched atom, or re-enqueued after a budget failure)
        # and scan rounds both skip decided pairs without re-instantiating the
        # rule, which keeps re-visits near-free.
        self._decided: set[tuple[int, int]] = set()

        for atom in database:
            self._add_fact(atom)

        #: depth bound in effect after the last call to :meth:`expand`
        self.depth_bound = 0
        #: number of expansion rounds performed so far
        self.rounds = 0

        # -- segment cache wiring ----------------------------------------------
        #: counters of this engine's cache traffic (hits/misses are per lookup,
        #: ``nodes_spliced`` counts children placed without rule matching)
        self.cache_stats = {
            "enabled": False,
            "hits": 0,
            "misses": 0,
            "splices": 0,
            "nodes_spliced": 0,
            "segments_recorded": 0,
        }
        self._segment_store: Optional[SegmentStore] = None
        self._canonical_rules: list[_PreparedRule] = []
        self._canonical_index: dict[NormalRule, int] = {}
        self._rules_by_structure: dict[tuple, list[_PreparedRule]] = {}
        # Memos keyed by immutable values: label shapes recur across nodes and
        # (parent label, ground rule) pairs recur across re-recordings.  (Only
        # the context-free *shape* part of a segment key is memoizable: the
        # context part grows with the forest.)
        self._shape_memo: dict[Atom, tuple] = {}
        self._derivation_memo: dict[tuple[Atom, NormalRule], Optional[int]] = {}
        # Segment keys that were looked up and missed: recording is
        # demand-driven — only keys something actually asked for (plus the
        # current frontier, which the next deepening step will ask for) are
        # worth extracting.
        self._missed_keys: set[tuple] = set()
        # The pre-saturation lookup key of each label that missed: compared
        # against the post-saturation key at recording time to detect *cold
        # context-sensitive keys* (a context that only materialises during
        # saturation) and double-key such segments via a store alias.
        self._miss_key_by_label: dict[Atom, tuple] = {}
        # Segment keys that were looked up and hit: checked after saturation
        # for staleness (saturation may have derived more under the spliced
        # root than the stored segment knows, e.g. when the segment was
        # recorded from a database lacking some side atoms).
        self._hit_keys: set[tuple] = set()
        # Note: an explicit store must not go through truthiness — an empty
        # SegmentStore has len() == 0 and would read as "disabled".
        if segment_cache is not None and segment_cache is not False:
            if not all(p.fully_bound for p in self._rules):
                # The shared registry is not consulted either, so unguarded
                # programs cannot evict live stores of cacheable ones.
                self.cache_stats["disabled_reason"] = (
                    "some rule's guard does not bind every rule variable"
                )
            else:
                self._segment_store = (
                    segment_cache
                    if isinstance(segment_cache, SegmentStore)
                    else shared_segment_store(
                        (p.rule for p in self._rules), require_guarded=require_guarded
                    )
                )
                self.cache_stats["enabled"] = True
        if self._segment_store is not None:
            # Cached segments refer to rules by index in the canonical ordering
            # so that every engine sharing a store agrees on what an index means.
            canonical = canonical_rule_order(p.rule for p in self._rules)
            self._canonical_index = {rule: index for index, rule in enumerate(canonical)}
            by_rule: dict[NormalRule, _PreparedRule] = {}
            for prepared in self._rules:
                by_rule.setdefault(prepared.rule, prepared)
            self._canonical_rules = [by_rule[rule] for rule in canonical]
            # Ground edge rules are attributed to their source rule by structure
            # first (head/body predicates), so recording tries one or two
            # candidates instead of every rule sharing the guard predicate.
            for prepared in self._rules:
                self._rules_by_structure.setdefault(
                    _rule_structure(prepared.rule), []
                ).append(prepared)

    @property
    def segment_store(self) -> Optional[SegmentStore]:
        """The attached segment store, or ``None`` when caching is off."""
        return self._segment_store

    def _add_fact(self, atom: Atom) -> None:
        """Add a root node for a fact unless one with that label already exists."""
        if not self.forest.has_label(atom) or not any(
            n.is_root() and n.label == atom for n in self.forest.nodes_with_label(atom)
        ):
            self.forest.add_root(atom)

    # -- expansion ------------------------------------------------------------------

    def expand(self, max_depth: int, *, max_rounds: Optional[int] = None) -> bool:
        """Expand the forest up to tree depth *max_depth*.

        Nodes at depth ``max_depth`` are not given children.  Returns ``True``
        if at least one node was added.  Expansion always runs to saturation
        within the depth bound (unless *max_rounds* cuts it short).

        With a segment cache attached, memoized subtrees are spliced in first
        (see :meth:`_splice_from_cache`); the agenda (or the scan rounds) then
        adds whatever the cache could not provide and certifies quiescence, so
        the final forest is identical either way.  After saturation, node
        levels are restored to their canonical derivation stages
        (:meth:`ChaseForest.recompute_levels`) and newly saturated subtrees
        are recorded back into the store.  Splicing and recording are skipped
        under a *max_rounds* cutoff: an unsaturated forest must not populate
        the store, and a partial expansion has no quiescence certificate.
        (*max_rounds* counts breadth-first scan rounds, so it always runs the
        scan path regardless of the engine's saturation mode.)

        An unfinished saturation pass — a previous call raised
        :class:`GroundingError`, or was cut short by *max_rounds* — is
        resumed first, even when *max_depth* is below the committed depth
        bound: the forest must never be observed unsaturated within its
        bound.  A resumed pass re-raises if the node budget is still too
        small, and completes normally after :attr:`max_nodes` is raised.

        Raises
        ------
        GroundingError
            If the node budget is exceeded.  The exception is resumable (see
            above): the agenda keeps the pending work.
        """
        if max_depth < self.depth_bound and self._saturated:
            # the forest is already expanded and saturated beyond this bound
            return False
        if max_depth > self.depth_bound:
            self.depth_bound = max_depth
            self._wake_deferred()
        max_depth = self.depth_bound
        if max_rounds is None and self._parallel_eligible():
            return self._expand_parallel(max_depth)
        use_cache = self._segment_store is not None and max_rounds is None
        size_before = len(self.forest)
        self._saturated = False
        if use_cache:
            self._splice_from_cache(max_depth)
        if self.saturation == "scan" or max_rounds is not None:
            changed = True
            rounds_here = 0
            while changed:
                if max_rounds is not None and rounds_here >= max_rounds:
                    break
                changed = self._expand_one_round_scan(max_depth)
                rounds_here += 1
                self.rounds += 1
            self._saturated = not changed
        else:
            self._drain_agenda()
            self._saturated = True
        added_any = len(self.forest) > size_before
        if added_any:
            self.forest.recompute_levels()
        if use_cache and self._saturated:
            self._record_segments(max_depth)
        return added_any

    # -- parallel expansion over independent root subtrees ------------------------

    def _parallel_eligible(self) -> bool:
        """Whether :meth:`expand` may shard the roots across a worker pool.

        Sharding is sound exactly when every chase firing is a function of
        its host node's label alone: all guards bind every rule variable
        (``fully_bound``) and no rule has side atoms (non-guard positive body
        atoms), so a root's subtree depends only on the root label and the
        depth bound — never on labels derived under other roots.  (Negative
        body atoms never block firings in ``F⁺(P)``; they ride along on the
        edges.)  Under those conditions independent root subtrees can be
        derived by isolated engines and merged; otherwise we fall back to the
        serial agenda, which remains the differential oracle.
        """
        return (
            self.workers > 1
            and self.saturation == "agenda"
            and not self._side_predicates
            and all(p.fully_bound for p in self._rules)
            and len(self.forest.roots()) >= 2
        )

    def _expand_parallel(self, max_depth: int) -> bool:
        """Expand via the ready-set scheduler: one shard engine per root group.

        Roots are dealt round-robin into at most :attr:`workers` shards (in
        root insertion order, so the grouping is deterministic).  Each shard
        is a fresh serial :class:`GuardedChaseEngine` over the same rules
        whose database is just the shard's root labels; shards run through
        :func:`repro.lp.parallel.run_ready_set` with an empty dependency map
        (root subtrees are independent — that is what
        :meth:`_parallel_eligible` certifies) on a thread pool (engines do
        not pickle).  The coordinator then merges the shard forests back in
        shard order: a shard edge ``(parent, ground rule)`` already applied
        in the main forest maps onto the existing child, otherwise the child
        is copied over.  Shard expansion is deterministic given the root
        labels, and the merge walks shard nodes in insertion order (parents
        first), so the merged forest — after the canonical
        :meth:`~repro.chase.forest.ChaseForest.recompute_levels` pass — is
        bit-identical to the serial result for any worker count.

        Frontier nodes (depth == bound) are re-deferred so iterative
        deepening keeps working; the agenda is cleared (the merge saturates
        every node below the bound).  The node budget is enforced per shard
        and re-checked on the merged total; both failure modes raise the same
        resumable :class:`~repro.exceptions.GroundingError` as serial
        expansion (``_saturated`` stays ``False`` and the next
        :meth:`expand` call retries).
        """
        from ..lp.parallel import run_ready_set

        size_before = len(self.forest)
        self._saturated = False
        roots = self.forest.roots()
        rules = [p.rule for p in self._rules]
        shard_count = min(self.workers, len(roots))
        groups: list[list[Atom]] = [[] for _ in range(shard_count)]
        for position, root in enumerate(roots):
            groups[position % shard_count].append(root.label)

        def build_and_expand(labels: list[Atom]) -> "GuardedChaseEngine":
            shard = GuardedChaseEngine(
                rules,
                labels,
                max_nodes=self.max_nodes,
                require_guarded=self._require_guarded,
                segment_cache=None,
                saturation="agenda",
            )
            shard.expand(max_depth)
            return shard

        order = list(range(shard_count))
        shards = run_ready_set(
            order,
            {index: () for index in order},
            lambda index, results: ("call", build_and_expand, (groups[index],)),
            workers=self.workers,
            executor_kind="thread",
        )

        self._suppress_agenda = True
        try:
            for index in order:
                self._merge_shard_forest(shards[index])
        finally:
            self._suppress_agenda = False

        added_any = len(self.forest) > size_before
        if added_any:
            self.forest.recompute_levels()
        # The merge saturated everything below the bound: retire the agenda
        # and rebuild the deferred frontier from the forest itself.
        self._agenda.clear()
        self._in_agenda.clear()
        self._deferred = [
            node.node_id for node in self.forest.nodes() if node.depth >= max_depth
        ]
        self._in_deferred = set(self._deferred)
        self._saturated = True
        if len(self.forest) > self.max_nodes:
            self._saturated = False
            raise GroundingError(
                f"chase forest exceeded max_nodes={self.max_nodes} "
                f"(reached {len(self.forest)} after parallel merge); "
                "raise the budget and call expand() again to resume"
            )
        return added_any

    def _merge_shard_forest(self, shard: "GuardedChaseEngine") -> None:
        """Graft one shard forest onto the main forest (idempotent diff-copy).

        Shard roots map onto the main roots with the same label (the shard's
        database was exactly those labels).  Every other shard node is matched
        through its parent: if the main forest already applied the node's
        ground ``edge_rule`` at the mapped parent, the existing child is
        reused; otherwise the child is copied with its shard level (levels are
        recomputed canonically afterwards anyway).  Walking ``nodes()`` in
        insertion order guarantees parents are mapped before children.
        """
        forest = self.forest
        mapping: dict[int, int] = {}
        for shard_node in shard.forest.nodes():
            if shard_node.is_root():
                main_root = next(
                    node
                    for node in forest.nodes_with_label(shard_node.label)
                    if node.is_root()
                )
                mapping[shard_node.node_id] = main_root.node_id
                continue
            parent_id = mapping[shard_node.parent]
            rule = shard_node.edge_rule
            if forest.was_applied(parent_id, rule):
                existing = next(
                    child
                    for child in forest.children(parent_id)
                    if child.edge_rule == rule
                )
                mapping[shard_node.node_id] = existing.node_id
            else:
                created = forest.add_child(
                    parent_id, shard_node.label, rule, shard_node.level
                )
                mapping[shard_node.node_id] = created.node_id

    # -- agenda-driven saturation -------------------------------------------------

    def _on_node_added(self, node: ChaseNode, is_new_label: bool) -> None:
        """Forest change hook: feed insertions into the agenda and wake waiters.

        Every new node enters the agenda (it may host firings); a node whose
        label is new to the forest additionally extends the live predicate
        index and wakes the waiters watching that atom (fully-bound rules) or
        its predicate (non-fully-bound rules).  Splices, facts added at
        construction and ordinary firings all flow through here — the agenda
        never needs a forest re-scan to find new work.  A pure scan-mode
        engine skips the agenda bookkeeping entirely (its rounds re-visit
        every node anyway, and an agenda nobody drains would just leak), so
        the retained baseline stays the historical code path.
        """
        node_id = node.node_id
        if (
            self.saturation == "agenda"
            and not self._suppress_agenda
            and node_id not in self._in_agenda
        ):
            self._in_agenda.add(node_id)
            self._agenda.append(node_id)
        if is_new_label:
            label = node.label
            self._label_index.setdefault(label.predicate, []).append(label)
            waiters = self._atom_waiters.pop(label, None)
            if waiters:
                self._enqueue_all(waiters)
            subscribers = self._pred_waiters.get(label.predicate)
            if subscribers:
                self._enqueue_all(subscribers)
            if label.predicate in self._side_predicates:
                if label.args:
                    for term in set(label.args):
                        self._side_labels_by_term.setdefault(term, []).append(label)
                else:
                    self._side_nullary.add(label)
                self._invalidate_key_cache(label)
                if self._watches:
                    self._fire_watches(label)

    def _fire_watches(self, label: Atom) -> None:
        """Wake certified spliced subtrees a new side-relevant label may affect.

        A subtree is woken when the label shares a term with it (or has no
        discriminating terms at all: nullary labels and labels purely over
        rule constants touch every domain).  Waking conservatively re-enqueues
        every node of the subtree — processing is idempotent, and the precise
        per-atom waiters take over from there — and the watch is dropped
        (wake-once).
        """
        if not label.args or all(arg in self._side_constants for arg in label.args):
            woken = list(self._watches.keys())
        else:
            woken_set: set[int] = set()
            for term in set(label.args):
                woken_set.update(self._watch_by_term.get(term, ()))
            woken = list(woken_set)
        for watch_id in woken:
            terms, node_ids = self._watches.pop(watch_id)
            for term in terms:
                ids = self._watch_by_term.get(term)
                if ids is not None:
                    ids.discard(watch_id)
                    if not ids:
                        del self._watch_by_term[term]
            self._enqueue_all(node_ids)

    def _enqueue_all(self, node_ids: Iterable[int]) -> None:
        """Re-enqueue a batch of nodes (deduplicated against the agenda).

        A no-op on pure scan-mode engines: their rounds re-visit every node
        anyway, and an agenda nobody drains would only accumulate.
        """
        if self.saturation == "scan":
            return
        agenda, in_agenda = self._agenda, self._in_agenda
        for node_id in node_ids:
            if node_id not in in_agenda:
                in_agenda.add(node_id)
                agenda.append(node_id)

    def _wake_deferred(self) -> None:
        """Move frontier nodes deferred at the old depth bound back to the agenda."""
        if not self._deferred:
            return
        self._enqueue_all(self._deferred)
        self._deferred.clear()
        self._in_deferred.clear()

    def _drain_agenda(self) -> None:
        """Process agenda entries until quiescence (the least fixpoint).

        The invariant on entry to every iteration: each applicable-but-unfired
        ``(node, rule)`` pair either has its node in the agenda, or is blocked
        on a watched atom (``_atom_waiters``/``_pred_waiters``) that is not a
        label yet, or its node sits at the depth bound (``_deferred``).  An
        empty agenda therefore certifies quiescence: the remaining pairs
        cannot fire until a new label arrives (impossible without firings) or
        the bound rises (handled by :meth:`expand`).
        """
        agenda, in_agenda = self._agenda, self._in_agenda
        pick = self.agenda_order
        while agenda:
            if pick is None:
                node_id = agenda.pop()
            else:
                node_id = agenda.pop(pick(len(agenda)) % len(agenda))
            in_agenda.discard(node_id)
            self._process_node(node_id)

    def _process_node(self, node_id: int) -> None:
        """Fire every applicable (node, ground rule) pair at one node.

        Pairs whose side atoms are missing register a waiter on the first
        missing atom and retire until it arrives; decided pairs and already
        applied ground rules are skipped, so re-processing a woken node only
        pays for its genuinely undecided rules.
        """
        forest = self.forest
        node = forest.node(node_id)
        if node.depth >= self.depth_bound:
            if node_id not in self._in_deferred:
                self._in_deferred.add(node_id)
                self._deferred.append(node_id)
            return
        label = node.label
        decided = self._decided
        labels = forest.labels_live()
        for prepared in self._rules_by_guard_pred.get(label.predicate, ()):
            seq = prepared.seq
            if prepared.fully_bound and (node_id, seq) in decided:
                continue
            guard_match = match(prepared.guard, label)
            if guard_match is None:
                if prepared.fully_bound:
                    # labels never change: this pair can never fire
                    decided.add((node_id, seq))
                continue
            if prepared.fully_bound:
                missing = None
                for atom in prepared.other_pos:
                    grounded = guard_match.apply_atom(atom)
                    if grounded not in labels:
                        missing = grounded
                        break
                if missing is not None:
                    self._atom_waiters.setdefault(missing, set()).add(node_id)
                    continue
                ground_rule = _instantiate(prepared.rule, guard_match)
                if forest.was_applied(node_id, ground_rule):
                    decided.add((node_id, seq))
                    continue
                self._budget_guard((node_id,))
                forest.add_child(node_id, ground_rule.head, ground_rule, node.level + 1)
                decided.add((node_id, seq))
            else:
                # Experimentation mode (require_guarded=False): side atoms may
                # stay non-ground under the guard match, so joins run against
                # the live label index and the node subscribes to the side
                # predicates — any later label of those predicates may extend
                # the join.  A side atom that is *ground* under the guard
                # match but not a label yet blocks every join outright, so it
                # gets a precise watched-atom waiter instead (exactly as on
                # the fully-bound path) — without it the node would never be
                # rewoken when the atom arrives.
                for atom in prepared.other_pos:
                    grounded = guard_match.apply_atom(atom)
                    if not grounded.is_ground():
                        self._pred_waiters.setdefault(atom.predicate, set()).add(node_id)
                    elif grounded not in labels:
                        self._atom_waiters.setdefault(grounded, set()).add(node_id)
                for full_match in _match_remaining(
                    prepared.other_pos, self._label_index, labels, guard_match
                ):
                    ground_rule = _instantiate(prepared.rule, full_match)
                    if forest.was_applied(node_id, ground_rule):
                        continue
                    self._budget_guard((node_id,))
                    forest.add_child(node_id, ground_rule.head, ground_rule, node.level + 1)

    def _budget_guard(self, requeue: Iterable[int]) -> None:
        """Raise (resumably) if adding one more node would exceed the budget.

        *requeue* — the node being processed, or the nodes a splice has placed
        so far — re-enters the agenda first, so the work that was about to
        happen is retried (not lost) when a later :meth:`expand` call resumes
        with a larger :attr:`max_nodes`.
        """
        if len(self.forest) + 1 > self.max_nodes:
            self._enqueue_all(requeue)
            raise GroundingError(
                f"chase forest would exceed the node budget of {self.max_nodes}; "
                "lower the depth bound or raise max_nodes"
            )

    # -- the retained breadth-first reference ------------------------------------

    def _expand_one_round_scan(self, max_depth: int) -> bool:
        """One breadth-first round: fire every applicable (node, ground rule) pair.

        This is the historical round-based saturation step, retained verbatim
        as the ``saturation="scan"`` reference: the differential suites assert
        that agenda-driven saturation reaches the bit-identical least fixpoint.
        """
        labels = self.forest.labels()
        label_index = _index_by_predicate(labels)
        level = self.rounds + 1
        new_children: list[tuple[int, Atom, NormalRule]] = []

        decided = self._decided
        fired: list[tuple[int, int]] = []
        for node in list(self.forest.nodes()):
            if node.depth >= max_depth:
                continue
            node_id = node.node_id
            for prepared in self._rules_by_guard_pred.get(node.label.predicate, ()):
                if prepared.fully_bound and (node_id, prepared.seq) in decided:
                    continue
                guard_match = match(prepared.guard, node.label)
                if guard_match is None:
                    if prepared.fully_bound:
                        # labels never change: this pair can never fire
                        decided.add((node_id, prepared.seq))
                    continue
                for full_match in _match_remaining(
                    prepared.other_pos, label_index, labels, guard_match
                ):
                    ground_rule = _instantiate(prepared.rule, full_match)
                    if self.forest.was_applied(node_id, ground_rule):
                        if prepared.fully_bound:
                            decided.add((node_id, prepared.seq))
                        continue
                    new_children.append((node_id, ground_rule.head, ground_rule))
                    if prepared.fully_bound:
                        fired.append((node_id, prepared.seq))

        if not new_children:
            return False
        if len(self.forest) + len(new_children) > self.max_nodes:
            raise GroundingError(
                f"chase forest would exceed the node budget of {self.max_nodes}; "
                "lower the depth bound or raise max_nodes"
            )
        for parent_id, head, rule in new_children:
            # Re-check: the same (parent, rule) pair may have been queued once only,
            # but defensive duplicate checks keep the forest well-formed.
            if not self.forest.was_applied(parent_id, rule):
                self.forest.add_child(parent_id, head, rule, level)
        decided.update(fired)
        return True

    # -- segment cache: splice-in -----------------------------------------------

    def _shape(self, label: Atom) -> tuple:
        """Memoized canonical shape of a node label (the context-free key part)."""
        shape = self._shape_memo.get(label)
        if shape is None:
            shape = shape_key(label)
            self._shape_memo[label] = shape
        return shape

    def _context_atoms(self, label: Atom) -> list[Atom]:
        """The side-relevant labels over ``dom(label)`` (plus rule constants).

        These are exactly the forest atoms that can serve as a side atom of a
        fully-bound rule fired at a node with this label or below it (side
        atoms of fully-bound rules are ground instances over the guard's
        terms, plus any constants written in the rule itself).  They form the
        context part of the segment key: two nodes agreeing on shape *and*
        context have identical firing environments for every inherited term.
        """
        if not self._side_predicates:
            return []
        terms = set(label.args) | self._side_constants
        found = set(self._side_nullary)
        by_term = self._side_labels_by_term
        for term in terms:
            for atom in by_term.get(term, ()):
                if atom not in found and all(arg in terms for arg in atom.args):
                    found.add(atom)
        return list(found)

    def _segment_key_uncached(self, label: Atom) -> tuple:
        """The full segment key of a label: canonical shape plus context part."""
        context = self._context_atoms(label)
        if not context:
            return (self._shape(label), ())
        return (self._shape(label), context_part_key(label, context))

    def _segment_key(self, label: Atom) -> tuple:
        """The segment key of a label, cached until its context can change.

        A label's context part only grows when a new side-relevant label
        lands on its terms (or on the rule constants every context includes)
        — exactly the event :meth:`_on_node_added` already tracks for the
        splice watchers, which is where :meth:`_invalidate_key_cache` drops
        the affected entries.  The hypothesis suite asserts cached keys equal
        the recomputed ones (:meth:`_segment_key_uncached`) after arbitrary
        expansions.
        """
        key = self._key_cache.get(label)
        if key is None:
            key = self._segment_key_uncached(label)
            self._key_cache[label] = key
            by_term = self._key_cache_by_term
            for term in set(label.args):
                by_term.setdefault(term, set()).add(label)
        return key

    def _invalidate_key_cache(self, label: Atom) -> None:
        """Drop cached segment keys the new side-relevant *label* may extend.

        A context over ``dom(a)`` gains the new label only when every one of
        its arguments lies in ``dom(a)`` plus the rule constants, so it
        suffices to drop the labels sharing one of its argument terms — and
        to drop everything when the label has no discriminating terms at all
        (nullary, or arguments purely over rule constants), mirroring the
        conservative wake rule of :meth:`_fire_watches`.
        """
        cache = self._key_cache
        if not cache:
            return
        if not label.args or all(arg in self._side_constants for arg in label.args):
            cache.clear()
            self._key_cache_by_term.clear()
            return
        by_term = self._key_cache_by_term
        for term in set(label.args):
            for cached in by_term.pop(term, ()):
                if cache.pop(cached, None) is None:
                    continue  # already dropped via an earlier term this round
                # unregister the dropped label from its other terms' buckets
                # (mirroring _fire_watches) so dead entries cannot accumulate
                for other in set(cached.args):
                    if other == term:
                        continue
                    bucket = by_term.get(other)
                    if bucket is not None:
                        bucket.discard(cached)
                        if not bucket:
                            del by_term[other]

    def _splice_from_cache(self, max_depth: int) -> bool:
        """Instantiate cached segments under every unexpanded matching node.

        Worklist over childless nodes below the depth bound; nodes spliced in
        are fed back so that a segment's frontier can itself hit the cache
        (this is how iterative deepening descends through repeated types
        without ever re-matching rules).  Returns ``True`` if nodes were added.
        """
        store = self._segment_store
        forest = self.forest
        hostable = self._rules_by_guard_pred
        added = False
        # Nodes whose label predicate guards no rule can never have children,
        # so neither looking them up nor recording them can ever pay off.
        worklist = [
            node.node_id
            for node in forest.nodes()
            if not node.children
            and node.depth < max_depth
            and node.label.predicate in hostable
        ]
        while worklist:
            node_id = worklist.pop()
            node = forest.node(node_id)
            if node.children or node.depth >= max_depth:
                continue
            key = self._segment_key(node.label)
            segment = store.lookup(key)
            if segment is None:
                self.cache_stats["misses"] += 1
                self._missed_keys.add(key)
                self._miss_key_by_label.setdefault(node.label, key)
                continue
            self.cache_stats["hits"] += 1
            self._hit_keys.add(key)
            created = self._instantiate_segment(node_id, key, segment, max_depth)
            if not created:
                continue
            added = True
            self.cache_stats["splices"] += 1
            self.cache_stats["nodes_spliced"] += len(created)
            for child_id in created:
                child = forest.node(child_id)
                if (
                    not child.children
                    and child.depth < max_depth
                    and child.label.predicate in hostable
                ):
                    worklist.append(child_id)
        return added

    def _instantiate_segment(
        self, root_id: int, key: tuple, segment: CachedSegment, max_depth: int
    ) -> list[int]:
        """Replay a cached segment under *root_id*, renaming nulls by substitution.

        Every derivation is re-validated before being placed: the rule's guard
        is re-matched against the (new) parent label, and the transported side
        atoms must already label the forest — so each placed child is a firing
        the ordinary saturation would also perform, only without the rule
        matching.  Derivations whose side atoms are still missing are retried
        (a cousin placed later in the same splice may provide them); those
        whose parents were dropped, whose guard no longer matches (possible
        when a key collision merged nulls), or that would exceed the depth
        bound are dropped — saturation recovers anything genuinely derivable.

        **Certified placement.**  Placed nodes do *not* individually re-enter
        the agenda.  The segment key matched shape *and* side-atom context, so
        the replay is complete for every interior node — except where one of
        the certificate's premises fails, and exactly those nodes are
        enqueued for ordinary processing:

        * nodes at the segment's recorded frontier (``relative depth ==
          segment.relative_depth``) or at the forest's depth bound — nothing
          below them was recorded / may be placed;
        * parents of dropped or still-pending derivations — their replay is
          incomplete;
        * *every* placed node, when some placed label already existed in the
          forest (a twin subtree may have derived atoms over this subtree's
          nulls that the recording never saw), when the segment referenced a
          rule this engine does not know, or when a ``was_applied`` collision
          mapped a local node onto a pre-existing child.

        Late arrivals are covered separately: a wake-once watcher over the
        subtree's terms re-enqueues all placed nodes if a new side-relevant
        label lands on them (see :meth:`_fire_watches`).  Returns the ids of
        the newly created nodes.

        **Memoized replays.**  Replaying a segment under a given root label is
        deterministic (every substitution is fixed by the labels), so a fully
        placed clean replay is recorded back into the store as ground
        derivations keyed by ``(segment key, root label)``; the next engine
        over the same inputs places the subtree through
        :meth:`_replay_memoised` — side-atom set lookups and node insertion
        only, no substitution machinery.
        """
        forest = self.forest
        root_label = forest.node(root_id).label
        memo = self._segment_store.replay_lookup(key, root_label)
        if memo is not None:
            created = self._replay_memoised(root_id, memo, segment, max_depth)
            if created is not None:
                return created
        placed: dict[int, int] = {0: root_id}
        local_depth: dict[int, int] = {0: 0}
        created: list[int] = []
        memo_entries: list[tuple] = []
        rules = self._canonical_rules
        #: local indices whose own children-replay is incomplete
        flagged: set[int] = set()
        #: certificate void: every placed node must be processed normally
        void = any(rule_index >= len(rules) for _, rule_index in segment.entries)
        # The last element is the forest size at the entry's last failed
        # side-atom check: labels only grow, so while the forest has not
        # grown since, re-validating the same ground atoms cannot succeed
        # and the entry is carried over without rework.
        pending: list[tuple[int, int, int, int]] = [
            (index + 1, parent_local, rule_index, -1)
            for index, (parent_local, rule_index) in enumerate(segment.entries)
            if rule_index < len(rules)
        ]
        self._suppress_agenda = True
        try:
            progress = True
            while pending and progress:
                progress = False
                retry: list[tuple[int, int, int, int]] = []
                dropped: set[int] = set()
                for local_index, parent_local, rule_index, checked_at in pending:
                    parent_id = placed.get(parent_local)
                    if parent_id is None:
                        if parent_local in dropped:
                            dropped.add(local_index)
                        else:
                            retry.append(
                                (local_index, parent_local, rule_index, checked_at)
                            )
                        continue
                    if checked_at == len(forest):
                        retry.append((local_index, parent_local, rule_index, checked_at))
                        continue
                    parent = forest.node(parent_id)
                    # cheap short-circuits before the substitution machinery;
                    # _place_one_derivation re-checks both authoritatively
                    if parent.depth >= max_depth:
                        dropped.add(local_index)
                        continue
                    prepared = rules[rule_index]
                    subst = match(prepared.guard, parent.label)
                    if subst is None:
                        dropped.add(local_index)
                        flagged.add(parent_local)
                        continue
                    side_atoms = tuple(
                        subst.apply_atom(atom) for atom in prepared.other_pos
                    )
                    if any(not forest.has_label(atom) for atom in side_atoms):
                        retry.append((local_index, parent_local, rule_index, len(forest)))
                        continue
                    ground_rule = _instantiate(prepared.rule, subst)
                    status, child_id, void = self._place_one_derivation(
                        parent_id,
                        prepared.seq,
                        ground_rule,
                        side_atoms,
                        created,
                        void,
                        max_depth,
                    )
                    if status is _PLACE_DEPTH_CUT:
                        dropped.add(local_index)
                        continue
                    if status is _PLACE_SIDE_MISSING:
                        retry.append((local_index, parent_local, rule_index, len(forest)))
                        continue
                    if status is _PLACE_ALREADY_APPLIED:
                        for sibling in forest.children(parent_id):
                            if sibling.edge_rule == ground_rule:
                                placed[local_index] = sibling.node_id
                                local_depth[local_index] = local_depth[parent_local] + 1
                                break
                        # a pre-existing child is outside this replay's
                        # certificate — treat the whole splice conservatively
                        void = True
                        progress = True
                        continue
                    placed[local_index] = child_id
                    local_depth[local_index] = local_depth[parent_local] + 1
                    memo_entries.append(
                        (local_index, parent_local, rule_index, ground_rule, side_atoms)
                    )
                    progress = True
                pending = retry
        finally:
            self._suppress_agenda = False
        if pending:
            # still-blocked derivations: their parents' replay is incomplete
            flagged.update(parent_local for _, parent_local, _, _ in pending)
        if created:
            if (
                not void
                and not flagged
                and not pending
                and len(created) == len(segment.entries)
            ):
                # clean, complete replay: memoize the ground derivations —
                # but only against the segment they were derived from (a
                # concurrent engine may have re-recorded the key meanwhile)
                self._segment_store.replay_record(
                    key, root_label, tuple(memo_entries), segment=segment
                )
            self._finish_splice(segment, placed, local_depth, created, flagged, void)
        return created

    def _replay_memoised(
        self, root_id: int, memo: tuple, segment: CachedSegment, max_depth: int
    ) -> Optional[list[int]]:
        """Place a memoized ground replay: set lookups and insertions only.

        The memo's derivations are exact for this (segment key, root label)
        pair, so no substitution runs; each placement still goes through
        :meth:`_place_one_derivation` — the same side-atom, depth-bound,
        duplicate and budget checks as the validated replay.  Any surprise —
        a missing side atom, an already applied derivation — aborts to
        ``None`` after enqueueing the nodes placed so far, and the caller
        falls back to the ordinary validated replay.  Certificate handling
        (frontier and depth-bound enqueueing, twin-label voiding, watcher
        registration) is the same as for a validated replay.
        """
        placed: dict[int, int] = {0: root_id}
        local_depth: dict[int, int] = {0: 0}
        created: list[int] = []
        rules = self._canonical_rules
        void = False
        self._suppress_agenda = True
        try:
            for local_index, parent_local, rule_index, ground_rule, side_atoms in memo:
                if rule_index >= len(rules):  # pragma: no cover - defensive
                    self._enqueue_all(created)
                    return None
                parent_id = placed.get(parent_local)
                if parent_id is None:
                    continue  # parent was cut by the depth bound
                status, child_id, void = self._place_one_derivation(
                    parent_id,
                    rules[rule_index].seq,
                    ground_rule,
                    side_atoms,
                    created,
                    void,
                    max_depth,
                )
                if status is _PLACE_DEPTH_CUT:
                    continue
                if status is not _PLACE_PLACED:
                    # a missing side atom or an already applied derivation:
                    # the memo's premises failed — fall back to validation
                    self._enqueue_all(created)
                    return None
                placed[local_index] = child_id
                local_depth[local_index] = local_depth[parent_local] + 1
        finally:
            self._suppress_agenda = False
        if created:
            self._finish_splice(segment, placed, local_depth, created, set(), void)
        return created

    def _place_one_derivation(
        self,
        parent_id: int,
        rule_seq: int,
        ground_rule: NormalRule,
        side_atoms: Sequence[Atom],
        created: list[int],
        void: bool,
        max_depth: int,
    ) -> tuple[str, Optional[int], bool]:
        """Place one replayed derivation under its (already resolved) parent.

        The shared placement core of the validated
        (:meth:`_instantiate_segment`) and memoised (:meth:`_replay_memoised`)
        splice paths: the depth cut, the side-atom re-validation, duplicate
        (``was_applied``) detection, the resumable budget guard, twin-label
        certificate voiding and the forest/decided/created bookkeeping all
        live here — and only here — so the memoised fast path can never drift
        from the validated one.  Returns ``(status, child_id, void)``; the
        child id is set only for ``_PLACE_PLACED``, and reacting to the other
        outcomes (retry, drop, flag the parent, or abort the whole memo) is
        the caller's policy.
        """
        forest = self.forest
        parent = forest.node(parent_id)
        if parent.depth >= max_depth:
            return _PLACE_DEPTH_CUT, None, void
        if any(not forest.has_label(atom) for atom in side_atoms):
            return _PLACE_SIDE_MISSING, None, void
        if forest.was_applied(parent_id, ground_rule):
            # for fully-bound rules the pair's unique instance is in the
            # forest, so the (parent, rule) pair is decided either way
            self._decided.add((parent_id, rule_seq))
            return _PLACE_ALREADY_APPLIED, None, void
        # resumable: on failure the partially placed subtree is re-enqueued
        # for ordinary saturation under a larger budget
        self._budget_guard(created)
        if not void and forest.has_label(ground_rule.head):
            # a twin subtree may hold atoms over this label's nulls that the
            # recording never saw
            void = True
        child = forest.add_child(
            parent_id, ground_rule.head, ground_rule, parent.level + 1
        )
        self._decided.add((parent_id, rule_seq))
        created.append(child.node_id)
        return _PLACE_PLACED, child.node_id, void

    def _finish_splice(
        self,
        segment: CachedSegment,
        placed: Mapping[int, int],
        local_depth: Mapping[int, int],
        created: Sequence[int],
        flagged: set[int],
        void: bool,
    ) -> None:
        """Enqueue the placed nodes the splice certificate does not cover."""
        forest = self.forest
        if void:
            self._enqueue_all(created)
            return
        created_set = set(created)
        to_enqueue: list[int] = []
        for local_index, node_id in placed.items():
            if node_id not in created_set:
                continue
            if (
                local_depth[local_index] >= segment.relative_depth
                or forest.node(node_id).depth >= self.depth_bound
                or local_index in flagged
            ):
                to_enqueue.append(node_id)
        self._enqueue_all(to_enqueue)
        if self._side_predicates:
            terms: set = set()
            for node_id in created:
                terms.update(forest.node(node_id).label.args)
            if terms:
                watch_id = self._watch_counter
                self._watch_counter += 1
                self._watches[watch_id] = (frozenset(terms), list(created))
                for term in terms:
                    self._watch_by_term.setdefault(term, set()).add(watch_id)

    # -- segment cache: recording -----------------------------------------------

    def _record_segments(self, max_depth: int) -> None:
        """Record the saturated subtree of the shallowest node of a segment key.

        Recording is *demand-driven*: a key is extracted only when something
        asked the store for it during this expansion and missed, or when it
        belongs to a current frontier node — the keys the next deepening step
        will ask for.  Keys nothing demanded are never extracted (a splice
        that finds only a shallow segment simply chains: the spliced frontier
        re-enters the cache), so type-diverse forests whose keys never repeat
        cost one key scan here, not one subtree extraction per node, and
        nothing is speculatively re-recorded on later expansions.  Within the
        demanded keys, the shallowest node is recorded (it has the most
        saturated levels below it) and only when its relative depth improves
        on the stored segment.

        Keys are computed against the *saturated* forest, which is also the
        state every later lookup sees first (splices run before new
        derivations).  A key whose side-atom context only materialises during
        saturation would miss on the lookup side and never match a recording
        — such *cold* keys are detected by comparing each missed label's
        lookup key with its post-saturation key, and the segment is
        double-keyed through a store alias (soundness argument inline below).
        """
        store = self._segment_store
        hostable = self._rules_by_guard_pred
        shallowest: dict[tuple, ChaseNode] = {}
        frontier_keys: set[tuple] = set()
        for node in self.forest.nodes():
            if node.label.predicate not in hostable:
                continue  # can never have children: not recordable, never asked
            key = self._segment_key(node.label)
            if node.depth >= max_depth:
                if node.depth == max_depth:
                    frontier_keys.add(key)
                continue
            best = shallowest.get(key)
            if best is None or node.depth < best.depth:
                shallowest[key] = node
        demanded = self._missed_keys | frontier_keys
        # A *hit* key is re-demanded when its stored segment went stale: the
        # saturated subtree now holds more nodes than the segment has
        # derivations (the segment was recorded from a forest where some side
        # atoms were absent).  Without this, one hit on a stale segment would
        # suppress re-recording forever and repeated workloads would silently
        # re-derive the difference on every run.
        for key in self._hit_keys - demanded:
            node = shallowest.get(key)
            segment = store.peek(key)
            if (
                node is not None
                and segment is not None
                and self._subtree_exceeds(node.node_id, len(segment))
            ):
                demanded.add(key)
        # Cold context-sensitive keys: a label whose side-atom context only
        # materialised *during* saturation was looked up under the lean
        # pre-saturation key but keys under the rich post-saturation one —
        # without help it records under a key no fresh engine's lookup ever
        # produces (a guaranteed miss).  Demand the post-saturation key so
        # the segment is recorded at all, and double-key it by aliasing the
        # pre-saturation key to it.  The alias is sound exactly when the
        # lookup context is a subset of the recorded context: a splice under
        # the alias can then only find side atoms *missing*, which the
        # flag/retry machinery and the wake-once watchers already cover; an
        # incomparable context could enable firings the recording never saw,
        # so it is never aliased.
        alias_requests: list[tuple[tuple, tuple]] = []
        for label, pre_key in self._miss_key_by_label.items():
            post_key = self._segment_key(label)
            if post_key == pre_key:
                continue
            if pre_key[0] != post_key[0] or not set(pre_key[1]) <= set(post_key[1]):
                continue
            demanded.add(post_key)
            alias_requests.append((pre_key, post_key))
        self._missed_keys = set()
        self._hit_keys = set()
        self._miss_key_by_label = {}
        for key in demanded:
            node = shallowest.get(key)
            if node is None:
                continue
            relative_depth = max_depth - node.depth
            existing = store.peek(key)
            if existing is not None and existing.relative_depth >= relative_depth:
                # equal-depth staleness upgrades still need extraction; pure
                # depth upgrades are gated the cheap way
                if not self._subtree_exceeds(node.node_id, len(existing)):
                    continue
            extracted = self._extract_segment(node)
            if extracted is None:
                continue
            entries, replay = extracted
            stored = store.record(key, relative_depth, entries)
            if stored is not None:
                self.cache_stats["segments_recorded"] += 1
                # seed the replay memo too: the very next engine over the same
                # database can place this subtree without any substitution —
                # pinned to the segment just stored, so a concurrent
                # re-recording between the two calls cannot adopt this memo
                store.replay_record(key, node.label, replay, segment=stored)
        for pre_key, post_key in alias_requests:
            if store.peek(post_key) is not None:
                store.record_alias(pre_key, post_key)

    def _subtree_exceeds(self, node_id: int, limit: int) -> bool:
        """Does the subtree below *node_id* have more than *limit* descendants?

        Counting walk with early exit, so the cost is bounded by ``limit + 1``
        rather than the subtree size.
        """
        count = 0
        stack = list(self.forest.node(node_id).children)
        while stack:
            count += 1
            if count > limit:
                return True
            current = self.forest.node(stack.pop())
            stack.extend(current.children)
        return False

    def _extract_segment(
        self, root: ChaseNode
    ) -> Optional[tuple[tuple[tuple[int, int], ...], tuple]]:
        """The subtree below *root* as position-independent derivation entries.

        Preorder guarantees parents precede children, so entry ``i`` (local
        node ``i + 1``) always refers to an earlier local index.  Returns the
        pair ``(entries, replay)`` — the abstract derivations for the segment
        plus their fully ground form for the replay memo (the subtree's edge
        rules *are* the ground derivations, so the memo costs no substitution
        work) — or ``None`` when some edge cannot be attributed to a canonical
        rule (defensive; every engine-built edge is attributable).
        """
        subtree = self.forest.subtree_nodes(root.node_id)
        if len(subtree) - 1 > self._segment_store.max_segment_nodes:
            return None
        local: dict[int, int] = {root.node_id: 0}
        entries: list[tuple[int, int]] = []
        replay: list[tuple] = []
        for node in subtree[1:]:
            parent_local = local.get(node.parent)
            if parent_local is None:  # pragma: no cover - preorder invariant
                return None
            rule_index = self._rule_index_of(
                self.forest.node(node.parent).label, node.edge_rule
            )
            if rule_index is None:  # pragma: no cover - engine-built edges resolve
                return None
            local[node.node_id] = len(local)
            entries.append((parent_local, rule_index))
            side_atoms = tuple(
                node.edge_rule.body_pos[i]
                for i in self._canonical_rules[rule_index].other_indices
            )
            replay.append(
                (len(local) - 1, parent_local, rule_index, node.edge_rule, side_atoms)
            )
        return tuple(entries), tuple(replay)

    def _rule_index_of(self, parent_label: Atom, edge_rule: NormalRule) -> Optional[int]:
        """The canonical rule whose guard match at *parent_label* fires *edge_rule*."""
        key = (parent_label, edge_rule)
        if key in self._derivation_memo:
            return self._derivation_memo[key]
        found: Optional[int] = None
        for prepared in self._rules_by_structure.get(_rule_structure(edge_rule), ()):
            if prepared.guard.predicate != parent_label.predicate:
                continue
            subst = match(prepared.guard, parent_label)
            if subst is not None and _instantiate(prepared.rule, subst) == edge_rule:
                found = self._canonical_index[prepared.rule]
                break
        self._derivation_memo[key] = found
        return found

    # -- views used by the Datalog± engine ----------------------------------------------

    def frontier_nodes(self) -> list[ChaseNode]:
        """Nodes at the current depth bound (not yet expanded)."""
        return self.forest.nodes_at_depth(self.depth_bound)

    def ground_rules(self) -> list[NormalRule]:
        """All ground rules labelling edges of the expanded forest segment."""
        return self.forest.edge_rules()

    def atoms(self) -> frozenset[Atom]:
        """All atoms labelling nodes of the expanded forest segment."""
        return self.forest.labels()

    def __repr__(self) -> str:
        return (
            f"GuardedChaseEngine(depth_bound={self.depth_bound}, "
            f"{len(self.forest)} nodes, {len(self._rules)} rules)"
        )


def _rule_structure(rule: NormalRule) -> tuple:
    """The predicate-level structure of a rule — invariant under instantiation."""
    return (
        rule.head.predicate,
        tuple(sorted(a.predicate for a in rule.body_pos)),
        tuple(sorted(a.predicate for a in rule.body_neg)),
    )


def _index_by_predicate(atoms: Iterable[Atom]) -> dict[str, list[Atom]]:
    """Group atoms by predicate for body matching."""
    index: dict[str, list[Atom]] = {}
    for atom in atoms:
        index.setdefault(atom.predicate, []).append(atom)
    return index


def _match_remaining(
    patterns: Sequence[Atom],
    label_index: Mapping[str, Sequence[Atom]],
    labels: frozenset[Atom],
    subst: Substitution,
):
    """Match the non-guard positive body atoms against the forest labels.

    A pattern that is ground under the accumulated substitution (always the
    case for guarded rules, whose guard binds every variable) is decided by a
    single set-membership test instead of a scan over the predicate's atoms.
    """
    if not patterns:
        yield subst
        return
    first, rest = patterns[0], patterns[1:]
    grounded = subst.apply_atom(first)
    if grounded.is_ground():
        if grounded in labels:
            yield from _match_remaining(rest, label_index, labels, subst)
        return
    for candidate in label_index.get(first.predicate, ()):  # pragma: no branch
        extended = match(first, candidate, subst)
        if extended is not None:
            yield from _match_remaining(rest, label_index, labels, extended)


def _instantiate(rule: NormalRule, subst: Substitution) -> NormalRule:
    """Apply a substitution to a rule, producing a ground instance."""
    return NormalRule(
        subst.apply_atom(rule.head),
        tuple(subst.apply_atom(a) for a in rule.body_pos),
        tuple(subst.apply_atom(a) for a in rule.body_neg),
    )


def chase_forest(
    skolemized_program: NormalProgram | Iterable[NormalRule],
    database: Database | Iterable[Atom],
    max_depth: int,
    *,
    max_nodes: int = 1_000_000,
    segment_cache: Union[SegmentStore, bool, None] = None,
    saturation: str = "agenda",
) -> ChaseForest:
    """Convenience wrapper: build and expand a guarded chase forest in one call.

    Pass ``True`` (or an explicit :class:`~repro.chase.segments.SegmentStore`)
    to splice memoized subtrees recorded by earlier forests over the same
    rules; the result is identical either way.  ``saturation`` selects the
    agenda-driven loop (default) or the retained breadth-first scan — the
    forests are bit-identical too.
    """
    engine = GuardedChaseEngine(
        skolemized_program,
        database,
        max_nodes=max_nodes,
        segment_cache=segment_cache,
        saturation=saturation,
    )
    engine.expand(max_depth)
    return engine.forest
