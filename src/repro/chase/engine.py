"""The guarded chase engine: breadth-first expansion of ``F⁺(P)`` (Sec. 2.5, 3).

The engine materialises a finite, depth-bounded segment of the guarded chase
forest of ``P = D ∪ Σ^f``:

* roots are the database facts (plus ground facts of the Skolemised program);
* in every round, for each node ``v`` and each ground instance ``r`` of a
  Skolemised rule whose guard instantiates to ``label(v)`` and whose remaining
  *positive* body atoms all occur as labels of the current forest, a child of
  ``v`` labelled ``H(r)`` is added (once per ``(v, r)`` pair), with the edge
  carrying the full rule ``r`` — negative body included — exactly as in the
  construction of ``F⁺(P)``;
* nodes at the configured depth bound are not expanded; they form the
  *frontier* that the Datalog± engine inspects for its convergence test.

The expansion is incremental: calling :meth:`GuardedChaseEngine.expand` again
with a larger depth bound continues from the existing forest instead of
rebuilding it.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from ..exceptions import GroundingError, NotGuardedError
from ..lang.atoms import Atom
from ..lang.program import Database, NormalProgram
from ..lang.rules import NormalRule
from ..lang.substitution import Substitution, match
from .forest import ChaseForest, ChaseNode

__all__ = ["GuardedChaseEngine", "chase_forest"]


class _PreparedRule:
    """A Skolemised rule with its guard singled out for efficient matching."""

    __slots__ = ("rule", "guard", "other_pos")

    def __init__(self, rule: NormalRule, *, require_guarded: bool = True):
        self.rule = rule
        self.guard = _find_guard(rule, require_guarded=require_guarded)
        self.other_pos = tuple(a for a in rule.body_pos if a is not self.guard)


def _find_guard(rule: NormalRule, *, require_guarded: bool = True) -> Atom:
    """The guard of a Skolemised guarded rule.

    After Skolemisation the universally quantified variables of the original
    NTGD are exactly the variables of the rule, so the guard is a positive
    body atom containing all of them.  The first such atom (in body order) is
    chosen, matching :meth:`repro.lang.rules.NTGD.guard`.

    With ``require_guarded=False`` (experimentation mode — the paper's
    decidability results do not apply), an unguarded rule falls back to the
    positive body atom covering the most variables; the chase still requires
    every body atom to match existing labels, so derivations remain correct,
    only the forest-locality guarantees are lost.
    """
    all_variables = rule.variables()
    for atom in rule.body_pos:
        if all_variables <= atom.variables():
            return atom
    if require_guarded:
        raise NotGuardedError(f"rule {rule} has no guard atom")
    return max(rule.body_pos, key=lambda atom: len(atom.variables()))


class GuardedChaseEngine:
    """Incrementally expands the guarded chase forest of ``D ∪ Σ^f``.

    Parameters
    ----------
    skolemized_program:
        The functional transformation ``Σ^f`` as a :class:`NormalProgram` (or
        any iterable of Skolemised :class:`NormalRule`).  Every non-fact rule
        must be guarded.
    database:
        The database ``D`` (an iterable of ground atoms or a :class:`Database`).
    max_nodes:
        Safety budget: expansion raises :class:`GroundingError` if the forest
        would exceed this many nodes (default one million).
    """

    def __init__(
        self,
        skolemized_program: NormalProgram | Iterable[NormalRule],
        database: Database | Iterable[Atom],
        *,
        max_nodes: int = 1_000_000,
        require_guarded: bool = True,
    ):
        self.forest = ChaseForest()
        self.max_nodes = max_nodes
        self._rules: list[_PreparedRule] = []
        self._rules_by_guard_pred: dict[str, list[_PreparedRule]] = {}

        for rule in skolemized_program:
            if rule.is_fact():
                if rule.is_ground():
                    self._add_fact(rule.head)
                continue
            prepared = _PreparedRule(rule, require_guarded=require_guarded)
            self._rules.append(prepared)
            self._rules_by_guard_pred.setdefault(prepared.guard.predicate, []).append(prepared)

        for atom in database:
            self._add_fact(atom)

        #: depth bound in effect after the last call to :meth:`expand`
        self.depth_bound = 0
        #: number of expansion rounds performed so far
        self.rounds = 0

    def _add_fact(self, atom: Atom) -> None:
        """Add a root node for a fact unless one with that label already exists."""
        if not self.forest.has_label(atom) or not any(
            n.is_root() and n.label == atom for n in self.forest.nodes_with_label(atom)
        ):
            self.forest.add_root(atom)

    # -- expansion ------------------------------------------------------------------

    def expand(self, max_depth: int, *, max_rounds: Optional[int] = None) -> bool:
        """Expand the forest up to tree depth *max_depth*.

        Nodes at depth ``max_depth`` are not given children.  Returns ``True``
        if at least one node was added.  Expansion always runs to saturation
        within the depth bound (unless *max_rounds* cuts it short).

        Raises
        ------
        GroundingError
            If the node budget is exceeded.
        """
        if max_depth < self.depth_bound:
            # the forest is already expanded beyond this bound; nothing to do
            return False
        self.depth_bound = max_depth
        added_any = False
        changed = True
        rounds_here = 0
        while changed:
            if max_rounds is not None and rounds_here >= max_rounds:
                break
            changed = self._expand_one_round(max_depth)
            added_any = added_any or changed
            rounds_here += 1
            self.rounds += 1
        return added_any

    def _expand_one_round(self, max_depth: int) -> bool:
        """One breadth-first round: fire every applicable (node, ground rule) pair."""
        labels = self.forest.labels()
        label_index = _index_by_predicate(labels)
        level = self.rounds + 1
        new_children: list[tuple[int, Atom, NormalRule]] = []

        for node in list(self.forest.nodes()):
            if node.depth >= max_depth:
                continue
            for prepared in self._rules_by_guard_pred.get(node.label.predicate, ()):
                guard_match = match(prepared.guard, node.label)
                if guard_match is None:
                    continue
                for full_match in _match_remaining(prepared.other_pos, label_index, guard_match):
                    ground_rule = _instantiate(prepared.rule, full_match)
                    if self.forest.was_applied(node.node_id, ground_rule):
                        continue
                    new_children.append((node.node_id, ground_rule.head, ground_rule))

        if not new_children:
            return False
        if len(self.forest) + len(new_children) > self.max_nodes:
            raise GroundingError(
                f"chase forest would exceed the node budget of {self.max_nodes}; "
                "lower the depth bound or raise max_nodes"
            )
        for parent_id, head, rule in new_children:
            # Re-check: the same (parent, rule) pair may have been queued once only,
            # but defensive duplicate checks keep the forest well-formed.
            if not self.forest.was_applied(parent_id, rule):
                self.forest.add_child(parent_id, head, rule, level)
        return True

    # -- views used by the Datalog± engine ----------------------------------------------

    def frontier_nodes(self) -> list[ChaseNode]:
        """Nodes at the current depth bound (not yet expanded)."""
        return self.forest.nodes_at_depth(self.depth_bound)

    def ground_rules(self) -> list[NormalRule]:
        """All ground rules labelling edges of the expanded forest segment."""
        return self.forest.edge_rules()

    def atoms(self) -> frozenset[Atom]:
        """All atoms labelling nodes of the expanded forest segment."""
        return self.forest.labels()

    def __repr__(self) -> str:
        return (
            f"GuardedChaseEngine(depth_bound={self.depth_bound}, "
            f"{len(self.forest)} nodes, {len(self._rules)} rules)"
        )


def _index_by_predicate(atoms: Iterable[Atom]) -> dict[str, list[Atom]]:
    """Group atoms by predicate for body matching."""
    index: dict[str, list[Atom]] = {}
    for atom in atoms:
        index.setdefault(atom.predicate, []).append(atom)
    return index


def _match_remaining(
    patterns: Sequence[Atom],
    label_index: Mapping[str, Sequence[Atom]],
    subst: Substitution,
):
    """Match the non-guard positive body atoms against the forest labels."""
    if not patterns:
        yield subst
        return
    first, rest = patterns[0], patterns[1:]
    for candidate in label_index.get(first.predicate, ()):  # pragma: no branch
        extended = match(first, candidate, subst)
        if extended is not None:
            yield from _match_remaining(rest, label_index, extended)


def _instantiate(rule: NormalRule, subst: Substitution) -> NormalRule:
    """Apply a substitution to a rule, producing a ground instance."""
    return NormalRule(
        subst.apply_atom(rule.head),
        tuple(subst.apply_atom(a) for a in rule.body_pos),
        tuple(subst.apply_atom(a) for a in rule.body_neg),
    )


def chase_forest(
    skolemized_program: NormalProgram | Iterable[NormalRule],
    database: Database | Iterable[Atom],
    max_depth: int,
    *,
    max_nodes: int = 1_000_000,
) -> ChaseForest:
    """Convenience wrapper: build and expand a guarded chase forest in one call."""
    engine = GuardedChaseEngine(skolemized_program, database, max_nodes=max_nodes)
    engine.expand(max_depth)
    return engine.forest
