"""The guarded chase engine: breadth-first expansion of ``F⁺(P)`` (Sec. 2.5, 3).

The engine materialises a finite, depth-bounded segment of the guarded chase
forest of ``P = D ∪ Σ^f``:

* roots are the database facts (plus ground facts of the Skolemised program);
* in every round, for each node ``v`` and each ground instance ``r`` of a
  Skolemised rule whose guard instantiates to ``label(v)`` and whose remaining
  *positive* body atoms all occur as labels of the current forest, a child of
  ``v`` labelled ``H(r)`` is added (once per ``(v, r)`` pair), with the edge
  carrying the full rule ``r`` — negative body included — exactly as in the
  construction of ``F⁺(P)``;
* nodes at the configured depth bound are not expanded; they form the
  *frontier* that the Datalog± engine inspects for its convergence test.

The expansion is incremental: calling :meth:`GuardedChaseEngine.expand` again
with a larger depth bound continues from the existing forest instead of
rebuilding it.

With a :class:`~repro.chase.segments.SegmentStore` attached (``segment_cache``),
expansion additionally *splices* memoized subtrees under nodes whose canonical
atom shape was expanded before — by this engine, at a smaller depth, or by any
previous engine over the same rule set — instead of re-deriving them through
rule matching, and records newly saturated subtrees back into the store.  The
saturation rounds still run to quiescence afterwards, so the resulting forest
is bit-identical to the one built without the cache (see
:mod:`repro.chase.segments` for the argument).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, Union

from ..exceptions import GroundingError, NotGuardedError
from ..lang.atoms import Atom
from ..lang.program import Database, NormalProgram
from ..lang.rules import NormalRule
from ..lang.substitution import Substitution, match
from .forest import ChaseForest, ChaseNode
from .segments import (
    CachedSegment,
    SegmentStore,
    canonical_rule_order,
    shared_segment_store,
)
from .types import shape_key

__all__ = ["GuardedChaseEngine", "chase_forest"]


class _PreparedRule:
    """A Skolemised rule with its guard singled out for efficient matching."""

    __slots__ = ("rule", "guard", "other_pos", "seq", "fully_bound")

    def __init__(self, rule: NormalRule, *, require_guarded: bool = True, seq: int = 0):
        self.rule = rule
        self.guard = _find_guard(rule, require_guarded=require_guarded)
        self.other_pos = tuple(a for a in rule.body_pos if a is not self.guard)
        #: position of the rule in the engine's rule list (memo keys)
        self.seq = seq
        #: does the guard bind every rule variable?  Then a guard match fully
        #: determines the ground instance — at most one firing per node — and
        #: the engine can memoize decided (node, rule) pairs across rounds.
        self.fully_bound = rule.variables() <= self.guard.variables()


def _find_guard(rule: NormalRule, *, require_guarded: bool = True) -> Atom:
    """The guard of a Skolemised guarded rule.

    After Skolemisation the universally quantified variables of the original
    NTGD are exactly the variables of the rule, so the guard is a positive
    body atom containing all of them.  The first such atom (in body order) is
    chosen, matching :meth:`repro.lang.rules.NTGD.guard`.

    With ``require_guarded=False`` (experimentation mode — the paper's
    decidability results do not apply), an unguarded rule falls back to the
    positive body atom covering the most variables; the chase still requires
    every body atom to match existing labels, so derivations remain correct,
    only the forest-locality guarantees are lost.
    """
    all_variables = rule.variables()
    for atom in rule.body_pos:
        if all_variables <= atom.variables():
            return atom
    if require_guarded:
        raise NotGuardedError(f"rule {rule} has no guard atom")
    return max(rule.body_pos, key=lambda atom: len(atom.variables()))


class GuardedChaseEngine:
    """Incrementally expands the guarded chase forest of ``D ∪ Σ^f``.

    Parameters
    ----------
    skolemized_program:
        The functional transformation ``Σ^f`` as a :class:`NormalProgram` (or
        any iterable of Skolemised :class:`NormalRule`).  Every non-fact rule
        must be guarded.
    database:
        The database ``D`` (an iterable of ground atoms or a :class:`Database`).
    max_nodes:
        Safety budget: expansion raises :class:`GroundingError` if the forest
        would exceed this many nodes (default one million).
    segment_cache:
        ``True`` to memoize saturated subtrees by canonical atom shape in the
        persistent per-fingerprint store
        (:func:`repro.chase.segments.shared_segment_store`), or an explicit
        :class:`~repro.chase.segments.SegmentStore` to use instead.  The
        store is consulted and fed by :meth:`expand`.  Caching is declined
        (``cache_stats["disabled_reason"]`` says why, and no registry entry
        is created) when some rule's guard does not bind every rule variable
        (possible only with ``require_guarded=False``), because then a firing
        is no longer determined by the guard match alone.
    """

    def __init__(
        self,
        skolemized_program: NormalProgram | Iterable[NormalRule],
        database: Database | Iterable[Atom],
        *,
        max_nodes: int = 1_000_000,
        require_guarded: bool = True,
        segment_cache: Union[SegmentStore, bool, None] = None,
    ):
        self.forest = ChaseForest()
        self.max_nodes = max_nodes
        self._rules: list[_PreparedRule] = []
        self._rules_by_guard_pred: dict[str, list[_PreparedRule]] = {}

        for rule in skolemized_program:
            if rule.is_fact():
                if rule.is_ground():
                    self._add_fact(rule.head)
                continue
            prepared = _PreparedRule(
                rule, require_guarded=require_guarded, seq=len(self._rules)
            )
            self._rules.append(prepared)
            self._rules_by_guard_pred.setdefault(prepared.guard.predicate, []).append(prepared)

        # Decided (node_id, rule seq) pairs for fully-bound rules: the pair
        # either fired (its unique ground instance is in the forest) or its
        # guard can never match the node's label.  Saturation rounds skip these
        # without re-instantiating the rule, which makes the re-scan of an
        # already-expanded forest (iterative deepening, post-splice quiescence
        # checks) near-free.
        self._decided: set[tuple[int, int]] = set()

        for atom in database:
            self._add_fact(atom)

        #: depth bound in effect after the last call to :meth:`expand`
        self.depth_bound = 0
        #: number of expansion rounds performed so far
        self.rounds = 0

        # -- segment cache wiring ----------------------------------------------
        #: counters of this engine's cache traffic (hits/misses are per lookup,
        #: ``nodes_spliced`` counts children placed without rule matching)
        self.cache_stats = {
            "enabled": False,
            "hits": 0,
            "misses": 0,
            "splices": 0,
            "nodes_spliced": 0,
            "segments_recorded": 0,
        }
        self._segment_store: Optional[SegmentStore] = None
        self._canonical_rules: list[_PreparedRule] = []
        self._canonical_index: dict[NormalRule, int] = {}
        self._rules_by_structure: dict[tuple, list[_PreparedRule]] = {}
        # Memos keyed by immutable values: label shapes recur across nodes and
        # (parent label, ground rule) pairs recur across re-recordings.
        self._shape_memo: dict[Atom, tuple] = {}
        self._derivation_memo: dict[tuple[Atom, NormalRule], Optional[int]] = {}
        # Shapes that were looked up and missed: recording is demand-driven —
        # only shapes something actually asked for (plus the current frontier,
        # which the next deepening step will ask for) are worth extracting.
        self._missed_shapes: set[tuple] = set()
        # Shapes that were looked up and hit: checked after saturation for
        # staleness (the rounds may have derived more under the spliced root
        # than the stored segment knows, e.g. when the segment was recorded
        # from a database lacking some side atoms).
        self._hit_shapes: set[tuple] = set()
        # Note: an explicit store must not go through truthiness — an empty
        # SegmentStore has len() == 0 and would read as "disabled".
        if segment_cache is not None and segment_cache is not False:
            if not all(p.fully_bound for p in self._rules):
                # The shared registry is not consulted either, so unguarded
                # programs cannot evict live stores of cacheable ones.
                self.cache_stats["disabled_reason"] = (
                    "some rule's guard does not bind every rule variable"
                )
            else:
                self._segment_store = (
                    segment_cache
                    if isinstance(segment_cache, SegmentStore)
                    else shared_segment_store(
                        (p.rule for p in self._rules), require_guarded=require_guarded
                    )
                )
                self.cache_stats["enabled"] = True
        if self._segment_store is not None:
            # Cached segments refer to rules by index in the canonical ordering
            # so that every engine sharing a store agrees on what an index means.
            canonical = canonical_rule_order(p.rule for p in self._rules)
            self._canonical_index = {rule: index for index, rule in enumerate(canonical)}
            by_rule: dict[NormalRule, _PreparedRule] = {}
            for prepared in self._rules:
                by_rule.setdefault(prepared.rule, prepared)
            self._canonical_rules = [by_rule[rule] for rule in canonical]
            # Ground edge rules are attributed to their source rule by structure
            # first (head/body predicates), so recording tries one or two
            # candidates instead of every rule sharing the guard predicate.
            for prepared in self._rules:
                self._rules_by_structure.setdefault(
                    _rule_structure(prepared.rule), []
                ).append(prepared)

    @property
    def segment_store(self) -> Optional[SegmentStore]:
        """The attached segment store, or ``None`` when caching is off."""
        return self._segment_store

    def _add_fact(self, atom: Atom) -> None:
        """Add a root node for a fact unless one with that label already exists."""
        if not self.forest.has_label(atom) or not any(
            n.is_root() and n.label == atom for n in self.forest.nodes_with_label(atom)
        ):
            self.forest.add_root(atom)

    # -- expansion ------------------------------------------------------------------

    def expand(self, max_depth: int, *, max_rounds: Optional[int] = None) -> bool:
        """Expand the forest up to tree depth *max_depth*.

        Nodes at depth ``max_depth`` are not given children.  Returns ``True``
        if at least one node was added.  Expansion always runs to saturation
        within the depth bound (unless *max_rounds* cuts it short).

        With a segment cache attached, memoized subtrees are spliced in first
        (see :meth:`_splice_from_cache`); the saturation rounds then add
        whatever the cache could not provide and certify quiescence, so the
        final forest is identical either way.  After saturation, node levels
        are restored to their canonical derivation stages
        (:meth:`ChaseForest.recompute_levels`) and newly saturated subtrees
        are recorded back into the store.  Splicing and recording are skipped
        under a *max_rounds* cutoff: an unsaturated forest must not populate
        the store, and a partial expansion has no quiescence certificate.

        Raises
        ------
        GroundingError
            If the node budget is exceeded.
        """
        if max_depth < self.depth_bound:
            # the forest is already expanded beyond this bound; nothing to do
            return False
        self.depth_bound = max_depth
        use_cache = self._segment_store is not None and max_rounds is None
        added_any = False
        if use_cache:
            added_any = self._splice_from_cache(max_depth)
        changed = True
        rounds_here = 0
        while changed:
            if max_rounds is not None and rounds_here >= max_rounds:
                break
            changed = self._expand_one_round(max_depth)
            added_any = added_any or changed
            rounds_here += 1
            self.rounds += 1
        if added_any:
            self.forest.recompute_levels()
        if use_cache:
            self._record_segments(max_depth)
        return added_any

    def _expand_one_round(self, max_depth: int) -> bool:
        """One breadth-first round: fire every applicable (node, ground rule) pair."""
        labels = self.forest.labels()
        label_index = _index_by_predicate(labels)
        level = self.rounds + 1
        new_children: list[tuple[int, Atom, NormalRule]] = []

        decided = self._decided
        fired: list[tuple[int, int]] = []
        for node in list(self.forest.nodes()):
            if node.depth >= max_depth:
                continue
            node_id = node.node_id
            for prepared in self._rules_by_guard_pred.get(node.label.predicate, ()):
                if prepared.fully_bound and (node_id, prepared.seq) in decided:
                    continue
                guard_match = match(prepared.guard, node.label)
                if guard_match is None:
                    if prepared.fully_bound:
                        # labels never change: this pair can never fire
                        decided.add((node_id, prepared.seq))
                    continue
                for full_match in _match_remaining(
                    prepared.other_pos, label_index, labels, guard_match
                ):
                    ground_rule = _instantiate(prepared.rule, full_match)
                    if self.forest.was_applied(node_id, ground_rule):
                        if prepared.fully_bound:
                            decided.add((node_id, prepared.seq))
                        continue
                    new_children.append((node_id, ground_rule.head, ground_rule))
                    if prepared.fully_bound:
                        fired.append((node_id, prepared.seq))

        if not new_children:
            return False
        if len(self.forest) + len(new_children) > self.max_nodes:
            raise GroundingError(
                f"chase forest would exceed the node budget of {self.max_nodes}; "
                "lower the depth bound or raise max_nodes"
            )
        for parent_id, head, rule in new_children:
            # Re-check: the same (parent, rule) pair may have been queued once only,
            # but defensive duplicate checks keep the forest well-formed.
            if not self.forest.was_applied(parent_id, rule):
                self.forest.add_child(parent_id, head, rule, level)
        decided.update(fired)
        return True

    # -- segment cache: splice-in -----------------------------------------------

    def _shape(self, label: Atom) -> tuple:
        """Memoized canonical shape of a node label."""
        shape = self._shape_memo.get(label)
        if shape is None:
            shape = shape_key(label)
            self._shape_memo[label] = shape
        return shape

    def _splice_from_cache(self, max_depth: int) -> bool:
        """Instantiate cached segments under every unexpanded matching node.

        Worklist over childless nodes below the depth bound; nodes spliced in
        are fed back so that a segment's frontier can itself hit the cache
        (this is how iterative deepening descends through repeated types
        without ever re-matching rules).  Returns ``True`` if nodes were added.
        """
        store = self._segment_store
        forest = self.forest
        added = False
        worklist = [
            node.node_id
            for node in forest.nodes()
            if not node.children and node.depth < max_depth
        ]
        while worklist:
            node_id = worklist.pop()
            node = forest.node(node_id)
            if node.children or node.depth >= max_depth:
                continue
            shape = self._shape(node.label)
            segment = store.lookup(shape)
            if segment is None:
                self.cache_stats["misses"] += 1
                self._missed_shapes.add(shape)
                continue
            self.cache_stats["hits"] += 1
            self._hit_shapes.add(shape)
            created = self._instantiate_segment(node_id, segment, max_depth)
            if not created:
                continue
            added = True
            self.cache_stats["splices"] += 1
            self.cache_stats["nodes_spliced"] += len(created)
            for child_id in created:
                child = forest.node(child_id)
                if not child.children and child.depth < max_depth:
                    worklist.append(child_id)
        return added

    def _instantiate_segment(
        self, root_id: int, segment: CachedSegment, max_depth: int
    ) -> list[int]:
        """Replay a cached segment under *root_id*, renaming nulls by substitution.

        Every derivation is re-validated before being placed: the rule's guard
        is re-matched against the (new) parent label, and the transported side
        atoms must already label the forest — so each placed child is a firing
        the ordinary rounds would also perform, only without the join.
        Derivations whose side atoms are still missing are retried (a cousin
        placed later in the same splice may provide them); those whose parents
        were dropped, whose guard no longer matches (possible when a shape
        collision merged nulls), or that would exceed the depth bound are
        dropped — the saturation rounds recover anything genuinely derivable.
        Returns the ids of the newly created nodes.
        """
        forest = self.forest
        placed: dict[int, int] = {0: root_id}
        created: list[int] = []
        rules = self._canonical_rules
        # The last element is the forest size at the entry's last failed
        # side-atom check: labels only grow, so while the forest has not
        # grown since, re-validating the same ground atoms cannot succeed
        # and the entry is carried over without rework.
        pending: list[tuple[int, int, int, int]] = [
            (index + 1, parent_local, rule_index, -1)
            for index, (parent_local, rule_index) in enumerate(segment.entries)
            if rule_index < len(rules)
        ]
        progress = True
        while pending and progress:
            progress = False
            retry: list[tuple[int, int, int, int]] = []
            dropped: set[int] = set()
            for local_index, parent_local, rule_index, checked_at in pending:
                parent_id = placed.get(parent_local)
                if parent_id is None:
                    if parent_local in dropped:
                        dropped.add(local_index)
                    else:
                        retry.append((local_index, parent_local, rule_index, checked_at))
                    continue
                if checked_at == len(forest):
                    retry.append((local_index, parent_local, rule_index, checked_at))
                    continue
                parent = forest.node(parent_id)
                if parent.depth >= max_depth:
                    dropped.add(local_index)
                    continue
                prepared = rules[rule_index]
                subst = match(prepared.guard, parent.label)
                if subst is None:
                    dropped.add(local_index)
                    continue
                if any(
                    not forest.has_label(subst.apply_atom(atom))
                    for atom in prepared.other_pos
                ):
                    retry.append((local_index, parent_local, rule_index, len(forest)))
                    continue
                ground_rule = _instantiate(prepared.rule, subst)
                if forest.was_applied(parent_id, ground_rule):
                    self._decided.add((parent_id, prepared.seq))
                    for sibling in forest.children(parent_id):
                        if sibling.edge_rule == ground_rule:
                            placed[local_index] = sibling.node_id
                            break
                    progress = True
                    continue
                if len(forest) + 1 > self.max_nodes:
                    raise GroundingError(
                        f"chase forest would exceed the node budget of {self.max_nodes}; "
                        "lower the depth bound or raise max_nodes"
                    )
                child = forest.add_child(
                    parent_id, ground_rule.head, ground_rule, parent.level + 1
                )
                self._decided.add((parent_id, prepared.seq))
                placed[local_index] = child.node_id
                created.append(child.node_id)
                progress = True
            pending = retry
        return created

    # -- segment cache: recording -----------------------------------------------

    def _record_segments(self, max_depth: int) -> None:
        """Record the saturated subtree of the shallowest node of a shape.

        Recording is *demand-driven*: a shape is extracted only when something
        asked the store for it during this expansion and missed, or when it
        labels a current frontier node — the shapes the next deepening step
        will ask for.  Shapes nothing demanded are never extracted (a splice
        that finds only a shallow segment simply chains: the spliced frontier
        re-enters the cache), so shape-diverse forests whose types never
        repeat cost one shape scan here, not one subtree extraction per node,
        and nothing is speculatively re-recorded on later expansions.  Within
        the demanded shapes, the shallowest node is recorded (it has the most
        saturated levels below it) and only when its relative depth improves
        on the stored segment.
        """
        store = self._segment_store
        shallowest: dict[tuple, ChaseNode] = {}
        frontier_shapes: set[tuple] = set()
        for node in self.forest.nodes():
            shape = self._shape(node.label)
            if node.depth >= max_depth:
                if node.depth == max_depth:
                    frontier_shapes.add(shape)
                continue
            best = shallowest.get(shape)
            if best is None or node.depth < best.depth:
                shallowest[shape] = node
        demanded = self._missed_shapes | frontier_shapes
        # A *hit* shape is re-demanded when its stored segment went stale:
        # the saturated subtree now holds more nodes than the segment has
        # derivations (the segment was recorded from a forest where some side
        # atoms were absent).  Without this, one hit on a stale segment would
        # suppress re-recording forever and repeated workloads would silently
        # re-derive the difference on every run.
        for shape in self._hit_shapes - demanded:
            node = shallowest.get(shape)
            segment = store.peek(shape)
            if (
                node is not None
                and segment is not None
                and self._subtree_exceeds(node.node_id, len(segment))
            ):
                demanded.add(shape)
        self._missed_shapes = set()
        self._hit_shapes = set()
        for shape in demanded:
            node = shallowest.get(shape)
            if node is None:
                continue
            relative_depth = max_depth - node.depth
            existing = store.peek(shape)
            if existing is not None and existing.relative_depth >= relative_depth:
                # equal-depth staleness upgrades still need extraction; pure
                # depth upgrades are gated the cheap way
                if not self._subtree_exceeds(node.node_id, len(existing)):
                    continue
            entries = self._extract_segment(node)
            if entries is None:
                continue
            if store.record(shape, relative_depth, entries):
                self.cache_stats["segments_recorded"] += 1

    def _subtree_exceeds(self, node_id: int, limit: int) -> bool:
        """Does the subtree below *node_id* have more than *limit* descendants?

        Counting walk with early exit, so the cost is bounded by ``limit + 1``
        rather than the subtree size.
        """
        count = 0
        stack = list(self.forest.node(node_id).children)
        while stack:
            count += 1
            if count > limit:
                return True
            current = self.forest.node(stack.pop())
            stack.extend(current.children)
        return False

    def _extract_segment(self, root: ChaseNode) -> Optional[tuple[tuple[int, int], ...]]:
        """The subtree below *root* as position-independent derivation entries.

        Preorder guarantees parents precede children, so entry ``i`` (local
        node ``i + 1``) always refers to an earlier local index.  Returns
        ``None`` when some edge cannot be attributed to a canonical rule
        (defensive; every engine-built edge is attributable).
        """
        subtree = self.forest.subtree_nodes(root.node_id)
        if len(subtree) - 1 > self._segment_store.max_segment_nodes:
            return None
        local: dict[int, int] = {root.node_id: 0}
        entries: list[tuple[int, int]] = []
        for node in subtree[1:]:
            parent_local = local.get(node.parent)
            if parent_local is None:  # pragma: no cover - preorder invariant
                return None
            rule_index = self._rule_index_of(
                self.forest.node(node.parent).label, node.edge_rule
            )
            if rule_index is None:  # pragma: no cover - engine-built edges resolve
                return None
            local[node.node_id] = len(local)
            entries.append((parent_local, rule_index))
        return tuple(entries)

    def _rule_index_of(self, parent_label: Atom, edge_rule: NormalRule) -> Optional[int]:
        """The canonical rule whose guard match at *parent_label* fires *edge_rule*."""
        key = (parent_label, edge_rule)
        if key in self._derivation_memo:
            return self._derivation_memo[key]
        found: Optional[int] = None
        for prepared in self._rules_by_structure.get(_rule_structure(edge_rule), ()):
            if prepared.guard.predicate != parent_label.predicate:
                continue
            subst = match(prepared.guard, parent_label)
            if subst is not None and _instantiate(prepared.rule, subst) == edge_rule:
                found = self._canonical_index[prepared.rule]
                break
        self._derivation_memo[key] = found
        return found

    # -- views used by the Datalog± engine ----------------------------------------------

    def frontier_nodes(self) -> list[ChaseNode]:
        """Nodes at the current depth bound (not yet expanded)."""
        return self.forest.nodes_at_depth(self.depth_bound)

    def ground_rules(self) -> list[NormalRule]:
        """All ground rules labelling edges of the expanded forest segment."""
        return self.forest.edge_rules()

    def atoms(self) -> frozenset[Atom]:
        """All atoms labelling nodes of the expanded forest segment."""
        return self.forest.labels()

    def __repr__(self) -> str:
        return (
            f"GuardedChaseEngine(depth_bound={self.depth_bound}, "
            f"{len(self.forest)} nodes, {len(self._rules)} rules)"
        )


def _rule_structure(rule: NormalRule) -> tuple:
    """The predicate-level structure of a rule — invariant under instantiation."""
    return (
        rule.head.predicate,
        tuple(sorted(a.predicate for a in rule.body_pos)),
        tuple(sorted(a.predicate for a in rule.body_neg)),
    )


def _index_by_predicate(atoms: Iterable[Atom]) -> dict[str, list[Atom]]:
    """Group atoms by predicate for body matching."""
    index: dict[str, list[Atom]] = {}
    for atom in atoms:
        index.setdefault(atom.predicate, []).append(atom)
    return index


def _match_remaining(
    patterns: Sequence[Atom],
    label_index: Mapping[str, Sequence[Atom]],
    labels: frozenset[Atom],
    subst: Substitution,
):
    """Match the non-guard positive body atoms against the forest labels.

    A pattern that is ground under the accumulated substitution (always the
    case for guarded rules, whose guard binds every variable) is decided by a
    single set-membership test instead of a scan over the predicate's atoms.
    """
    if not patterns:
        yield subst
        return
    first, rest = patterns[0], patterns[1:]
    grounded = subst.apply_atom(first)
    if grounded.is_ground():
        if grounded in labels:
            yield from _match_remaining(rest, label_index, labels, subst)
        return
    for candidate in label_index.get(first.predicate, ()):  # pragma: no branch
        extended = match(first, candidate, subst)
        if extended is not None:
            yield from _match_remaining(rest, label_index, labels, extended)


def _instantiate(rule: NormalRule, subst: Substitution) -> NormalRule:
    """Apply a substitution to a rule, producing a ground instance."""
    return NormalRule(
        subst.apply_atom(rule.head),
        tuple(subst.apply_atom(a) for a in rule.body_pos),
        tuple(subst.apply_atom(a) for a in rule.body_neg),
    )


def chase_forest(
    skolemized_program: NormalProgram | Iterable[NormalRule],
    database: Database | Iterable[Atom],
    max_depth: int,
    *,
    max_nodes: int = 1_000_000,
    segment_cache: Union[SegmentStore, bool, None] = None,
) -> ChaseForest:
    """Convenience wrapper: build and expand a guarded chase forest in one call.

    Pass ``True`` (or an explicit :class:`~repro.chase.segments.SegmentStore`)
    to splice memoized subtrees recorded by earlier forests over the same
    rules; the result is identical either way.
    """
    engine = GuardedChaseEngine(
        skolemized_program, database, max_nodes=max_nodes, segment_cache=segment_cache
    )
    engine.expand(max_depth)
    return engine.forest
