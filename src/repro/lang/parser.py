"""Textual syntax for programs, databases and queries.

The library is fully usable through its Python API, but a small, readable
surface syntax makes examples, tests and benchmarks far easier to write and
audit against the paper.  The grammar (whitespace-insensitive)::

    program     := (statement)*
    statement   := rule "." | fact "." | comment
    fact        := atom
    rule        := body "->" head
    body        := literal ("," literal)*
    literal     := atom | "not" atom
    head        := ["exists" varlist] atom          (for Datalog± NTGDs)
    query       := "?" literal ("," literal)*       (an NBCQ)
    atom        := predicate "(" term ("," term)* ")" | predicate
    term        := variable | constant | function "(" term ("," term)* ")"
    variable    := identifier starting with an upper-case letter or "_"
    constant    := identifier starting with a lower-case letter, a digit
                   sequence, or a single-quoted string
    comment     := "%" … end of line   |   "#" … end of line

Example (the paper's Example 1)::

    conferencePaper(X) -> article(X).
    scientist(X) -> exists Y isAuthorOf(X, Y).
    scientist(john).

and the BCQ "does John author something?" is written ``? isAuthorOf(john, Y)``.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, Optional

from ..exceptions import ParseError
from .atoms import Atom, Literal
from .program import Database, DatalogPMProgram, NormalProgram
from .queries import ConjunctiveQuery, NormalBCQ
from .rules import NTGD, NormalRule
from .terms import Constant, FunctionTerm, Term, Variable

__all__ = [
    "parse_term",
    "parse_atom",
    "parse_literal",
    "parse_query",
    "parse_ntgd",
    "parse_normal_rule",
    "parse_program",
    "parse_normal_program",
    "parse_database",
]


_TOKEN_REGEX = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>[%#][^\n]*)
  | (?P<ARROW>->)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
  | (?P<DOT>\.)
  | (?P<QMARK>\?)
  | (?P<STRING>'[^']*')
  | (?P<NAME>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<NUMBER>\d+)
    """,
    re.VERBOSE,
)

_KEYWORD_NOT = "not"
_KEYWORD_EXISTS = "exists"


class _Token:
    """A single token with its kind, text and position (for error messages)."""

    __slots__ = ("kind", "text", "position")

    def __init__(self, kind: str, text: str, position: int):
        self.kind = kind
        self.text = text
        self.position = position

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}@{self.position})"


def _tokenize(text: str) -> list[_Token]:
    """Tokenise *text*, dropping whitespace and comments."""
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        matched = _TOKEN_REGEX.match(text, position)
        if matched is None:
            raise ParseError(
                f"unexpected character {text[position]!r} at offset {position}",
                text=text,
                position=position,
            )
        kind = matched.lastgroup or ""
        if kind not in ("WS", "COMMENT"):
            tokens.append(_Token(kind, matched.group(), position))
        position = matched.end()
    return tokens


class _Parser:
    """Recursive-descent parser over a token list."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token utilities -----------------------------------------------------

    def peek(self) -> Optional[_Token]:
        """The next token, or ``None`` at end of input."""
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def advance(self) -> _Token:
        """Consume and return the next token."""
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input", text=self.text, position=len(self.text))
        self.index += 1
        return token

    def expect(self, kind: str) -> _Token:
        """Consume a token of the given kind or raise a parse error."""
        token = self.peek()
        if token is None or token.kind != kind:
            found = token.text if token else "end of input"
            position = token.position if token else len(self.text)
            raise ParseError(
                f"expected {kind} but found {found!r} at offset {position}",
                text=self.text,
                position=position,
            )
        return self.advance()

    def at_end(self) -> bool:
        """``True`` iff all tokens have been consumed."""
        return self.index >= len(self.tokens)

    def error(self, message: str) -> ParseError:
        """Build a :class:`ParseError` at the current position."""
        token = self.peek()
        position = token.position if token else len(self.text)
        return ParseError(f"{message} at offset {position}", text=self.text, position=position)

    # -- grammar -------------------------------------------------------------

    def parse_term(self) -> Term:
        """term := variable | constant | function(term, ...)"""
        token = self.advance()
        if token.kind == "NUMBER":
            return Constant(token.text)
        if token.kind == "STRING":
            return Constant(token.text[1:-1])
        if token.kind != "NAME":
            raise self.error(f"expected a term, found {token.text!r}")
        name = token.text
        nxt = self.peek()
        if nxt is not None and nxt.kind == "LPAREN":
            # function term
            self.advance()
            args = [self.parse_term()]
            while self.peek() is not None and self.peek().kind == "COMMA":
                self.advance()
                args.append(self.parse_term())
            self.expect("RPAREN")
            return FunctionTerm(name, tuple(args))
        if name[0].isupper() or name[0] == "_":
            return Variable(name)
        return Constant(name)

    def parse_atom(self) -> Atom:
        """atom := predicate | predicate(term, ...)"""
        token = self.expect("NAME")
        predicate = token.text
        nxt = self.peek()
        if nxt is None or nxt.kind != "LPAREN":
            return Atom(predicate, ())
        self.advance()
        args = [self.parse_term()]
        while self.peek() is not None and self.peek().kind == "COMMA":
            self.advance()
            args.append(self.parse_term())
        self.expect("RPAREN")
        return Atom(predicate, tuple(args))

    def parse_literal(self) -> Literal:
        """literal := atom | "not" atom"""
        token = self.peek()
        if token is not None and token.kind == "NAME" and token.text == _KEYWORD_NOT:
            self.advance()
            return Literal(self.parse_atom(), False)
        return Literal(self.parse_atom(), True)

    def parse_literal_list(self) -> list[Literal]:
        """literal ("," literal)*"""
        literals = [self.parse_literal()]
        while self.peek() is not None and self.peek().kind == "COMMA":
            self.advance()
            literals.append(self.parse_literal())
        return literals

    def parse_head(self) -> tuple[list[Variable], Atom]:
        """head := ["exists" var ("," var)*] atom"""
        existentials: list[Variable] = []
        token = self.peek()
        if token is not None and token.kind == "NAME" and token.text == _KEYWORD_EXISTS:
            self.advance()
            while True:
                var_token = self.expect("NAME")
                if not (var_token.text[0].isupper() or var_token.text[0] == "_"):
                    raise self.error(f"existential variable expected, found {var_token.text!r}")
                existentials.append(Variable(var_token.text))
                nxt = self.peek()
                # A comma may separate either further variables or start of nothing;
                # a variable list is followed by the head atom (a NAME + LPAREN).
                if nxt is not None and nxt.kind == "COMMA":
                    after = self.tokens[self.index + 1] if self.index + 1 < len(self.tokens) else None
                    if after is not None and after.kind == "NAME" and _looks_like_variable(after.text):
                        # could still be the head atom if it has no parentheses; require
                        # that a variable list element is followed by "," or a NAME that
                        # itself is followed by "(" (the head atom).
                        after_after = (
                            self.tokens[self.index + 2] if self.index + 2 < len(self.tokens) else None
                        )
                        if after_after is not None and after_after.kind == "LPAREN":
                            break
                        self.advance()
                        continue
                break
        atom = self.parse_atom()
        return existentials, atom

    def parse_statement(
        self,
    ) -> "Atom | tuple[list[Literal], list[Variable], Atom]":
        """statement := (body "->" head | atom) "."

        Returns either an :class:`Atom` (for a fact) or a raw rule tuple
        ``(body_literals, existential_variables, head_atom)``; the public
        entry points turn the tuple into an :class:`NTGD` or a
        :class:`NormalRule` as appropriate (NTGDs reject function terms,
        normal rules reject existential variables).
        """
        start_index = self.index
        literals = self.parse_literal_list()
        token = self.peek()
        if token is not None and token.kind == "ARROW":
            self.advance()
            existentials, head = self.parse_head()
            self.expect("DOT")
            return (literals, existentials, head)
        # fact
        self.index = start_index
        atom = self.parse_atom()
        self.expect("DOT")
        return atom

    def parse_query(self) -> NormalBCQ:
        """query := "?" literal ("," literal)*"""
        self.expect("QMARK")
        literals = self.parse_literal_list()
        if not self.at_end():
            token = self.peek()
            if token is not None and token.kind == "DOT":
                self.advance()
        if not self.at_end():
            raise self.error("unexpected trailing input after query")
        return NormalBCQ.from_literals(literals)


def _looks_like_variable(name: str) -> bool:
    """Heuristic used only inside the 'exists' variable-list parser."""
    return bool(name) and (name[0].isupper() or name[0] == "_")


def _build_ntgd(raw: "tuple[list[Literal], list[Variable], Atom]") -> NTGD:
    """Turn a raw rule tuple from :meth:`_Parser.parse_statement` into an NTGD."""
    literals, _existentials, head = raw
    body_pos = tuple(l.atom for l in literals if l.positive)
    body_neg = tuple(l.atom for l in literals if not l.positive)
    return NTGD(body_pos, head, body_neg)


def _build_normal_rule(
    raw: "tuple[list[Literal], list[Variable], Atom]", text: str
) -> NormalRule:
    """Turn a raw rule tuple into a normal logic-programming rule."""
    literals, existentials, head = raw
    body_pos = tuple(l.atom for l in literals if l.positive)
    body_neg = tuple(l.atom for l in literals if not l.positive)
    head_vars = head.variables()
    body_vars = set().union(*(a.variables() for a in body_pos)) if body_pos else set()
    if existentials or (head_vars - body_vars):
        raise ParseError(
            f"normal rules must not have existential head variables: {text.strip()}", text=text
        )
    return NormalRule(head, body_pos, body_neg)


# ---------------------------------------------------------------------------
# Public parsing entry points
# ---------------------------------------------------------------------------


def parse_term(text: str) -> Term:
    """Parse a single term."""
    parser = _Parser(text)
    term = parser.parse_term()
    if not parser.at_end():
        raise parser.error("unexpected trailing input after term")
    return term


def parse_atom(text: str) -> Atom:
    """Parse a single atom."""
    parser = _Parser(text)
    atom = parser.parse_atom()
    if not parser.at_end():
        raise parser.error("unexpected trailing input after atom")
    return atom


def parse_literal(text: str) -> Literal:
    """Parse a single literal (atom or ``not`` atom)."""
    parser = _Parser(text)
    literal = parser.parse_literal()
    if not parser.at_end():
        raise parser.error("unexpected trailing input after literal")
    return literal


def parse_query(text: str) -> NormalBCQ:
    """Parse an NBCQ of the form ``? p(X), not q(X)``.

    A query without negated atoms is a plain BCQ.
    """
    parser = _Parser(text)
    return parser.parse_query()


def parse_ntgd(text: str) -> NTGD:
    """Parse a single NTGD (must end with a dot)."""
    parser = _Parser(text)
    statement = parser.parse_statement()
    if not parser.at_end():
        raise parser.error("unexpected trailing input after rule")
    if isinstance(statement, Atom):
        raise ParseError(f"expected a rule with '->' but got the fact {statement}", text=text)
    return _build_ntgd(statement)


def parse_normal_rule(text: str) -> NormalRule:
    """Parse a single normal logic-programming rule or fact (may use function terms)."""
    parser = _Parser(text)
    statement = parser.parse_statement()
    if not parser.at_end():
        raise parser.error("unexpected trailing input after rule")
    if isinstance(statement, Atom):
        return NormalRule(statement)
    return _build_normal_rule(statement, text)


def parse_program(text: str) -> tuple[DatalogPMProgram, Database]:
    """Parse a Datalog± program together with its database facts.

    Every statement with an arrow becomes an NTGD of the program; every bare
    fact becomes a database atom.  Returns ``(program, database)``.
    """
    parser = _Parser(text)
    ntgds: list[NTGD] = []
    facts: list[Atom] = []
    while not parser.at_end():
        statement = parser.parse_statement()
        if isinstance(statement, Atom):
            facts.append(statement)
        else:
            ntgds.append(_build_ntgd(statement))
    return DatalogPMProgram(ntgds), Database(facts)


def parse_normal_program(text: str) -> NormalProgram:
    """Parse a normal logic program (rules and facts, function terms allowed)."""
    parser = _Parser(text)
    rules: list[NormalRule] = []
    while not parser.at_end():
        statement = parser.parse_statement()
        if isinstance(statement, Atom):
            rules.append(NormalRule(statement))
        else:
            rules.append(_build_normal_rule(statement, text))
    return NormalProgram(rules)


def parse_database(text: str) -> Database:
    """Parse a database: a sequence of ground facts terminated by dots."""
    parser = _Parser(text)
    facts: list[Atom] = []
    while not parser.at_end():
        statement = parser.parse_statement()
        if not isinstance(statement, Atom):
            raise ParseError(f"databases may only contain facts, found the rule {statement}", text=text)
        facts.append(statement)
    return Database(facts)
