"""The functional (Skolem) transformation Σ ↦ Σ^f (Sec. 2.4 of the paper).

Given an NTGD ``σ = Φ(X, Y) → ∃Z Ψ(X, Z)``, its functional transformation
``σ^f`` is the normal rule ``Φ(X, Y) → Ψ(X, f_σ(X, Y))`` where ``f_σ`` is a
vector of fresh function symbols ``f_{σ,Z}``, one per existential variable
``Z``.  The functional transformation of a program Σ replaces every NTGD by
its functional transformation; the well-founded semantics of a database ``D``
under Σ is then defined as ``WFS(D ∪ Σ^f)`` (Definition 3).

Two details matter for reproducibility:

* **Skolem argument order** — the paper writes ``f_σ(X, Y)``; we use the
  universally quantified variables of σ in order of first occurrence in the
  positive body.  Example 4 of the paper uses ``f(X, Y, Z)`` for the rule
  ``R(X, Y, Z) → ∃W R(X, Z, W)``, i.e. all three body variables, which this
  convention reproduces.
* **Skolem naming** — function symbols are named deterministically from the
  rule's label (if any) or its position in the program, plus the existential
  variable's name, so re-running the transformation yields identical terms.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from .atoms import Atom
from .program import DatalogPMProgram, NormalProgram
from .rules import NTGD, NormalRule
from .substitution import Substitution
from .terms import FunctionTerm, Variable

__all__ = ["skolemize_ntgd", "skolemize_program", "skolem_function_name"]


def skolem_function_name(rule_id: str, variable: Variable) -> str:
    """Deterministic name of the Skolem function ``f_{σ,Z}``.

    ``rule_id`` identifies the NTGD σ (its label or its index in the program)
    and *variable* is the existential variable ``Z``.
    """
    return f"sk_{rule_id}_{variable.name}"


def _universal_variable_order(ntgd: NTGD) -> list[Variable]:
    """Universally quantified variables in order of first occurrence in the body."""
    seen: list[Variable] = []
    seen_set: set[Variable] = set()
    for atom in ntgd.body_pos:
        for variable in _variables_in_order(atom):
            if variable not in seen_set:
                seen_set.add(variable)
                seen.append(variable)
    return seen


def _variables_in_order(atom: Atom) -> list[Variable]:
    """Variables of *atom* in argument order (recursing into function terms)."""
    result: list[Variable] = []

    def visit(term) -> None:
        if isinstance(term, Variable):
            result.append(term)
        elif isinstance(term, FunctionTerm):
            for arg in term.args:
                visit(arg)

    for arg in atom.args:
        visit(arg)
    return result


def skolemize_ntgd(
    ntgd: NTGD,
    rule_id: Optional[str] = None,
    *,
    skolem_args: str = "universal",
) -> NormalRule:
    """Return the functional transformation ``σ^f`` of a single NTGD.

    Parameters
    ----------
    ntgd:
        The NTGD σ to transform.
    rule_id:
        Identifier used in the Skolem function names.  Defaults to the NTGD's
        ``label`` or ``"r"``.
    skolem_args:
        Which variables the Skolem terms take as arguments.

        * ``"universal"`` (default, the paper's convention): all universally
          quantified variables of σ, in body order.
        * ``"frontier"``: only the frontier variables (those shared between
          body and head).  This yields the "semi-oblivious" Skolemisation used
          by some chase implementations; exposed for experimentation.
    """
    if rule_id is None:
        rule_id = ntgd.label or "r"
    existentials = sorted(ntgd.existential_variables(), key=lambda v: v.name)
    if not existentials:
        return NormalRule(ntgd.head, ntgd.body_pos, ntgd.body_neg)

    if skolem_args == "universal":
        argument_vars: Sequence[Variable] = _universal_variable_order(ntgd)
    elif skolem_args == "frontier":
        order = _universal_variable_order(ntgd)
        frontier = ntgd.frontier_variables()
        argument_vars = [v for v in order if v in frontier]
    else:
        raise ValueError(f"unknown skolem_args mode: {skolem_args!r}")

    mapping = {
        z: FunctionTerm(skolem_function_name(rule_id, z), tuple(argument_vars))
        for z in existentials
    }
    substitution = Substitution(mapping)
    new_head = substitution.apply_atom(ntgd.head)
    return NormalRule(new_head, ntgd.body_pos, ntgd.body_neg)


def skolemize_program(
    program: DatalogPMProgram | Iterable[NTGD],
    *,
    skolem_args: str = "universal",
) -> NormalProgram:
    """Return the functional transformation ``Σ^f`` of a Datalog± program.

    Every NTGD is replaced by its functional transformation; rule identifiers
    are the NTGD labels when present, otherwise the rule's position in the
    program (``"r0"``, ``"r1"``, ...), which makes Skolem terms deterministic
    across runs.
    """
    rules: list[NormalRule] = []
    for index, ntgd in enumerate(program):
        rule_id = ntgd.label or f"r{index}"
        rules.append(skolemize_ntgd(ntgd, rule_id, skolem_args=skolem_args))
    return NormalProgram(rules)
