"""Atoms and literals (Sec. 2.1, 2.2 of the paper).

An *atom* is ``P(t₁, …, tₙ)`` for an ``n``-ary predicate ``P`` and terms
``tᵢ``.  A *literal* is an atom or a (default-)negated atom.  Both are
immutable and hashable so they can live in sets and dictionaries — the whole
library manipulates sets of atoms/literals.

The module also implements the paper's ``pred(a)`` and ``dom(a)`` notations
(:attr:`Atom.predicate` / :meth:`Atom.domain`), groundness tests and a small
amount of convenience API for building atoms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from .terms import (
    Constant,
    FunctionTerm,
    Term,
    Variable,
    is_ground_term,
    term_sort_key,
    variables_of,
)

__all__ = ["Atom", "Literal", "pos", "neg", "domain_of_atoms", "variables_of_atoms"]


@dataclass(frozen=True, slots=True)
class Atom:
    """An atomic formula ``P(t₁, …, tₙ)``.

    Parameters
    ----------
    predicate:
        The predicate (relation) name ``P``.
    args:
        The argument terms ``t₁, …, tₙ``; stored as a tuple.
    """

    predicate: str
    args: tuple[Term, ...]
    #: hash cached at construction: atoms are hashed constantly (label sets,
    #: rule indexes, waiter tables) and deep Skolem arguments make re-hashing
    #: per lookup measurably expensive; term hashes are already cached, so
    #: this is O(arity) once.
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))
        object.__setattr__(self, "_hash", hash((self.predicate, self.args)))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Atom):
            return NotImplemented
        if self._hash != other._hash:
            return False
        return self.predicate == other.predicate and self.args == other.args

    # -- basic structure ---------------------------------------------------

    @property
    def arity(self) -> int:
        """Number of arguments of the atom."""
        return len(self.args)

    def is_ground(self) -> bool:
        """Return ``True`` iff the atom contains no variables."""
        return all(is_ground_term(t) for t in self.args)

    def domain(self) -> set[Term]:
        """The set ``dom(a)`` of all arguments of the atom (as a set).

        Following the paper, ``dom(a)`` is the set of the atom's arguments;
        for ground atoms these are constants and nulls.
        """
        return set(self.args)

    def variables(self) -> set[Variable]:
        """Return the set of variables occurring (possibly nested) in the atom."""
        result: set[Variable] = set()
        for arg in self.args:
            result.update(variables_of(arg))
        return result

    def constants(self) -> set[Constant]:
        """Return the set of constants occurring at the top level of the atom."""
        return {arg for arg in self.args if isinstance(arg, Constant)}

    # -- display -----------------------------------------------------------

    def __str__(self) -> str:
        if not self.args:
            return self.predicate
        return f"{self.predicate}({', '.join(str(a) for a in self.args)})"

    def __repr__(self) -> str:
        return f"Atom({self.predicate!r}, {self.args!r})"

    # -- ordering (used for deterministic output) ---------------------------

    def sort_key(self) -> tuple[Any, ...]:
        """A total-order key: predicate name first, then argument order."""
        return (self.predicate, len(self.args), tuple(term_sort_key(a) for a in self.args))


@dataclass(frozen=True, slots=True)
class Literal:
    """A literal: an atom together with a polarity.

    ``Literal(a, positive=True)`` denotes the atom ``a`` itself and
    ``Literal(a, positive=False)`` denotes its default negation ``not a``
    (written ``¬a`` in the paper).
    """

    atom: Atom
    positive: bool = True
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.atom, self.positive)))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Literal):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.positive == other.positive
            and self.atom == other.atom
        )

    # -- construction helpers ----------------------------------------------

    def negate(self) -> "Literal":
        """Return the complementary literal (the paper's ``¬.ℓ``)."""
        return Literal(self.atom, not self.positive)

    # -- structure ----------------------------------------------------------

    @property
    def predicate(self) -> str:
        """Predicate name of the underlying atom."""
        return self.atom.predicate

    @property
    def args(self) -> tuple[Term, ...]:
        """Arguments of the underlying atom."""
        return self.atom.args

    def is_ground(self) -> bool:
        """Return ``True`` iff the underlying atom is ground."""
        return self.atom.is_ground()

    def domain(self) -> set[Term]:
        """``dom(ℓ)`` — the arguments of the underlying atom."""
        return self.atom.domain()

    def variables(self) -> set[Variable]:
        """Variables occurring in the literal."""
        return self.atom.variables()

    # -- display ------------------------------------------------------------

    def __str__(self) -> str:
        return str(self.atom) if self.positive else f"not {self.atom}"

    def __repr__(self) -> str:
        sign = "+" if self.positive else "-"
        return f"Literal({sign}{self.atom})"

    def sort_key(self) -> tuple[Any, ...]:
        """Total-order key: negative literals sort after positive ones."""
        return (0 if self.positive else 1,) + self.atom.sort_key()


def pos(atom: Atom) -> Literal:
    """Shorthand for a positive literal."""
    return Literal(atom, True)


def neg(atom: Atom) -> Literal:
    """Shorthand for a negative literal ``not atom``."""
    return Literal(atom, False)


def domain_of_atoms(atoms: Iterable[Atom]) -> set[Term]:
    """``dom(A)`` for a set of atoms: the union of the atoms' argument sets."""
    result: set[Term] = set()
    for atom in atoms:
        result.update(atom.args)
    return result


def variables_of_atoms(atoms: Iterable[Atom]) -> set[Variable]:
    """The set of variables occurring in any of the given atoms."""
    result: set[Variable] = set()
    for atom in atoms:
        result.update(atom.variables())
    return result


def atoms_with_predicate(atoms: Iterable[Atom], predicate: str) -> Iterator[Atom]:
    """Yield the atoms of *atoms* whose predicate is *predicate*."""
    for atom in atoms:
        if atom.predicate == predicate:
            yield atom
