"""Terms of the Datalog± / logic-programming language (Sec. 2.1, 2.2 of the paper).

The paper assumes three pairwise disjoint, infinite sets:

* data constants ``Δ`` — the "normal" domain of a database; under the unique
  name assumption (UNA) two distinct constants always denote distinct values,
* labelled nulls ``Δ_N`` — fresh Skolem terms acting as placeholders for
  unknown values (in the functional transformation these become *functional
  terms* ``f_σ(t₁, …, tₙ)`` built from Skolem function symbols),
* variables ``V`` — used in rules and queries.

This module provides immutable, hashable classes for each kind of term plus a
handful of utilities (collecting variables, deciding groundness, a total
lexicographic order in which every null follows every constant, as the paper
assumes).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence, Union


__all__ = [
    "Term",
    "Constant",
    "Variable",
    "FunctionTerm",
    "Null",
    "term_sort_key",
    "variables_of",
    "constants_of",
    "nulls_of",
    "is_ground_term",
    "fresh_variable_factory",
    "fresh_null_factory",
]


@dataclass(frozen=True, slots=True, order=False)
class Constant:
    """A data constant from the universe ``Δ``.

    Constants obey the unique name assumption: ``Constant("a") != Constant("b")``
    always denotes two different domain elements.  The ``name`` may be any
    string or number-like value converted to ``str`` by the parser.
    """

    name: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return str(self.name)

    def __repr__(self) -> str:
        return f"Constant({self.name!r})"


@dataclass(frozen=True, slots=True, order=False)
class Variable:
    """A variable from ``V`` (used in rules and queries, never in databases)."""

    name: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return str(self.name)

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


class FunctionTerm:
    """A functional term ``f(t₁, …, tₙ)``.

    In the functional transformation ``Σ ↦ Σ^f`` (Sec. 2.4) every existential
    variable ``Z`` of an NTGD ``σ`` is replaced by a Skolem term
    ``f_{σ,Z}(X, Y)`` over the universally quantified variables.  Ground
    functional terms therefore play the role of the labelled nulls ``Δ_N``:
    they are placeholders for unknown values.  Under the UNA a ground
    functional term is *assumed different from every constant* and two ground
    functional terms are equal iff they are syntactically equal.

    Implementation note: the chase produces terms such as
    ``t_{i+2} = f(0, t_i, t_{i+1})`` whose expanded syntax trees grow
    exponentially with the chase depth even though, as Python objects, the
    sub-terms are shared.  The hash is therefore computed once at construction
    (the arguments' hashes are already cached, so this is O(arity)), and
    equality short-circuits on identity and on the cached hashes before
    falling back to a structural comparison.
    """

    __slots__ = ("function", "args", "_hash", "_is_ground")

    def __init__(self, function: str, args: Iterable["Term"] = ()):
        object.__setattr__(self, "function", function)
        object.__setattr__(self, "args", tuple(args))
        object.__setattr__(self, "_hash", hash((function, self.args)))
        object.__setattr__(
            self, "_is_ground", all(is_ground_term(a) for a in self.args)
        )

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("FunctionTerm instances are immutable")

    @property
    def arity(self) -> int:
        """Number of arguments of the function symbol."""
        return len(self.args)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, FunctionTerm):
            return NotImplemented
        if self._hash != other._hash:
            return False
        return self.function == other.function and self.args == other.args

    def __str__(self) -> str:
        if not self.args:
            return f"{self.function}()"
        return f"{self.function}({', '.join(str(a) for a in self.args)})"

    def __repr__(self) -> str:
        return f"FunctionTerm({self.function!r}, {self.args!r})"


#: A labelled null is represented as a (ground) functional term.  The alias
#: exists purely for readability at call sites that deal with nulls produced
#: by the chase / Skolemisation.
Null = FunctionTerm

#: Union type of everything that can appear as an argument of an atom.
Term = Union[Constant, Variable, FunctionTerm]


def is_ground_term(term: Term) -> bool:
    """Return ``True`` iff *term* contains no variable.

    Constants are ground; variables are not; a functional term caches its
    groundness at construction (its sub-terms may be deeply nested and shared,
    so recomputing by recursion would be exponential in the chase depth).
    """
    if isinstance(term, Constant):
        return True
    if isinstance(term, Variable):
        return False
    return term._is_ground


def variables_of(term: Term) -> Iterator[Variable]:
    """Yield every variable occurring in *term* (with repetitions removed
    lazily by the caller if needed; duplicates may be yielded)."""
    if isinstance(term, Variable):
        yield term
    elif isinstance(term, FunctionTerm) and not term._is_ground:
        for arg in term.args:
            yield from variables_of(arg)


def constants_of(term: Term) -> Iterator[Constant]:
    """Yield every constant occurring in *term* (duplicates possible)."""
    if isinstance(term, Constant):
        yield term
    elif isinstance(term, FunctionTerm):
        for arg in term.args:
            yield from constants_of(arg)


def nulls_of(term: Term) -> Iterator[FunctionTerm]:
    """Yield every *ground* functional sub-term (labelled null) of *term*.

    Only maximal ground functional terms are yielded; their ground sub-terms
    are not yielded separately, because a labelled null is an opaque value.
    """
    if isinstance(term, FunctionTerm) and is_ground_term(term):
        yield term
    elif isinstance(term, FunctionTerm):
        for arg in term.args:
            yield from nulls_of(arg)


def term_depth(term: Term) -> int:
    """Return the nesting depth of *term* (constants/variables have depth 0)."""
    if isinstance(term, FunctionTerm):
        if not term.args:
            return 1
        return 1 + max(term_depth(arg) for arg in term.args)
    return 0


def term_sort_key(term: Term) -> tuple[Any, ...]:
    """Total order key on ground terms.

    The paper assumes a lexicographic order on ``Δ ∪ Δ_N`` in which every null
    follows every constant.  We realise this by sorting constants first
    (class rank 0), then nulls / functional terms (class rank 1), then
    variables (class rank 2, for convenience when ordering non-ground terms),
    each class ordered lexicographically by its printable form.
    """
    if isinstance(term, Constant):
        return (0, str(term.name))
    if isinstance(term, FunctionTerm):
        return (1, term.function, tuple(term_sort_key(a) for a in term.args))
    return (2, str(term.name))


def fresh_variable_factory(prefix: str = "V") -> "callable":
    """Return a zero-argument callable producing globally fresh variables.

    Each call of the returned factory yields ``Variable(f"{prefix}{i}")`` with
    an increasing counter ``i``; the counter is private to the factory so two
    factories with different prefixes never clash as long as user variables do
    not use the same prefix+digits shape.
    """
    counter = itertools.count()

    def make() -> Variable:
        return Variable(f"{prefix}{next(counter)}")

    return make


def fresh_null_factory(prefix: str = "null") -> "callable":
    """Return a zero-argument callable producing fresh labelled nulls.

    Used by the (non-Skolemising) chase variants, where each application of a
    TGD introduces brand-new nulls rather than functional terms.
    """
    counter = itertools.count()

    def make() -> FunctionTerm:
        return FunctionTerm(f"{prefix}{next(counter)}", ())

    return make


def all_terms_ground(terms: Iterable[Term]) -> bool:
    """Return ``True`` iff every term of the iterable is ground."""
    return all(is_ground_term(t) for t in terms)


def uniquify(terms: Sequence[Term]) -> list[Term]:
    """Return the terms of *terms* with duplicates removed, preserving order."""
    seen: set[Term] = set()
    result: list[Term] = []
    for term in terms:
        if term not in seen:
            seen.add(term)
            result.append(term)
    return result
