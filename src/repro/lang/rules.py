"""Rules: normal (logic-programming) rules and (normal) TGDs (Sec. 2.2, 2.4).

Two rule classes live here:

* :class:`NormalRule` — a normal logic-programming rule
  ``β₁, …, βₙ, not βₙ₊₁, …, not βₙ₊ₘ → α`` whose atoms may contain function
  symbols (this is what the functional transformation of an NTGD produces);
* :class:`NTGD` — a normal tuple-generating dependency
  ``Φ(X, Y) → ∃Z Ψ(X, Z)`` with positive and negated atoms in the body and,
  w.l.o.g., a single head atom.  A plain TGD is an NTGD with an empty negative
  body.

Guardedness (Sec. 2.4): an NTGD is *guarded* iff some positive body atom
contains every universally quantified variable of the rule; that atom is the
rule's *guard*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from ..exceptions import IllFormedRuleError, NotGuardedError
from .atoms import Atom, Literal, variables_of_atoms
from .terms import Constant, FunctionTerm, Term, Variable, is_ground_term

__all__ = ["NormalRule", "NTGD", "TGD"]


@dataclass(frozen=True, slots=True)
class NormalRule:
    """A normal logic-programming rule (Sec. 2.2, rule shape (1) of the paper).

    ``head ← body_pos, not body_neg``.  A *fact* is a rule with an empty body.
    Atoms may contain function terms (the functional transformation produces
    such rules); plain Datalog rules simply do not use them.

    Safety: every variable of the head and of the negative body must occur in
    the positive body, unless the rule is a ground fact.  Unsafe rules are
    rejected at construction time because none of the downstream semantics
    (grounding, WFS) is well defined for them.
    """

    head: Atom
    body_pos: tuple[Atom, ...] = ()
    body_neg: tuple[Atom, ...] = ()
    #: hash cached at construction (see Atom._hash): ground rules are interned
    #: by every index and the generated hash would re-walk the whole rule.
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(self, "body_pos", tuple(self.body_pos))
        object.__setattr__(self, "body_neg", tuple(self.body_neg))
        object.__setattr__(
            self, "_hash", hash((self.head, self.body_pos, self.body_neg))
        )
        self._check_safety()

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, NormalRule):
            return NotImplemented
        if self._hash != other._hash:
            return False
        return (
            self.head == other.head
            and self.body_pos == other.body_pos
            and self.body_neg == other.body_neg
        )

    def _check_safety(self) -> None:
        """Reject rules whose head/negative-body variables are not covered."""
        positive_vars = variables_of_atoms(self.body_pos)
        head_vars = self.head.variables()
        neg_vars = variables_of_atoms(self.body_neg)
        uncovered = (head_vars | neg_vars) - positive_vars
        if uncovered:
            names = ", ".join(sorted(str(v) for v in uncovered))
            raise IllFormedRuleError(
                f"unsafe rule {self}: variables {{{names}}} do not occur in the positive body"
            )

    # -- structure ----------------------------------------------------------

    @property
    def body(self) -> tuple[Literal, ...]:
        """The body as a tuple of literals (positives first)."""
        return tuple(Literal(a, True) for a in self.body_pos) + tuple(
            Literal(a, False) for a in self.body_neg
        )

    def is_fact(self) -> bool:
        """Return ``True`` iff the rule has an empty body."""
        return not self.body_pos and not self.body_neg

    def is_positive(self) -> bool:
        """Return ``True`` iff the rule has no negative body atoms."""
        return not self.body_neg

    def is_ground(self) -> bool:
        """Return ``True`` iff no variable occurs anywhere in the rule."""
        return (
            self.head.is_ground()
            and all(a.is_ground() for a in self.body_pos)
            and all(a.is_ground() for a in self.body_neg)
        )

    def variables(self) -> set[Variable]:
        """All variables occurring in the rule."""
        result = self.head.variables()
        result |= variables_of_atoms(self.body_pos)
        result |= variables_of_atoms(self.body_neg)
        return result

    def predicates(self) -> set[str]:
        """All predicate names occurring in the rule."""
        preds = {self.head.predicate}
        preds.update(a.predicate for a in self.body_pos)
        preds.update(a.predicate for a in self.body_neg)
        return preds

    def atoms(self) -> list[Atom]:
        """All atoms of the rule: head first, then positive body, then negative body."""
        return [self.head, *self.body_pos, *self.body_neg]

    def positive_part(self) -> "NormalRule":
        """The rule with its negative body removed (the paper's ``P⁺`` construction)."""
        if not self.body_neg:
            return self
        return NormalRule(self.head, self.body_pos, ())

    # -- display ------------------------------------------------------------

    def __str__(self) -> str:
        if self.is_fact():
            return f"{self.head}."
        parts = [str(a) for a in self.body_pos] + [f"not {a}" for a in self.body_neg]
        return f"{', '.join(parts)} -> {self.head}."

    def __repr__(self) -> str:
        return f"NormalRule({self})"

    def sort_key(self) -> tuple[Any, ...]:
        """Deterministic total-order key (used for reproducible output)."""
        return (
            self.head.sort_key(),
            tuple(a.sort_key() for a in self.body_pos),
            tuple(a.sort_key() for a in self.body_neg),
        )


@dataclass(frozen=True, slots=True)
class NTGD:
    """A normal tuple-generating dependency ``Φ(X, Y) → ∃Z Ψ(X, Z)`` (Sec. 2.4).

    ``body_pos`` and ``body_neg`` are the positive and negated body atoms,
    ``head`` is the single head atom (w.l.o.g. — see the paper), and the
    existential variables are exactly the head variables that do not occur in
    the body.  Atoms must not contain nulls or function terms.

    A plain TGD is an NTGD with ``body_neg == ()``; the alias :class:`TGD`
    exists for readability.
    """

    body_pos: tuple[Atom, ...]
    head: Atom
    body_neg: tuple[Atom, ...] = ()
    label: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "body_pos", tuple(self.body_pos))
        object.__setattr__(self, "body_neg", tuple(self.body_neg))
        self._check_well_formed()

    def _check_well_formed(self) -> None:
        """Enforce the syntactic conditions of Sec. 2.4."""
        if not self.body_pos:
            raise IllFormedRuleError(
                f"NTGD {self} has an empty positive body; TGDs require at least one "
                "positive body atom (use Database facts for extensional data)"
            )
        for atom in (*self.body_pos, *self.body_neg, self.head):
            for arg in atom.args:
                if isinstance(arg, FunctionTerm):
                    raise IllFormedRuleError(
                        f"NTGD {self} contains the functional term {arg}; TGDs must not "
                        "contain nulls or function symbols (apply skolemize() to *produce* them)"
                    )
        # Negative body variables must be universally quantified (occur positively):
        # otherwise negation would range over existential values, which Sec. 2.4 disallows.
        neg_vars = variables_of_atoms(self.body_neg)
        uncovered = neg_vars - self.frontier_and_body_variables()
        if uncovered:
            names = ", ".join(sorted(str(v) for v in uncovered))
            raise IllFormedRuleError(
                f"NTGD {self}: negated body variables {{{names}}} do not occur in the positive body"
            )

    # -- variable classification ---------------------------------------------

    def frontier_and_body_variables(self) -> set[Variable]:
        """The universally quantified variables: all variables of the positive body."""
        return variables_of_atoms(self.body_pos)

    def universal_variables(self) -> set[Variable]:
        """Alias of :meth:`frontier_and_body_variables` (the paper's X ∪ Y)."""
        return self.frontier_and_body_variables()

    def existential_variables(self) -> set[Variable]:
        """Head variables that are not universally quantified (the paper's Z)."""
        return self.head.variables() - self.universal_variables()

    def frontier_variables(self) -> set[Variable]:
        """Universally quantified variables shared between body and head (the paper's X)."""
        return self.head.variables() & self.universal_variables()

    # -- guardedness -----------------------------------------------------------

    def guard(self) -> Optional[Atom]:
        """Return the guard atom, i.e. a positive body atom containing every
        universally quantified variable, or ``None`` if the NTGD is not guarded.

        If several body atoms qualify, the first one (in body order) is
        returned; this mirrors the convention used by the chase engine.
        """
        universal = self.universal_variables()
        for atom in self.body_pos:
            if universal <= atom.variables():
                return atom
        return None

    def is_guarded(self) -> bool:
        """Return ``True`` iff the NTGD has a guard."""
        return self.guard() is not None

    def require_guard(self) -> Atom:
        """Return the guard or raise :class:`NotGuardedError`."""
        guard = self.guard()
        if guard is None:
            raise NotGuardedError(f"NTGD {self} is not guarded")
        return guard

    def is_positive(self) -> bool:
        """Return ``True`` iff the NTGD has no negated body atoms."""
        return not self.body_neg

    def is_linear(self) -> bool:
        """Return ``True`` iff the NTGD has exactly one positive body atom.

        Linear TGDs are the fragment underlying DL-Lite translations; exposed
        because the DL front-end produces only linear or guarded rules.
        """
        return len(self.body_pos) == 1

    # -- misc -------------------------------------------------------------------

    def predicates(self) -> set[str]:
        """All predicate names occurring in the NTGD."""
        preds = {self.head.predicate}
        preds.update(a.predicate for a in self.body_pos)
        preds.update(a.predicate for a in self.body_neg)
        return preds

    def positive_part(self) -> "NTGD":
        """The NTGD with its negated body atoms removed (the paper's Σ⁺)."""
        if not self.body_neg:
            return self
        return NTGD(self.body_pos, self.head, (), self.label)

    def max_arity(self) -> int:
        """Maximum arity of any predicate occurring in the NTGD."""
        return max(a.arity for a in (self.head, *self.body_pos, *self.body_neg))

    # -- display -------------------------------------------------------------------

    def __str__(self) -> str:
        body_parts = [str(a) for a in self.body_pos] + [f"not {a}" for a in self.body_neg]
        existentials = sorted(str(v) for v in self.existential_variables())
        if existentials:
            head_str = f"exists {', '.join(existentials)} {self.head}"
        else:
            head_str = str(self.head)
        return f"{', '.join(body_parts)} -> {head_str}."

    def __repr__(self) -> str:
        return f"NTGD({self})"

    def sort_key(self) -> tuple[Any, ...]:
        """Deterministic total-order key."""
        return (
            self.head.sort_key(),
            tuple(a.sort_key() for a in self.body_pos),
            tuple(a.sort_key() for a in self.body_neg),
        )


#: Readability alias: a TGD is an NTGD without negated body atoms.
TGD = NTGD
