"""Conjunctive queries, BCQs and normal BCQs (Sec. 2.1 and 2.3 of the paper).

* :class:`ConjunctiveQuery` — ``Q(X) = ∃Y Φ(X, Y)`` with answer variables
  ``X`` and a conjunction of atoms Φ.
* A *BCQ* is a conjunctive query without answer variables; represented by the
  same class with ``answer_variables == ()``.
* :class:`NormalBCQ` (NBCQ) — an existentially closed conjunction of atoms and
  negated atoms (Sec. 2.3).  A BCQ is the special case with no negated atoms.

Evaluation is defined against either

* a plain set of ground atoms (two-valued, closed world): a negated query atom
  holds iff no matching atom is in the set; or
* any *three-valued* interpretation object exposing ``is_true(atom)`` and
  ``is_false(atom)`` (e.g. :class:`repro.lp.interpretation.Interpretation` or
  the well-founded model produced by the Datalog± engine): a negated query
  atom ``not b`` holds for a homomorphism μ iff ``μ(b)`` is *false* (not merely
  "not true"), exactly as in the paper's definition of NBCQ satisfaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Protocol, Sequence, Union, runtime_checkable

from ..exceptions import IllFormedRuleError
from .atoms import Atom, Literal, variables_of_atoms
from .substitution import Substitution, match
from .terms import Constant, Term, Variable, is_ground_term

__all__ = [
    "ConjunctiveQuery",
    "NormalBCQ",
    "ThreeValuedLike",
    "evaluate_query",
    "query_holds",
    "query_literals",
    "as_conjunctive_query",
]


@runtime_checkable
class ThreeValuedLike(Protocol):
    """Structural protocol for three-valued interpretations.

    Anything with ``is_true``/``is_false`` membership tests can serve as the
    evaluation structure for NBCQs (the well-founded model classes implement
    this protocol).
    """

    def is_true(self, atom: Atom) -> bool:  # pragma: no cover - protocol
        ...

    def is_false(self, atom: Atom) -> bool:  # pragma: no cover - protocol
        ...

    def true_atoms(self) -> Iterable[Atom]:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query ``Q(X) = ∃Y Φ(X, Y)``.

    ``answer_variables`` is the tuple ``X`` (empty for a BCQ) and ``atoms`` is
    the conjunction Φ.  Constants may occur in the atoms; nulls may not.
    """

    atoms: tuple[Atom, ...]
    answer_variables: tuple[Variable, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "atoms", tuple(self.atoms))
        object.__setattr__(self, "answer_variables", tuple(self.answer_variables))
        if not self.atoms:
            raise IllFormedRuleError("a conjunctive query needs at least one atom")
        body_vars = variables_of_atoms(self.atoms)
        missing = set(self.answer_variables) - body_vars
        if missing:
            names = ", ".join(sorted(str(v) for v in missing))
            raise IllFormedRuleError(
                f"answer variables {{{names}}} do not occur in the query body"
            )

    def is_boolean(self) -> bool:
        """``True`` iff the query has no answer variables (a BCQ)."""
        return not self.answer_variables

    def variables(self) -> set[Variable]:
        """All variables of the query."""
        return variables_of_atoms(self.atoms)

    def existential_variables(self) -> set[Variable]:
        """The non-answer variables ``Y``."""
        return self.variables() - set(self.answer_variables)

    def predicates(self) -> set[str]:
        """Predicate names used by the query."""
        return {a.predicate for a in self.atoms}

    def __str__(self) -> str:
        head = "Q(" + ", ".join(str(v) for v in self.answer_variables) + ")"
        return f"{head} :- {', '.join(str(a) for a in self.atoms)}"


@dataclass(frozen=True)
class NormalBCQ:
    """A normal Boolean conjunctive query (Sec. 2.3).

    ``∃X p₁(X) ∧ … ∧ pₘ(X) ∧ ¬p_{m+1}(X) ∧ … ∧ ¬p_{m+n}(X)`` with m ≥ 1 and
    n ≥ 0.  ``positive`` are the p₁…pₘ and ``negative`` the ¬-free atoms
    p_{m+1}…p_{m+n}.
    """

    positive: tuple[Atom, ...]
    negative: tuple[Atom, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "positive", tuple(self.positive))
        object.__setattr__(self, "negative", tuple(self.negative))
        if not self.positive:
            raise IllFormedRuleError("an NBCQ needs at least one positive atom (m >= 1)")

    @classmethod
    def from_literals(cls, literals: Iterable[Literal]) -> "NormalBCQ":
        """Build an NBCQ from a collection of literals."""
        pos = tuple(l.atom for l in literals if l.positive)
        negs = tuple(l.atom for l in literals if not l.positive)
        return cls(pos, negs)

    def literals(self) -> tuple[Literal, ...]:
        """The query as literals, positives first."""
        return tuple(Literal(a, True) for a in self.positive) + tuple(
            Literal(a, False) for a in self.negative
        )

    def size(self) -> int:
        """The number ``n`` of literals of the query (used in Prop. 12)."""
        return len(self.positive) + len(self.negative)

    def variables(self) -> set[Variable]:
        """All variables of the query."""
        return variables_of_atoms(self.positive) | variables_of_atoms(self.negative)

    def predicates(self) -> set[str]:
        """Predicate names used by the query."""
        return {a.predicate for a in self.positive} | {a.predicate for a in self.negative}

    def is_positive(self) -> bool:
        """``True`` iff the query has no negated atoms (a plain BCQ)."""
        return not self.negative

    def __str__(self) -> str:
        parts = [str(a) for a in self.positive] + [f"not {a}" for a in self.negative]
        return "? " + ", ".join(parts)


# ---------------------------------------------------------------------------
# Normalization
# ---------------------------------------------------------------------------


def query_literals(
    query: Union["NormalBCQ", "ConjunctiveQuery", Literal, Atom],
) -> tuple[Literal, ...]:
    """Normalise any supported query form to a tuple of literals.

    Ground atoms become single positive literals; literals pass through;
    conjunctive queries contribute their atoms positively; NBCQs contribute
    positives first, then negatives.  This is the uniform query currency the
    rewriting subsystem (and the engine's query paths) operate on.
    """
    if isinstance(query, Atom):
        return (Literal(query, True),)
    if isinstance(query, Literal):
        return (query,)
    if isinstance(query, ConjunctiveQuery):
        return tuple(Literal(a, True) for a in query.atoms)
    if isinstance(query, NormalBCQ):
        return query.literals()
    raise TypeError(f"cannot normalise {type(query).__name__} to query literals")


def as_conjunctive_query(query: "NormalBCQ | ConjunctiveQuery") -> ConjunctiveQuery:
    """View an NBCQ without negation as a conjunctive query.

    Every variable becomes an answer variable (sorted by name, so answer
    tuples are deterministic) — the convention used by ``answer()``-style
    helpers when the user writes a query in NBCQ syntax.
    """
    if isinstance(query, ConjunctiveQuery):
        return query
    if query.negative:
        raise IllFormedRuleError(
            "a conjunctive query cannot contain negated atoms; use NBCQ evaluation"
        )
    variables = sorted(query.variables(), key=lambda v: v.name)
    return ConjunctiveQuery(query.positive, tuple(variables))


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


InterpretationLike = Union[ThreeValuedLike, Iterable[Atom]]


class _SetAdapter:
    """Adapt a plain set of ground atoms to the three-valued protocol.

    Truth is membership; falsity is non-membership (closed world).  This is
    the right reading for evaluating queries against a database or against the
    result of a chase.
    """

    def __init__(self, atoms: Iterable[Atom]):
        self._atoms = atoms if isinstance(atoms, (set, frozenset)) else set(atoms)
        self._by_predicate: dict[str, list[Atom]] = {}
        for atom in self._atoms:
            self._by_predicate.setdefault(atom.predicate, []).append(atom)

    def is_true(self, atom: Atom) -> bool:
        return atom in self._atoms

    def is_false(self, atom: Atom) -> bool:
        return atom not in self._atoms

    def true_atoms(self) -> Iterable[Atom]:
        return self._atoms

    def true_atoms_with_predicate(self, predicate: str) -> Iterable[Atom]:
        return self._by_predicate.get(predicate, ())


def _adapt(interpretation: InterpretationLike) -> ThreeValuedLike:
    """Wrap plain atom collections; pass through three-valued objects."""
    if isinstance(interpretation, ThreeValuedLike) and not isinstance(
        interpretation, (set, frozenset, list, tuple)
    ):
        return interpretation
    return _SetAdapter(interpretation)  # type: ignore[arg-type]


def _true_atom_index(interpretation: ThreeValuedLike) -> dict[str, list[Atom]]:
    """Predicate-indexed view of the interpretation's true atoms."""
    index: dict[str, list[Atom]] = {}
    for atom in interpretation.true_atoms():
        index.setdefault(atom.predicate, []).append(atom)
    return index


def _homomorphisms(
    positive: Sequence[Atom],
    index: dict[str, list[Atom]],
    subst: Substitution,
) -> Iterator[Substitution]:
    """Enumerate substitutions matching every positive atom to a true atom."""
    if not positive:
        yield subst
        return
    first, rest = positive[0], positive[1:]
    for candidate in index.get(first.predicate, ()):  # pragma: no branch
        extended = match(first, candidate, subst)
        if extended is not None:
            yield from _homomorphisms(rest, index, extended)


def evaluate_query(
    query: ConjunctiveQuery,
    interpretation: InterpretationLike,
) -> set[tuple[Term, ...]]:
    """Evaluate a conjunctive query and return the set of answer tuples.

    For a BCQ the result is either ``{()}`` ("yes") or ``set()`` ("no").
    Following the paper, answer tuples range over constants and nulls; the
    caller may filter nulls out if certain answers over ``Δ`` are desired.
    """
    adapted = _adapt(interpretation)
    index = _true_atom_index(adapted)
    answers: set[tuple[Term, ...]] = set()
    for hom in _homomorphisms(query.atoms, index, Substitution.empty()):
        answers.add(tuple(hom.apply_term(v) for v in query.answer_variables))
    return answers


def query_holds(
    query: Union[NormalBCQ, ConjunctiveQuery],
    interpretation: InterpretationLike,
) -> bool:
    """Decide whether a Boolean query is satisfied by the interpretation.

    For an :class:`NormalBCQ`, a homomorphism μ must map every positive atom
    to a *true* atom and every negated atom to a *false* atom of the
    interpretation (third truth value "undefined" satisfies neither), exactly
    as the paper defines NBCQ satisfaction in an interpretation ``I ⊆ Lit_P``.
    """
    adapted = _adapt(interpretation)
    index = _true_atom_index(adapted)

    if isinstance(query, ConjunctiveQuery):
        positive: Sequence[Atom] = query.atoms
        negative: Sequence[Atom] = ()
    else:
        positive = query.positive
        negative = query.negative

    for hom in _homomorphisms(positive, index, Substitution.empty()):
        if _negatives_false(negative, hom, adapted):
            return True
    return False


def _negatives_false(
    negative: Sequence[Atom], hom: Substitution, interpretation: ThreeValuedLike
) -> bool:
    """Check that every negated atom is false (in the three-valued sense) under *hom*.

    Negated query atoms must be fully instantiated by the homomorphism; if a
    variable of a negative atom occurs in no positive atom the query is
    evaluated under the convention that the atom must be false for *every*
    instantiation — which we approximate by requiring the grounded atom to be
    ground after applying the homomorphism (the parser enforces that NBCQ
    negative variables also occur positively, so this is not hit in practice).
    """
    for atom in negative:
        instantiated = hom.apply_atom(atom)
        if not instantiated.is_ground():
            raise IllFormedRuleError(
                f"negated query atom {atom} is not fully instantiated by the positive part; "
                "every variable of a negated NBCQ atom must also occur in a positive atom"
            )
        if not interpretation.is_false(instantiated):
            return False
    return True
