"""Databases, schemas and programs (Sec. 2.1, 2.2, 2.4).

* :class:`Database` — a finite set of ground atoms whose arguments are
  constants (the paper's database instances ``D``).
* :class:`Schema` — the relational schema ``R``: predicate names with arities,
  derived from programs/databases or given explicitly.  Needed for the
  locality bound δ of Prop. 12 and for workload generation.
* :class:`NormalProgram` — a finite set of :class:`~repro.lang.rules.NormalRule`
  (a normal logic program, Sec. 2.2).
* :class:`DatalogPMProgram` — a finite set of :class:`~repro.lang.rules.NTGD`
  (a (guarded) normal Datalog± program, Sec. 2.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from ..exceptions import IllFormedRuleError, NotGuardedError
from .atoms import Atom
from .rules import NTGD, NormalRule
from .terms import Constant, FunctionTerm, Term, Variable

__all__ = ["Database", "Schema", "NormalProgram", "DatalogPMProgram"]


class Database:
    """A database instance: a finite set of ground atoms over constants.

    The class behaves like a read-mostly set of :class:`~repro.lang.atoms.Atom`
    with predicate-indexed access.  Atoms must be ground; by default they must
    also be null-free (databases range over ``Δ`` only), but the check can be
    relaxed for intermediate instances produced by the chase.
    """

    def __init__(self, atoms: Iterable[Atom] = (), *, allow_nulls: bool = False):
        self._atoms: set[Atom] = set()
        self._by_predicate: dict[str, set[Atom]] = {}
        self._allow_nulls = allow_nulls
        #: monotone mutation counter: bumped on every effective add/remove,
        #: so caches can fingerprint the instance (``len`` alone cannot — an
        #: add followed by a remove lands back on the same size)
        self._version = 0
        for atom in atoms:
            self.add(atom)

    # -- mutation -------------------------------------------------------------

    def add(self, atom: Atom) -> None:
        """Add a ground atom to the database.

        Raises
        ------
        IllFormedRuleError
            If the atom is not ground, or contains a null while nulls are not
            allowed for this instance.
        """
        if not atom.is_ground():
            raise IllFormedRuleError(f"database atoms must be ground, got {atom}")
        if not self._allow_nulls:
            for arg in atom.args:
                if isinstance(arg, FunctionTerm):
                    raise IllFormedRuleError(
                        f"database atoms must be over constants only, got {atom}"
                    )
        if atom not in self._atoms:
            self._atoms.add(atom)
            self._by_predicate.setdefault(atom.predicate, set()).add(atom)
            self._version += 1

    def update(self, atoms: Iterable[Atom]) -> None:
        """Add every atom of *atoms*."""
        for atom in atoms:
            self.add(atom)

    def remove(self, atom: Atom) -> None:
        """Remove an atom from the database.

        Raises
        ------
        KeyError
            If the atom is not in the database (use :meth:`discard` for the
            tolerant variant).
        """
        if atom not in self._atoms:
            raise KeyError(atom)
        self.discard(atom)

    def discard(self, atom: Atom) -> bool:
        """Remove *atom* if present; return ``True`` iff it was removed."""
        if atom not in self._atoms:
            return False
        self._atoms.discard(atom)
        bucket = self._by_predicate.get(atom.predicate)
        if bucket is not None:
            bucket.discard(atom)
            if not bucket:
                del self._by_predicate[atom.predicate]
        self._version += 1
        return True

    @property
    def version(self) -> int:
        """The mutation counter: distinct after every effective add/remove."""
        return self._version

    # -- set-like access ---------------------------------------------------------

    def __contains__(self, atom: Atom) -> bool:
        return atom in self._atoms

    def __len__(self) -> int:
        return len(self._atoms)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._atoms)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Database):
            return self._atoms == other._atoms
        if isinstance(other, (set, frozenset)):
            return self._atoms == other
        return NotImplemented

    def atoms(self) -> frozenset[Atom]:
        """All atoms of the database as a frozen set."""
        return frozenset(self._atoms)

    def with_predicate(self, predicate: str) -> frozenset[Atom]:
        """All atoms of the database with the given predicate."""
        return frozenset(self._by_predicate.get(predicate, ()))

    def predicates(self) -> set[str]:
        """All predicate names occurring in the database."""
        return set(self._by_predicate)

    def constants(self) -> set[Constant]:
        """The active domain of the database (constants occurring in atoms)."""
        result: set[Constant] = set()
        for atom in self._atoms:
            for arg in atom.args:
                if isinstance(arg, Constant):
                    result.add(arg)
        return result

    def copy(self) -> "Database":
        """A shallow copy of the database."""
        return Database(self._atoms, allow_nulls=self._allow_nulls)

    def __str__(self) -> str:
        listed = sorted(self._atoms, key=lambda a: a.sort_key())
        return "{" + ", ".join(str(a) for a in listed) + "}"

    def __repr__(self) -> str:
        return f"Database({len(self._atoms)} atoms)"


@dataclass(frozen=True)
class Schema:
    """A relational schema ``R``: a mapping of predicate names to arities."""

    arities: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "arities", dict(self.arities))

    # -- derivation ------------------------------------------------------------

    @classmethod
    def from_atoms(cls, atoms: Iterable[Atom]) -> "Schema":
        """Infer a schema from a collection of atoms."""
        arities: dict[str, int] = {}
        for atom in atoms:
            existing = arities.get(atom.predicate)
            if existing is not None and existing != atom.arity:
                raise IllFormedRuleError(
                    f"predicate {atom.predicate} used with arities {existing} and {atom.arity}"
                )
            arities[atom.predicate] = atom.arity
        return cls(arities)

    @classmethod
    def from_program_and_database(
        cls, program: "DatalogPMProgram | NormalProgram", database: Optional[Database] = None
    ) -> "Schema":
        """Infer a schema from all atoms of a program and (optionally) a database."""
        atoms: list[Atom] = []
        for rule in program:
            if isinstance(rule, NormalRule):
                atoms.extend(rule.atoms())
            else:
                atoms.extend((rule.head, *rule.body_pos, *rule.body_neg))
        if database is not None:
            atoms.extend(database)
        return cls.from_atoms(atoms)

    # -- access ------------------------------------------------------------------

    def __contains__(self, predicate: str) -> bool:
        return predicate in self.arities

    def __len__(self) -> int:
        return len(self.arities)

    def __iter__(self) -> Iterator[str]:
        return iter(self.arities)

    def arity(self, predicate: str) -> int:
        """Arity of *predicate* (raises ``KeyError`` if unknown)."""
        return self.arities[predicate]

    def max_arity(self) -> int:
        """The maximum arity ``w`` over all predicates (0 for an empty schema)."""
        return max(self.arities.values(), default=0)

    def predicates(self) -> set[str]:
        """The set of predicate names."""
        return set(self.arities)

    def __str__(self) -> str:
        inner = ", ".join(f"{p}/{a}" for p, a in sorted(self.arities.items()))
        return "{" + inner + "}"


class NormalProgram:
    """A normal logic program: a finite set of :class:`NormalRule` (Sec. 2.2)."""

    def __init__(self, rules: Iterable[NormalRule] = ()):
        self._rules: list[NormalRule] = []
        self._seen: set[NormalRule] = set()
        for rule in rules:
            self.add(rule)

    def add(self, rule: NormalRule) -> None:
        """Add a rule (duplicates are silently ignored)."""
        if rule not in self._seen:
            self._seen.add(rule)
            self._rules.append(rule)

    def __iter__(self) -> Iterator[NormalRule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule: NormalRule) -> bool:
        return rule in self._seen

    def rules(self) -> tuple[NormalRule, ...]:
        """The rules in insertion order."""
        return tuple(self._rules)

    def facts(self) -> list[NormalRule]:
        """The rules with empty bodies."""
        return [r for r in self._rules if r.is_fact()]

    def proper_rules(self) -> list[NormalRule]:
        """The rules with non-empty bodies."""
        return [r for r in self._rules if not r.is_fact()]

    def is_positive(self) -> bool:
        """``True`` iff no rule has a negated body atom."""
        return all(r.is_positive() for r in self._rules)

    def positive_part(self) -> "NormalProgram":
        """The program ``P⁺`` obtained by deleting all negative body literals."""
        return NormalProgram(r.positive_part() for r in self._rules)

    def predicates(self) -> set[str]:
        """All predicate names occurring in the program."""
        result: set[str] = set()
        for rule in self._rules:
            result.update(rule.predicates())
        return result

    def constants(self) -> set[Constant]:
        """All constants occurring in the program (inside any rule atom)."""
        result: set[Constant] = set()
        for rule in self._rules:
            for atom in rule.atoms():
                for arg in atom.args:
                    result.update(_constants_in_term(arg))
        return result

    def function_symbols(self) -> set[tuple[str, int]]:
        """All function symbols (name, arity) occurring in the program."""
        result: set[tuple[str, int]] = set()
        for rule in self._rules:
            for atom in rule.atoms():
                for arg in atom.args:
                    result.update(_functions_in_term(arg))
        return result

    def schema(self) -> Schema:
        """The schema inferred from the program's atoms."""
        return Schema.from_program_and_database(self)

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self._rules)

    def __repr__(self) -> str:
        return f"NormalProgram({len(self._rules)} rules)"


class DatalogPMProgram:
    """A (normal) Datalog± program: a finite set of :class:`NTGD` (Sec. 2.4)."""

    def __init__(self, ntgds: Iterable[NTGD] = ()):
        self._ntgds: list[NTGD] = []
        self._seen: set[NTGD] = set()
        for ntgd in ntgds:
            self.add(ntgd)

    def add(self, ntgd: NTGD) -> None:
        """Add an NTGD (duplicates are silently ignored)."""
        if ntgd not in self._seen:
            self._seen.add(ntgd)
            self._ntgds.append(ntgd)

    def __iter__(self) -> Iterator[NTGD]:
        return iter(self._ntgds)

    def __len__(self) -> int:
        return len(self._ntgds)

    def __contains__(self, ntgd: NTGD) -> bool:
        return ntgd in self._seen

    def rules(self) -> tuple[NTGD, ...]:
        """The NTGDs in insertion order."""
        return tuple(self._ntgds)

    def is_positive(self) -> bool:
        """``True`` iff no NTGD has a negated body atom."""
        return all(r.is_positive() for r in self._ntgds)

    def is_guarded(self) -> bool:
        """``True`` iff every NTGD of the program is guarded."""
        return all(r.is_guarded() for r in self._ntgds)

    def require_guarded(self) -> None:
        """Raise :class:`NotGuardedError` unless every NTGD is guarded."""
        for ntgd in self._ntgds:
            if not ntgd.is_guarded():
                raise NotGuardedError(f"program contains the unguarded NTGD {ntgd}")

    def positive_part(self) -> "DatalogPMProgram":
        """The program Σ⁺ obtained by deleting all negated body atoms."""
        return DatalogPMProgram(r.positive_part() for r in self._ntgds)

    def predicates(self) -> set[str]:
        """All predicate names occurring in the program."""
        result: set[str] = set()
        for ntgd in self._ntgds:
            result.update(ntgd.predicates())
        return result

    def schema(self, database: Optional[Database] = None) -> Schema:
        """The schema inferred from the program (and optionally a database)."""
        return Schema.from_program_and_database(self, database)

    def max_arity(self) -> int:
        """Maximum predicate arity across the program (the paper's ``w``)."""
        return max((r.max_arity() for r in self._ntgds), default=0)

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self._ntgds)

    def __repr__(self) -> str:
        return f"DatalogPMProgram({len(self._ntgds)} NTGDs)"


def _constants_in_term(term: Term) -> set[Constant]:
    """Constants occurring anywhere inside *term*."""
    if isinstance(term, Constant):
        return {term}
    if isinstance(term, FunctionTerm):
        result: set[Constant] = set()
        for arg in term.args:
            result.update(_constants_in_term(arg))
        return result
    return set()


def _functions_in_term(term: Term) -> set[tuple[str, int]]:
    """Function symbols (name, arity) occurring anywhere inside *term*."""
    if isinstance(term, FunctionTerm):
        result = {(term.function, len(term.args))}
        for arg in term.args:
            result.update(_functions_in_term(arg))
        return result
    return set()
