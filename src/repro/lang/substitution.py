"""Substitutions, matching, unification and homomorphisms (Sec. 2.1).

The paper defines answers to conjunctive queries via *homomorphisms*: mappings
``μ : Δ ∪ Δ_N ∪ V → Δ ∪ Δ_N ∪ V`` that are the identity on constants and map
nulls to constants or nulls.  Operationally we work with *substitutions* —
finite mappings from variables (and, for homomorphisms, nulls) to terms — and
with two matching procedures:

* :func:`match` — one-way matching of a pattern atom against a target atom
  (the pattern's variables are bound, the target is left untouched).  This is
  what rule application and query evaluation over a set of ground atoms need.
* :func:`unify` — most general unifier of two atoms, used by some auxiliary
  analyses (e.g. detecting whether two rule heads can produce the same atom).

Substitutions are immutable; :meth:`Substitution.bind` returns a new one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, ItemsView, Mapping, Optional, Sequence

from .atoms import Atom, Literal
from .terms import Constant, FunctionTerm, Term, Variable, is_ground_term

__all__ = ["Substitution", "match", "match_atoms", "unify", "extend_matches"]


@dataclass(frozen=True)
class Substitution:
    """An immutable finite mapping from variables to terms.

    The mapping may also contain nulls (ground functional terms) as keys when
    it represents a homomorphism on nulls, as required by the definition of
    CQ answers in the paper.
    """

    mapping: Mapping[Term, Term] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Freeze the mapping into a plain dict we own.
        object.__setattr__(self, "mapping", dict(self.mapping))

    # -- container protocol --------------------------------------------------

    def __contains__(self, key: Term) -> bool:
        return key in self.mapping

    def __getitem__(self, key: Term) -> Term:
        return self.mapping[key]

    def __len__(self) -> int:
        return len(self.mapping)

    def __iter__(self) -> Iterator[Term]:
        return iter(self.mapping)

    def items(self) -> "ItemsView[Term, Term]":
        """Items view of the underlying mapping."""
        return self.mapping.items()

    def get(self, key: Term, default: Optional[Term] = None) -> Optional[Term]:
        """Return the image of *key* or *default* if unbound."""
        return self.mapping.get(key, default)

    # -- constructors ----------------------------------------------------------

    @classmethod
    def empty(cls) -> "Substitution":
        """The empty substitution."""
        return cls({})

    def bind(self, key: Term, value: Term) -> "Substitution":
        """Return a new substitution that additionally maps *key* to *value*.

        Raises
        ------
        ValueError
            If *key* is already bound to a different term.
        """
        existing = self.mapping.get(key)
        if existing is not None and existing != value:
            raise ValueError(f"variable {key} already bound to {existing}, cannot rebind to {value}")
        new_mapping = dict(self.mapping)
        new_mapping[key] = value
        return Substitution(new_mapping)

    def compose(self, other: "Substitution") -> "Substitution":
        """Return the composition ``self ∘ other`` applied as ``other`` after ``self``.

        Applying the result to a term ``t`` equals ``other.apply(self.apply(t))``.
        """
        new_mapping: dict[Term, Term] = {}
        for key, value in self.mapping.items():
            new_mapping[key] = other.apply_term(value)
        for key, value in other.mapping.items():
            new_mapping.setdefault(key, value)
        return Substitution(new_mapping)

    def restrict(self, keys: Iterable[Term]) -> "Substitution":
        """Return the restriction of the substitution to the given keys."""
        keys = set(keys)
        return Substitution({k: v for k, v in self.mapping.items() if k in keys})

    # -- application ------------------------------------------------------------

    def apply_term(self, term: Term) -> Term:
        """Apply the substitution to a term (recursively inside function terms).

        The original term object is returned whenever nothing changes, which
        preserves structure sharing between the deeply nested Skolem terms the
        chase produces (important for performance: see
        :class:`repro.lang.terms.FunctionTerm`).
        """
        if term in self.mapping:
            return self.mapping[term]
        if isinstance(term, FunctionTerm):
            if not self.mapping:
                return term
            new_args = tuple(self.apply_term(a) for a in term.args)
            if all(new is old for new, old in zip(new_args, term.args)):
                return term
            return FunctionTerm(term.function, new_args)
        return term

    def apply_atom(self, atom: Atom) -> Atom:
        """Apply the substitution to every argument of an atom."""
        return Atom(atom.predicate, tuple(self.apply_term(a) for a in atom.args))

    def apply_literal(self, literal: Literal) -> Literal:
        """Apply the substitution to the atom of a literal, preserving polarity."""
        return Literal(self.apply_atom(literal.atom), literal.positive)

    def apply_atoms(self, atoms: Iterable[Atom]) -> list[Atom]:
        """Apply the substitution to each atom of an iterable, keeping order."""
        return [self.apply_atom(a) for a in atoms]

    # -- inspection ---------------------------------------------------------------

    def is_ground_on(self, variables: Iterable[Variable]) -> bool:
        """Return ``True`` iff every variable of *variables* maps to a ground term."""
        return all(v in self.mapping and is_ground_term(self.mapping[v]) for v in variables)

    def __str__(self) -> str:
        inner = ", ".join(f"{k} -> {v}" for k, v in sorted(self.mapping.items(), key=lambda kv: str(kv[0])))
        return "{" + inner + "}"


# ---------------------------------------------------------------------------
# One-way matching
# ---------------------------------------------------------------------------


def _match_term(pattern: Term, target: Term, subst: Substitution) -> Optional[Substitution]:
    """Match a single pattern term against a target term under *subst*.

    Variables in the pattern are bound; constants and function symbols must
    agree exactly.  The target is typically ground but is not required to be.
    Returns the extended substitution or ``None`` if matching fails.
    """
    if isinstance(pattern, Variable):
        bound = subst.get(pattern)
        if bound is None:
            return subst.bind(pattern, target)
        return subst if bound == target else None
    if isinstance(pattern, Constant):
        return subst if pattern == target else None
    # pattern is a FunctionTerm
    if not isinstance(target, FunctionTerm):
        return None
    if pattern.function != target.function or len(pattern.args) != len(target.args):
        return None
    current: Optional[Substitution] = subst
    for p_arg, t_arg in zip(pattern.args, target.args):
        current = _match_term(p_arg, t_arg, current)
        if current is None:
            return None
    return current


def match(pattern: Atom, target: Atom, subst: Optional[Substitution] = None) -> Optional[Substitution]:
    """One-way match of a *pattern* atom against a *target* atom.

    Only the pattern's variables may be bound.  Returns the extending
    substitution, or ``None`` if the atoms do not match.
    """
    if subst is None:
        subst = Substitution.empty()
    if pattern.predicate != target.predicate or pattern.arity != target.arity:
        return None
    current: Optional[Substitution] = subst
    for p_arg, t_arg in zip(pattern.args, target.args):
        current = _match_term(p_arg, t_arg, current)
        if current is None:
            return None
    return current


def match_atoms(
    patterns: Sequence[Atom],
    facts: Iterable[Atom],
    subst: Optional[Substitution] = None,
) -> Iterator[Substitution]:
    """Enumerate all substitutions matching every pattern atom to some fact.

    This is the core join used by rule application and conjunctive-query
    evaluation: each pattern in *patterns* must be matched (independently) to
    some atom in *facts*, consistently with the bindings accumulated so far.
    The *facts* iterable is materialised once (indexed by predicate) so it may
    be any iterable.
    """
    if subst is None:
        subst = Substitution.empty()
    fact_index: dict[str, list[Atom]] = {}
    for fact in facts:
        fact_index.setdefault(fact.predicate, []).append(fact)
    yield from _match_atoms_indexed(list(patterns), fact_index, subst)


def _match_atoms_indexed(
    patterns: list[Atom],
    fact_index: Mapping[str, list[Atom]],
    subst: Substitution,
) -> Iterator[Substitution]:
    """Recursive helper of :func:`match_atoms` working on a predicate index."""
    if not patterns:
        yield subst
        return
    first, rest = patterns[0], patterns[1:]
    for fact in fact_index.get(first.predicate, ()):  # pragma: no branch
        extended = match(first, fact, subst)
        if extended is not None:
            yield from _match_atoms_indexed(rest, fact_index, extended)


def extend_matches(
    patterns: Sequence[Atom],
    fact_index: Mapping[str, Iterable[Atom]],
    initial: Substitution,
) -> Iterator[Substitution]:
    """Like :func:`match_atoms` but takes a prebuilt predicate → atoms index.

    Useful for callers that evaluate many rule bodies against the same set of
    facts and want to build the index only once.
    """
    listed = {pred: list(atoms) for pred, atoms in fact_index.items()}
    yield from _match_atoms_indexed(list(patterns), listed, initial)


# ---------------------------------------------------------------------------
# Unification (most general unifier)
# ---------------------------------------------------------------------------


def _occurs(variable: Variable, term: Term, subst: dict[Term, Term]) -> bool:
    """Occurs-check: does *variable* occur in *term* modulo *subst*?"""
    stack = [term]
    while stack:
        current = stack.pop()
        current = subst.get(current, current)
        if current == variable:
            return True
        if isinstance(current, FunctionTerm):
            stack.extend(current.args)
    return False


def _walk(term: Term, subst: dict[Term, Term]) -> Term:
    """Follow variable bindings in *subst* until a non-bound term is reached."""
    while isinstance(term, Variable) and term in subst:
        term = subst[term]
    return term


def _unify_terms(left: Term, right: Term, subst: dict[Term, Term]) -> bool:
    """Destructively extend *subst* to unify *left* and *right*; return success."""
    left = _walk(left, subst)
    right = _walk(right, subst)
    if left == right:
        return True
    if isinstance(left, Variable):
        if _occurs(left, right, subst):
            return False
        subst[left] = right
        return True
    if isinstance(right, Variable):
        if _occurs(right, left, subst):
            return False
        subst[right] = left
        return True
    if isinstance(left, FunctionTerm) and isinstance(right, FunctionTerm):
        if left.function != right.function or len(left.args) != len(right.args):
            return False
        return all(_unify_terms(a, b, subst) for a, b in zip(left.args, right.args))
    return False


def unify(left: Atom, right: Atom) -> Optional[Substitution]:
    """Return a most general unifier of the two atoms, or ``None``.

    The returned substitution is idempotent on the atoms' variables (bindings
    are fully resolved before being returned).
    """
    if left.predicate != right.predicate or left.arity != right.arity:
        return None
    raw: dict[Term, Term] = {}
    for l_arg, r_arg in zip(left.args, right.args):
        if not _unify_terms(l_arg, r_arg, raw):
            return None
    # Resolve chains so the result is directly applicable.
    resolver = Substitution(raw)
    resolved = {key: resolver.apply_term(_walk(key, raw)) for key in raw}
    return Substitution(resolved)
