"""Language layer: terms, atoms, rules, programs, queries, parsing, Skolemisation.

This package implements the syntactic objects of the paper (Sec. 2): data
constants, labelled nulls and variables; atoms and literals; normal logic
programs; (normal) TGDs with guardedness; databases; conjunctive queries and
NBCQs; the functional transformation Σ ↦ Σ^f; plus a small textual syntax.
"""

from .atoms import Atom, Literal, neg, pos
from .program import Database, DatalogPMProgram, NormalProgram, Schema
from .queries import (
    ConjunctiveQuery,
    NormalBCQ,
    as_conjunctive_query,
    evaluate_query,
    query_holds,
    query_literals,
)
from .rules import NTGD, TGD, NormalRule
from .skolem import skolemize_ntgd, skolemize_program
from .substitution import Substitution, match, match_atoms, unify
from .terms import Constant, FunctionTerm, Null, Term, Variable
from .parser import (
    parse_atom,
    parse_database,
    parse_literal,
    parse_normal_program,
    parse_normal_rule,
    parse_ntgd,
    parse_program,
    parse_query,
    parse_term,
)

__all__ = [
    "Atom",
    "Literal",
    "pos",
    "neg",
    "Database",
    "DatalogPMProgram",
    "NormalProgram",
    "Schema",
    "ConjunctiveQuery",
    "NormalBCQ",
    "as_conjunctive_query",
    "evaluate_query",
    "query_holds",
    "query_literals",
    "NTGD",
    "TGD",
    "NormalRule",
    "skolemize_ntgd",
    "skolemize_program",
    "Substitution",
    "match",
    "match_atoms",
    "unify",
    "Constant",
    "FunctionTerm",
    "Null",
    "Term",
    "Variable",
    "parse_atom",
    "parse_database",
    "parse_literal",
    "parse_normal_program",
    "parse_normal_rule",
    "parse_ntgd",
    "parse_program",
    "parse_query",
    "parse_term",
]
