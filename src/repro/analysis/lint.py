"""Structural lint rules over normal rules and databases.

Each check emits :class:`~repro.analysis.diagnostics.Diagnostic` instances
with a stable code (see ``CODE_TABLE``); the checks are purely syntactic —
no grounding, no evaluation — so linting a program is always cheap and
side-effect free.  Safety and range restriction are enforced at rule
*construction* time in this codebase (an unsafe rule cannot exist as a
``NormalRule`` value), so the linter reports those as ``E102`` only when it
is handed raw text that fails to parse; everything it checks on live rule
objects is the layer above safety: arity discipline, namespace hygiene,
redundancy (duplicates/subsumption), vacuous bodies, and reachability.
"""

from __future__ import annotations

from typing import Iterable, Optional, Protocol, Sequence

from ..lang.atoms import Atom
from ..lang.rules import NormalRule
from ..lang.terms import FunctionTerm, Term, Variable
from ..rewrite.magic import MAGIC_PREFIX
from .diagnostics import Diagnostic

__all__ = ["lint_rules"]


class _QueryLike(Protocol):
    """Anything with a predicate set: ConjunctiveQuery, NormalBCQ, …"""

    def predicates(self) -> set[str]:  # pragma: no cover - protocol
        ...


#: canonical forms produced by :func:`_canonical` — variables replaced by
#: first-occurrence names, so variant rules compare equal
_CanonAtom = tuple[str, tuple[object, ...]]
_CanonRule = tuple[_CanonAtom, tuple[_CanonAtom, ...], tuple[_CanonAtom, ...]]


def lint_rules(
    rules: Sequence[NormalRule],
    *,
    database_atoms: Optional[Iterable[Atom]] = None,
    queries: Sequence[_QueryLike] = (),
) -> list[Diagnostic]:
    """Run every structural lint rule and return the findings (unordered).

    ``database_atoms`` (the EDB, when known) feeds the arity check and
    enables the reachability checks — without a database the analyzer cannot
    know which predicates are extensional, so ``I301``/``I302`` are skipped
    rather than guessed.  ``queries`` mark predicates as consumed for the
    unused-predicate check.
    """
    rules = list(rules)
    database = list(database_atoms) if database_atoms is not None else None
    findings: list[Diagnostic] = []
    findings += _check_arities(rules, database)
    findings += _check_magic_namespace(rules)
    findings += _check_case_collisions(rules)
    findings += _check_duplicates_and_subsumption(rules)
    findings += _check_unsatisfiable_bodies(rules)
    if database is not None:
        findings += _check_reachability(rules, database, queries)
    return findings


# -- arity discipline ---------------------------------------------------------


def _check_arities(
    rules: Sequence[NormalRule], database: Optional[Sequence[Atom]]
) -> list[Diagnostic]:
    """E101: one predicate, two arities — almost always a typo."""
    seen: dict[str, dict[int, str]] = {}
    findings: list[Diagnostic] = []
    reported: set[str] = set()
    for index, rule in enumerate(rules):
        for atom in rule.atoms():
            where = f"rule {index}"
            _record_arity(atom, where, seen, reported, findings, rule_index=index)
    for atom in database or ():
        _record_arity(atom, "database", seen, reported, findings, rule_index=None)
    return findings


def _record_arity(
    atom: Atom,
    where: str,
    seen: dict[str, dict[int, str]],
    reported: set[str],
    findings: list[Diagnostic],
    *,
    rule_index: Optional[int],
) -> None:
    arities = seen.setdefault(atom.predicate, {})
    arities.setdefault(atom.arity, where)
    if len(arities) > 1 and atom.predicate not in reported:
        reported.add(atom.predicate)
        described = ", ".join(
            f"arity {arity} ({first})" for arity, first in sorted(arities.items())
        )
        findings.append(
            Diagnostic(
                "E101",
                f"predicate {atom.predicate} is used with inconsistent arities: "
                f"{described}",
                rule_index=rule_index,
                predicate=atom.predicate,
            )
        )


# -- namespace hygiene --------------------------------------------------------


def _check_magic_namespace(rules: Sequence[NormalRule]) -> list[Diagnostic]:
    """W201: user predicates inside the reserved magic-rewrite namespace."""
    findings: list[Diagnostic] = []
    flagged: set[str] = set()
    for index, rule in enumerate(rules):
        for atom in rule.atoms():
            if atom.predicate.startswith(MAGIC_PREFIX) and atom.predicate not in flagged:
                flagged.add(atom.predicate)
                findings.append(
                    Diagnostic(
                        "W201",
                        f"predicate {atom.predicate} collides with the reserved "
                        f"{MAGIC_PREFIX!r} namespace; magic-set rewriting is "
                        "disabled for programs using it",
                        rule_index=index,
                        rule=str(rule),
                        predicate=atom.predicate,
                    )
                )
    return findings


def _check_case_collisions(rules: Sequence[NormalRule]) -> list[Diagnostic]:
    """W205: two predicates that differ only by case (likely a typo)."""
    by_folded: dict[str, set[str]] = {}
    for rule in rules:
        for atom in rule.atoms():
            by_folded.setdefault(atom.predicate.lower(), set()).add(atom.predicate)
    findings: list[Diagnostic] = []
    for names in by_folded.values():
        if len(names) > 1:
            ordered = sorted(names)
            findings.append(
                Diagnostic(
                    "W205",
                    "predicate names differ only by case: " + ", ".join(ordered),
                    predicate=ordered[0],
                )
            )
    return findings


# -- redundancy ---------------------------------------------------------------


def _canonical(rule: NormalRule) -> _CanonRule:
    """The rule with variables renamed by first occurrence (variant-invariant).

    Two rules that are syntactic variants (equal up to a consistent variable
    renaming that preserves occurrence order) canonicalise identically, which
    is what the duplicate and subsumption checks compare.  This is a linter's
    approximation of θ-subsumption, not a decision procedure — it trades
    completeness for predictability.
    """
    mapping: dict[Variable, str] = {}

    def canon_term(term: Term) -> object:
        if isinstance(term, Variable):
            if term not in mapping:
                mapping[term] = f"V{len(mapping)}"
            return mapping[term]
        if isinstance(term, FunctionTerm):
            return (term.function, tuple(canon_term(a) for a in term.args))
        return term

    def canon_atom(atom: Atom) -> _CanonAtom:
        return (atom.predicate, tuple(canon_term(a) for a in atom.args))

    head = canon_atom(rule.head)
    body_pos = tuple(canon_atom(a) for a in rule.body_pos)
    body_neg = tuple(canon_atom(a) for a in rule.body_neg)
    return (head, body_pos, body_neg)


def _check_duplicates_and_subsumption(
    rules: Sequence[NormalRule],
) -> list[Diagnostic]:
    """W202 exact/variant duplicates; W203 body-superset subsumption."""
    findings: list[Diagnostic] = []
    canonical = [_canonical(rule) for rule in rules]
    seen: dict[_CanonRule, int] = {}
    for index, key in enumerate(canonical):
        if key in seen:
            findings.append(
                Diagnostic(
                    "W202",
                    f"rule duplicates rule {seen[key]}",
                    rule_index=index,
                    rule=str(rules[index]),
                )
            )
        else:
            seen[key] = index
    # Subsumption: same canonical head, body a strict subset → the wider rule
    # can never contribute an atom the narrower one does not already derive.
    for i, (head_i, pos_i, neg_i) in enumerate(canonical):
        for j, (head_j, pos_j, neg_j) in enumerate(canonical):
            if i == j or head_i != head_j:
                continue
            if canonical[i] == canonical[j]:
                continue  # duplicates already reported
            if set(pos_i) <= set(pos_j) and set(neg_i) <= set(neg_j):
                findings.append(
                    Diagnostic(
                        "W203",
                        f"rule is subsumed by rule {i} (same head, body superset)",
                        rule_index=j,
                        rule=str(rules[j]),
                    )
                )
    return findings


def _check_unsatisfiable_bodies(rules: Sequence[NormalRule]) -> list[Diagnostic]:
    """W204: an atom required both positively and negatively can never hold."""
    findings: list[Diagnostic] = []
    for index, rule in enumerate(rules):
        clash = set(rule.body_pos) & set(rule.body_neg)
        if clash:
            atom = sorted(clash, key=str)[0]
            findings.append(
                Diagnostic(
                    "W204",
                    f"body requires {atom} both positively and under negation; "
                    "the rule can never fire",
                    rule_index=index,
                    rule=str(rule),
                    predicate=atom.predicate,
                )
            )
    return findings


# -- reachability -------------------------------------------------------------


def _check_reachability(
    rules: Sequence[NormalRule],
    database: Sequence[Atom],
    queries: Sequence[_QueryLike],
) -> list[Diagnostic]:
    """I301 sourceless body predicates; I302 derived-but-never-consumed.

    Both are informational: facts can legitimately arrive after analysis
    (view maintenance) and "unused" heads are often the program's outputs
    when no query is supplied.
    """
    heads = {rule.head.predicate for rule in rules}
    edb = {atom.predicate for atom in database}
    consumed: set[str] = set()
    for query in queries:
        consumed.update(query.predicates())
    body_predicates: dict[str, int] = {}
    for index, rule in enumerate(rules):
        for atom in list(rule.body_pos) + list(rule.body_neg):
            body_predicates.setdefault(atom.predicate, index)
    findings: list[Diagnostic] = []
    for predicate, index in sorted(body_predicates.items()):
        if predicate not in heads and predicate not in edb:
            findings.append(
                Diagnostic(
                    "I301",
                    f"body predicate {predicate} has no rule deriving it and no "
                    "facts in the database; rules using it cannot fire until "
                    "facts arrive",
                    rule_index=index,
                    predicate=predicate,
                )
            )
    for predicate in sorted(heads):
        if predicate not in body_predicates and predicate not in consumed:
            findings.append(
                Diagnostic(
                    "I302",
                    f"derived predicate {predicate} is never consumed by a body "
                    "or query (it may be the program's output)",
                    predicate=predicate,
                )
            )
    return findings
