"""The diagnostics framework: stable codes, severities, structured reports.

Every finding of the static analyzer is a :class:`Diagnostic` — a stable
machine-readable code (``E1xx`` errors, ``W2xx`` warnings, ``I3xx``
informational notes), a :class:`Severity`, a human message and an optional
span (rule index + rendered rule, predicate).  A whole pass over a program
yields an :class:`AnalysisReport`: the diagnostics plus the *capability
verdicts* (termination criterion, stratification, guardedness, planner
hints) that the engines consume.

The code space is documented in ``docs/analysis.md``; codes are part of the
public contract (tests and CI pin them), so a code is never renumbered —
retired codes are simply never reused.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterator, Optional, Sequence

__all__ = ["Severity", "Diagnostic", "AnalysisReport", "CODE_TABLE"]


class Severity(str, Enum):
    """Severity ladder of a diagnostic, orderable via :attr:`rank`."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Numeric rank: higher is more severe."""
        return {"error": 2, "warning": 1, "info": 0}[self.value]


#: The stable diagnostic code space.  ``E`` codes make a program unusable (or
#: its analysis impossible), ``W`` codes flag likely defects that do not stop
#: evaluation, ``I`` codes surface structural facts worth knowing.
CODE_TABLE: dict[str, str] = {
    "E101": "predicate used with inconsistent arities",
    "E102": "ill-formed program (parse or safety violation)",
    "E103": "program rejected by the termination policy",
    "W201": "predicate name collides with the reserved magic namespace",
    "W202": "duplicate rule",
    "W203": "rule subsumed by another rule",
    "W204": "trivially unsatisfiable body (an atom occurs positively and negated)",
    "W205": "predicate names differ only by case",
    "W206": "unguarded NTGD (the guarded chase engine will reject it)",
    "W207": "no static termination criterion holds (chase may not terminate)",
    "I301": "body predicate has no derivation source (rule can never fire)",
    "I302": "derived predicate is never consumed",
    "I303": "unstratified negation (handled by the WFS; stratified engines reject)",
    "I304": "existential rule set (Skolem functions in the functional transformation)",
}

_SEVERITY_BY_PREFIX = {
    "E": Severity.ERROR,
    "W": Severity.WARNING,
    "I": Severity.INFO,
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the analyzer.

    ``code`` is a stable identifier from :data:`CODE_TABLE`; the severity is
    derived from its prefix and cannot disagree with it.  ``rule_index`` and
    ``rule`` locate the finding inside the analyzed program (rule order as
    given), ``predicate`` names the offending predicate when the finding is
    about one; both spans are optional because some findings are global.
    """

    code: str
    message: str
    rule_index: Optional[int] = None
    rule: Optional[str] = None
    predicate: Optional[str] = None

    def __post_init__(self) -> None:
        if self.code not in CODE_TABLE:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def severity(self) -> Severity:
        """Severity, derived from the code prefix (``E``/``W``/``I``)."""
        return _SEVERITY_BY_PREFIX[self.code[0]]

    def span(self) -> str:
        """The human-readable location of the finding (may be empty)."""
        parts = []
        if self.rule_index is not None:
            parts.append(f"rule {self.rule_index}")
        if self.predicate is not None:
            parts.append(f"predicate {self.predicate}")
        return ", ".join(parts)

    def render(self) -> str:
        """One-line lint-style rendering: ``CODE severity: message [span]``."""
        line = f"{self.code} {self.severity.value}: {self.message}"
        span = self.span()
        if span:
            line += f"  [{span}]"
        return line

    def to_json(self) -> dict[str, Any]:
        """A JSON-ready dict (stable key set; ``None`` spans omitted)."""
        payload: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.rule_index is not None:
            payload["rule_index"] = self.rule_index
        if self.rule is not None:
            payload["rule"] = self.rule
        if self.predicate is not None:
            payload["predicate"] = self.predicate
        return payload

    def sort_key(self) -> tuple[int, str, int, str]:
        """Deterministic order: severity first, then code, then span."""
        return (
            -self.severity.rank,
            self.code,
            -1 if self.rule_index is None else self.rule_index,
            self.predicate or "",
        )


@dataclass(frozen=True)
class AnalysisReport:
    """The result of one static-analysis pass.

    ``diagnostics`` are the lint findings in deterministic order;
    ``verdicts`` are the machine-readable capability verdicts the planner
    and the engines consume (see :func:`repro.analysis.planner.analyze` for
    the exact key set); ``summary`` carries cheap program statistics (rule
    and predicate counts) for rendering.
    """

    diagnostics: tuple[Diagnostic, ...]
    verdicts: dict[str, Any] = field(default_factory=dict)
    summary: dict[str, Any] = field(default_factory=dict)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    # -- selection ----------------------------------------------------------

    def errors(self) -> tuple[Diagnostic, ...]:
        """The error-severity findings."""
        return self._with_severity(Severity.ERROR)

    def warnings(self) -> tuple[Diagnostic, ...]:
        """The warning-severity findings."""
        return self._with_severity(Severity.WARNING)

    def infos(self) -> tuple[Diagnostic, ...]:
        """The info-severity findings."""
        return self._with_severity(Severity.INFO)

    def _with_severity(self, severity: Severity) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is severity)

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        """The findings with the given code."""
        return tuple(d for d in self.diagnostics if d.code == code)

    def codes(self) -> frozenset[str]:
        """The set of codes present in the report."""
        return frozenset(d.code for d in self.diagnostics)

    def is_clean(self, *, strict: bool = False) -> bool:
        """``True`` iff the report gates nothing (warnings gate under strict)."""
        return self.exit_code(strict=strict) == 0

    def exit_code(self, *, strict: bool = False) -> int:
        """Lint-style exit code: 2 on errors, 1 on warnings under strict, else 0."""
        if self.errors():
            return 2
        if strict and self.warnings():
            return 1
        return 0

    # -- rendering ----------------------------------------------------------

    def render(self) -> str:
        """The human-readable report: findings, verdicts, one-line summary."""
        lines: list[str] = []
        for diagnostic in self.diagnostics:
            lines.append(diagnostic.render())
        if self.verdicts:
            lines.append("verdicts:")
            for key in sorted(self.verdicts):
                lines.append(f"  {key} = {_render_value(self.verdicts[key])}")
        counts = (
            f"{len(self.errors())} error(s), {len(self.warnings())} warning(s), "
            f"{len(self.infos())} note(s)"
        )
        if self.summary:
            counts += (
                f" over {self.summary.get('rules', 0)} rule(s), "
                f"{self.summary.get('predicates', 0)} predicate(s)"
            )
        lines.append(counts)
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        """A JSON-ready dict with stable keys (``json.dumps``-safe)."""
        return {
            "diagnostics": [d.to_json() for d in self.diagnostics],
            "verdicts": _jsonable(self.verdicts),
            "summary": _jsonable(self.summary),
            "exit_code": self.exit_code(),
            "exit_code_strict": self.exit_code(strict=True),
        }

    def to_json_text(self, *, indent: int = 2) -> str:
        """The report serialised as a JSON document."""
        return json.dumps(self.to_json(), indent=indent, sort_keys=True)


def make_report(
    diagnostics: Sequence[Diagnostic],
    verdicts: Optional[dict[str, Any]] = None,
    summary: Optional[dict[str, Any]] = None,
) -> AnalysisReport:
    """An :class:`AnalysisReport` with the findings deterministically ordered."""
    ordered = tuple(sorted(diagnostics, key=Diagnostic.sort_key))
    return AnalysisReport(ordered, dict(verdicts or {}), dict(summary or {}))


def _render_value(value: Any) -> str:
    if isinstance(value, dict):
        inner = ", ".join(f"{k}={_render_value(v)}" for k, v in sorted(value.items()))
        return "{" + inner + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_render_value(v) for v in value) + "]"
    return str(value)


def _jsonable(value: Any) -> Any:
    """Recursively coerce report values to JSON-serialisable shapes."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_jsonable(v) for v in value]
        if isinstance(value, (set, frozenset)):
            items.sort(key=str)
        return items
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
