"""The chase-termination (acyclicity) hierarchy: weak ⊂ joint ⊂ super-weak.

The engines evaluate skolemized programs: every existential variable of an
NTGD has become a function (Skolem) term in the head of a normal rule, so
"the chase creates a fresh null" reads, syntactically, "a head argument is a
function term over body variables".  All three criteria below are therefore
defined directly on :class:`~repro.lang.rules.NormalRule` sets, with each
head position holding a variable-carrying non-variable term acting as a
*generator* (the skolemized image of an existential variable):

* **Weak acyclicity** (Fagin–Kolaitis–Miller–Popa): the classical position
  graph — a variable flowing from a body position into a head position adds
  a regular edge, into a generator a *special* edge; the program is weakly
  acyclic iff no cycle passes through a special edge.  This is the single
  source of truth the magic rewriting used to carry privately
  (``rewrite/magic.py`` now delegates here).
* **Joint acyclicity** (Krötzsch–Rudolph): per generator ``g``, compute the
  set ``Move(g)`` of positions its nulls can travel to — a variable whose
  positive-body occurrences all lie inside ``Move(g)`` can be bound to a
  ``g``-null and carries it to its direct head positions.  Generator ``g₁``
  feeds ``g₂`` when some feed variable of ``g₂`` (a variable under ``g₂``'s
  function term) has all its body occurrences inside ``Move(g₁)``; the
  program is jointly acyclic iff the feeds graph is acyclic.  Tracking
  *where nulls can actually go* instead of single-edge adjacency strictly
  widens the fragment: ``a(X,Y), b(Y) → ∃Z a(Y,Z)`` is weakly cyclic but
  jointly acyclic (the null lands in ``a``'s second position only, and the
  rule also requires ``b(Y)``, which nulls never reach).
* **Super-weak acyclicity** (Marnette): the same propagation computed over
  *places* — concrete ``(head atom, position)`` pairs — where a body
  occurrence counts as covered only when some creation place of the same
  predicate/position **unifies** with the body atom.  Unification sees the
  constants and function structure position-level flow ignores, widening the
  fragment again: ``p(X, a) → ∃Z p(Z, b)`` is jointly cyclic (position
  ``p[0]`` feeds itself) but super-weakly acyclic (``p(·, b)`` never
  unifies with the body pattern ``p(·, a)``).

Each criterion provably subsumes the previous one (a joint-feeds cycle maps
to a position-graph cycle through a special edge; a place is covered only if
its bare position is), and :func:`is_jointly_acyclic` /
:func:`is_super_weakly_acyclic` additionally *enforce* the containment by
disjunction, so the hierarchy property the test-suite pins — accepted by a
criterion ⇒ accepted by every wider one — holds by construction as well as
by theorem.  :func:`termination_verdict` names the strongest criterion that
passed; "strongest" means the narrowest fragment, because a stronger
criterion certifies more (weak acyclicity bounds term depth outright, the
wider criteria only bound the skolem-chase).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, Optional, Sequence, TypeVar, cast

from ..lang.atoms import Atom
from ..lang.rules import NormalRule
from ..lang.terms import FunctionTerm, Term, Variable, variables_of
from ..lp.fixpoint import strongly_connected_components

__all__ = [
    "TerminationVerdict",
    "CRITERIA",
    "weak_acyclicity_violation",
    "joint_acyclicity_violation",
    "super_weak_acyclicity_violation",
    "is_weakly_acyclic",
    "is_jointly_acyclic",
    "is_super_weakly_acyclic",
    "termination_verdict",
]

Position = tuple[str, int]

_Node = TypeVar("_Node", bound=Hashable)


def _sccs(graph: Mapping[_Node, set[_Node]]) -> list[list[_Node]]:
    """Typed front for :func:`strongly_connected_components` (``Hashable`` keys)."""
    generic = cast("Mapping[Hashable, Iterable[Hashable]]", graph)
    return cast("list[list[_Node]]", strongly_connected_components(generic))

#: The hierarchy, narrowest criterion first.  ``function-free`` is the
#: degenerate bottom: a program without function symbols grounds finitely no
#: matter what, so no acyclicity reasoning is needed at all.
CRITERIA: tuple[str, ...] = ("function-free", "weak", "joint", "super-weak")


@dataclass(frozen=True)
class TerminationVerdict:
    """The outcome of running a rule set through the acyclicity hierarchy.

    ``criterion`` is the strongest (narrowest) member of :data:`CRITERIA`
    that accepted the program, or ``None`` when every static test failed;
    ``reason`` explains the first failure past the accepted criterion (for an
    accepted program: why the *next narrower* criterion rejected it, which is
    ``None`` for ``function-free``/``weak``), and for a fully rejected
    program: why even super-weak acyclicity fails.
    """

    criterion: Optional[str]
    reason: Optional[str] = None

    @property
    def terminating(self) -> bool:
        """``True`` iff some static criterion certified chase termination."""
        return self.criterion is not None

    def accepts_at_least(self, criterion: str) -> bool:
        """Was the program accepted by *criterion* (or something stronger)?"""
        if criterion not in CRITERIA:
            raise ValueError(f"unknown criterion {criterion!r}; expected one of {CRITERIA}")
        if self.criterion is None:
            return False
        return CRITERIA.index(self.criterion) <= CRITERIA.index(criterion)


# -- shared structure ---------------------------------------------------------


def _body_positions(rule: NormalRule) -> dict[Variable, set[Position]]:
    """Positive-body occurrence positions per variable (nested included).

    A variable sitting under a function term in a body pattern still receives
    (sub)terms of whatever instance matches the position, so nested
    occurrences count as occurrences — the over-approximation every criterion
    here needs for soundness.
    """
    positions: dict[Variable, set[Position]] = {}
    for atom in rule.body_pos:
        for index, arg in enumerate(atom.args):
            for variable in set(variables_of(arg)):
                positions.setdefault(variable, set()).add((atom.predicate, index))
    return positions


def _direct_head_positions(rule: NormalRule) -> dict[Variable, set[Position]]:
    """Head positions where a variable occurs *directly* (not under a function).

    Only direct occurrences propagate a null unchanged; an occurrence nested
    under a function term creates a new term and is accounted for by the
    generator machinery instead.
    """
    positions: dict[Variable, set[Position]] = {}
    for index, arg in enumerate(rule.head.args):
        if isinstance(arg, Variable):
            positions.setdefault(arg, set()).add((rule.head.predicate, index))
    return positions


@dataclass(frozen=True)
class _Generator:
    """One null-creation site: a variable-carrying function term in a head.

    A Skolem term repeated at several head positions — the skolemization of an
    existential variable occurring more than once in the head, as in
    ``b(X) → p(f(X), f(X))`` — is ONE null occupying all those positions
    simultaneously, so a site is keyed by the creating *term* and records
    every head position holding it.  Seeding the Move sets with only one of
    the positions would miss feeds cycles that need the null at two positions
    at once (e.g. through a body ``p(U, U)``).
    """

    rule_index: int
    rule: NormalRule
    term: Term  # the creating (Skolem) term
    positions: tuple[int, ...]  # every head argument index holding it

    @property
    def targets(self) -> frozenset[Position]:
        return frozenset((self.rule.head.predicate, i) for i in self.positions)

    @property
    def places(self) -> frozenset["Place"]:
        return frozenset((self.rule_index, i) for i in self.positions)

    @property
    def feed_variables(self) -> frozenset[Variable]:
        return frozenset(variables_of(self.term))

    def describe(self) -> str:
        predicate = self.rule.head.predicate
        spots = ", ".join(f"{predicate}[{i}]" for i in self.positions)
        return f"rule {self.rule} creates fresh terms at position(s) {spots}"


def _generators(rules: Sequence[NormalRule]) -> list[_Generator]:
    """All null-creation sites of the rule set, in deterministic order."""
    found: list[_Generator] = []
    for rule_index, rule in enumerate(rules):
        by_term: dict[Term, list[int]] = {}
        for position, arg in enumerate(rule.head.args):
            if not isinstance(arg, Variable) and set(variables_of(arg)):
                by_term.setdefault(arg, []).append(position)
        for term, positions in by_term.items():
            found.append(_Generator(rule_index, rule, term, tuple(positions)))
    return found


def _cycle_witness(
    edges: Mapping[_Node, set[_Node]],
) -> Optional[list[_Node]]:
    """Some node set forming a cycle (an SCC with an internal edge), or ``None``."""
    for component in _sccs(edges):
        if len(component) > 1:
            return list(component)
        node = component[0]
        if node in edges.get(node, ()):  # self-loop
            return [node]
    return None


# -- weak acyclicity ----------------------------------------------------------


def weak_acyclicity_violation(rules: Iterable[NormalRule]) -> Optional[str]:
    """A reason the rule set is not weakly acyclic, or ``None`` if it is.

    The standard position graph of Fagin et al.: nodes are ``(predicate,
    argument position)``; a variable flowing from a positive body position
    into a head position contributes a *regular* edge when it appears there
    directly, and a *special* edge when it appears nested inside a function
    (Skolem) term — the positions where fresh terms are created.  A cycle
    through a special edge means the chase can build ever-deeper terms; weak
    acyclicity bounds term depth and guarantees saturation.
    """
    edges: dict[Position, set[Position]] = {}
    special: list[tuple[Position, Position, NormalRule]] = []
    for rule in rules:
        var_positions = _body_positions(rule)
        for position, arg in enumerate(rule.head.args):
            target = (rule.head.predicate, position)
            edges.setdefault(target, set())
            nested = not isinstance(arg, Variable)
            for variable in set(variables_of(arg)):
                for source in var_positions.get(variable, ()):
                    edges.setdefault(source, set()).add(target)
                    if nested:
                        special.append((source, target, rule))
    component = {
        node: index
        for index, members in enumerate(_sccs(edges))
        for node in members
    }
    for source, target, rule in special:
        if component.get(source) == component.get(target):
            return (
                f"existential recursion (rule {rule} makes the position graph "
                f"cyclic through a Skolem position {target[0]}[{target[1]}]; "
                "not weakly acyclic)"
            )
    return None


def is_weakly_acyclic(rules: Iterable[NormalRule]) -> bool:
    """``True`` iff the position graph has no cycle through a special edge."""
    return weak_acyclicity_violation(rules) is None


# -- joint acyclicity ---------------------------------------------------------


def _joint_move(generator: _Generator, rules: Sequence[NormalRule]) -> set[Position]:
    """``Move(g)``: the positions a generator's nulls can travel to."""
    move: set[Position] = set(generator.targets)
    changed = True
    while changed:
        changed = False
        for rule in rules:
            body = _body_positions(rule)
            head = _direct_head_positions(rule)
            for variable, occurrences in body.items():
                if occurrences <= move:
                    targets = head.get(variable, set())
                    if not targets <= move:
                        move |= targets
                        changed = True
    return move


def joint_acyclicity_violation(rules: Iterable[NormalRule]) -> Optional[str]:
    """A reason the rule set is not jointly acyclic, or ``None`` if it is.

    Builds the generator feeds graph — ``g₁ → g₂`` iff some feed variable of
    ``g₂`` has every positive-body occurrence inside ``Move(g₁)`` — and
    reports a cycle witness if one exists.
    """
    rules = list(rules)
    generators = _generators(rules)
    if not generators:
        return None
    moves = {g: _joint_move(g, rules) for g in generators}
    edges: dict[_Generator, set[_Generator]] = {g: set() for g in generators}
    for source in generators:
        move = moves[source]
        for target in generators:
            body = _body_positions(target.rule)
            if any(
                variable in body and body[variable] <= move
                for variable in target.feed_variables
            ):
                edges[source].add(target)
    cycle = _cycle_witness(edges)
    if cycle is None:
        return None
    witness = cycle[0]
    return (
        "existential feeds cycle: nulls created by one rule can reach every "
        f"body occurrence of a feed variable of another ({witness.describe()}; "
        "not jointly acyclic)"
    )


def is_jointly_acyclic(rules: Iterable[NormalRule]) -> bool:
    """``True`` iff weakly acyclic or the generator feeds graph is acyclic.

    Joint acyclicity subsumes weak acyclicity (Krötzsch–Rudolph); the
    disjunction makes the containment structural, so the hierarchy property
    can never regress silently.
    """
    rules = list(rules)
    return is_weakly_acyclic(rules) or joint_acyclicity_violation(rules) is None


# -- super-weak acyclicity ----------------------------------------------------

Place = tuple[int, int]  # (rule index — identifying its head atom, position)


def _rename_apart(atom: Atom, suffix: str) -> Atom:
    """The atom with every variable renamed by *suffix* (for unification)."""

    def rename(term: Term) -> Term:
        if isinstance(term, Variable):
            return Variable(f"{term.name}{suffix}")
        if isinstance(term, FunctionTerm):
            return FunctionTerm(term.function, tuple(rename(a) for a in term.args))
        return term

    return Atom(atom.predicate, tuple(rename(a) for a in atom.args))


def _unify_terms(left: Term, right: Term, bindings: dict[Variable, Term]) -> bool:
    """Destructive syntactic unification with occurs check (small patterns)."""

    def resolve(term: Term) -> Term:
        while isinstance(term, Variable) and term in bindings:
            term = bindings[term]
        return term

    def occurs(variable: Variable, term: Term) -> bool:
        term = resolve(term)
        if term == variable:
            return True
        if isinstance(term, FunctionTerm):
            return any(occurs(variable, a) for a in term.args)
        return False

    left, right = resolve(left), resolve(right)
    if left == right:
        return True
    if isinstance(left, Variable):
        if occurs(left, right):
            return False
        bindings[left] = right
        return True
    if isinstance(right, Variable):
        return _unify_terms(right, left, bindings)
    if isinstance(left, FunctionTerm) and isinstance(right, FunctionTerm):
        if left.function != right.function or len(left.args) != len(right.args):
            return False
        return all(_unify_terms(a, b, bindings) for a, b in zip(left.args, right.args))
    return False


def _atoms_unify(left: Atom, right: Atom) -> bool:
    """Do the two atom patterns unify (variables renamed apart)?"""
    if left.predicate != right.predicate or left.arity != right.arity:
        return False
    left = _rename_apart(left, "'l")
    right = _rename_apart(right, "'r")
    bindings: dict[Variable, Term] = {}
    return all(
        _unify_terms(a, b, bindings) for a, b in zip(left.args, right.args)
    )


def _swa_covered(
    body_atom: Atom, position: int, places: set[Place], rules: Sequence[NormalRule]
) -> bool:
    """Is a body occurrence covered by some unifiable creation place?"""
    for rule_index, place_position in places:
        head = rules[rule_index].head
        if place_position != position:
            continue
        if _atoms_unify(head, body_atom):
            return True
    return False


def _swa_move(generator: _Generator, rules: Sequence[NormalRule]) -> set[Place]:
    """``Move(g)`` over places: where a null can travel, seen through unification."""
    move: set[Place] = set(generator.places)
    changed = True
    while changed:
        changed = False
        for rule_index, rule in enumerate(rules):
            for variable in _direct_head_positions(rule):
                if _swa_all_covered(variable, rule, move, rules):
                    new_places = {
                        (rule_index, index)
                        for index, arg in enumerate(rule.head.args)
                        if arg == variable
                    }
                    if not new_places <= move:
                        move |= new_places
                        changed = True
    return move


def _swa_all_covered(
    variable: Variable,
    rule: NormalRule,
    places: set[Place],
    rules: Sequence[NormalRule],
) -> bool:
    """Are all positive-body occurrences of *variable* in *rule* covered?"""
    found = False
    for atom in rule.body_pos:
        for index, arg in enumerate(atom.args):
            if variable in set(variables_of(arg)):
                found = True
                if not _swa_covered(atom, index, places, rules):
                    return False
    return found


def super_weak_acyclicity_violation(rules: Iterable[NormalRule]) -> Optional[str]:
    """A reason the rule set is not super-weakly acyclic, or ``None`` if it is.

    The joint-acyclicity feeds graph recomputed over unification-filtered
    places: coverage demands an actual unifier between the creating head atom
    and the consuming body atom, so constants and function structure that
    provably block a null's flow break the cycle.
    """
    rules = list(rules)
    generators = _generators(rules)
    if not generators:
        return None
    moves = {g: _swa_move(g, rules) for g in generators}
    edges: dict[_Generator, set[_Generator]] = {g: set() for g in generators}
    for source in generators:
        move = moves[source]
        for target in generators:
            if any(
                _swa_all_covered(variable, target.rule, move, rules)
                for variable in target.feed_variables
            ):
                edges[source].add(target)
    cycle = _cycle_witness(edges)
    if cycle is None:
        return None
    witness = cycle[0]
    return (
        "existential feeds cycle survives unification filtering "
        f"({witness.describe()}; not super-weakly acyclic)"
    )


def is_super_weakly_acyclic(rules: Iterable[NormalRule]) -> bool:
    """``True`` iff jointly acyclic or the place-level feeds graph is acyclic.

    Super-weak acyclicity subsumes joint acyclicity (Marnette); as with
    :func:`is_jointly_acyclic` the containment is also enforced structurally.
    """
    rules = list(rules)
    return is_jointly_acyclic(rules) or super_weak_acyclicity_violation(rules) is None


# -- the verdict --------------------------------------------------------------


def _is_function_free(rules: Sequence[NormalRule]) -> bool:
    """No function (Skolem) term anywhere: grounding is finite outright."""
    return not any(
        isinstance(arg, FunctionTerm)
        for rule in rules
        for atom in rule.atoms()
        for arg in atom.args
    )


def termination_verdict(rules: Iterable[NormalRule]) -> TerminationVerdict:
    """Run the hierarchy narrowest-first and name the strongest passing criterion.

    ``function-free`` → ``weak`` → ``joint`` → ``super-weak``; a program that
    fails all four gets ``criterion=None`` with the super-weak witness as the
    reason (the widest test's failure is the binding one — everything narrower
    fails a fortiori).
    """
    rules = list(rules)
    if _is_function_free(rules):
        return TerminationVerdict("function-free")
    weak_reason = weak_acyclicity_violation(rules)
    if weak_reason is None:
        return TerminationVerdict("weak")
    joint_reason = joint_acyclicity_violation(rules)
    if joint_reason is None:
        return TerminationVerdict("joint", reason=weak_reason)
    swa_reason = super_weak_acyclicity_violation(rules)
    if swa_reason is None:
        return TerminationVerdict("super-weak", reason=joint_reason)
    return TerminationVerdict(None, reason=swa_reason)
