"""The predicate dependency-graph analyzer.

Structural facts the lint rules and the planner both consume: the positive
and negative predicate dependency edges (shared with
:mod:`repro.lp.stratification` — one edge definition, two consumers), the
strongly connected components of the combined graph, a stratification
witness (stratum assignment) when one exists, and when none does a *minimal
negative-cycle explanation*: the shortest predicate cycle through a negative
edge, so "not stratified" always comes with a concrete loop to stare at.
Guardedness classification of NTGDs (guarded / linear / unguarded per rule)
lives here too, since it is the other paper-level structural property the
planner keys on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Union

from ..exceptions import NotStratifiedError
from ..lang.program import DatalogPMProgram, NormalProgram
from ..lang.rules import NTGD, NormalRule
from ..lp.stratification import dependency_graph, stratify
from .termination import _sccs

__all__ = [
    "DependencyAnalysis",
    "GuardednessProfile",
    "analyze_dependencies",
    "negative_cycle_witness",
    "guardedness_profile",
]

Edge = tuple[str, str]


@dataclass(frozen=True)
class DependencyAnalysis:
    """Everything the analyzer knows about a program's predicate graph.

    ``positive_edges``/``negative_edges`` are ``(head, dependency)`` pairs;
    ``components`` are the SCCs of the combined graph in dependencies-first
    order; ``strata`` is a stratification witness (predicate → stratum) when
    the program is stratified, else ``None`` with ``negative_cycle`` holding
    the shortest cycle through a negative edge, written as a predicate list
    whose last element closes back on the first.
    """

    predicates: frozenset[str]
    positive_edges: frozenset[Edge]
    negative_edges: frozenset[Edge]
    components: tuple[tuple[str, ...], ...]
    strata: Optional[dict[str, int]]
    negative_cycle: Optional[tuple[str, ...]]

    @property
    def stratified(self) -> bool:
        """``True`` iff a stratification witness was found."""
        return self.strata is not None

    @property
    def recursive(self) -> bool:
        """``True`` iff some SCC has more than one predicate or a self-edge."""
        edges = self.positive_edges | self.negative_edges
        for component in self.components:
            if len(component) > 1:
                return True
            node = component[0]
            if (node, node) in edges:
                return True
        return False


@dataclass(frozen=True)
class GuardednessProfile:
    """Per-rule guardedness classification of an NTGD program.

    ``linear`` counts single-positive-atom bodies (a strict subset of
    ``guarded``); ``unguarded_rule_indices`` locates the rules outside the
    paper's guarded fragment, in program order.
    """

    guarded: int
    linear: int
    unguarded: int
    unguarded_rule_indices: tuple[int, ...]

    @property
    def all_guarded(self) -> bool:
        """``True`` iff every rule carries a guard atom."""
        return self.unguarded == 0


def analyze_dependencies(
    program: Union[NormalProgram, Iterable[NormalRule]],
) -> DependencyAnalysis:
    """The full dependency analysis of a normal program (or rule iterable)."""
    rules = list(program)
    predicates: set[str] = set()
    for rule in rules:
        predicates.update(rule.predicates())
    positive_edges, negative_edges = dependency_graph(rules)
    graph: dict[str, set[str]] = {p: set() for p in predicates}
    for head, dep in positive_edges | negative_edges:
        graph.setdefault(head, set()).add(dep)
        graph.setdefault(dep, set())
    components = tuple(
        tuple(sorted(component))
        for component in _sccs(graph)
    )
    strata: Optional[dict[str, int]]
    try:
        strata = stratify(rules)
    except NotStratifiedError:
        strata = None
    cycle = None
    if strata is None:
        cycle = negative_cycle_witness(positive_edges, negative_edges)
    return DependencyAnalysis(
        predicates=frozenset(predicates),
        positive_edges=frozenset(positive_edges),
        negative_edges=frozenset(negative_edges),
        components=components,
        strata=strata,
        negative_cycle=cycle,
    )


def negative_cycle_witness(
    positive_edges: Iterable[Edge], negative_edges: Iterable[Edge]
) -> Optional[tuple[str, ...]]:
    """The shortest dependency cycle through a negative edge, or ``None``.

    An edge ``(p, q)`` reads "p depends on q", so a cycle witnessing
    non-stratification is ``p →(not) q → … → p``; the returned tuple starts
    at the head of the violating negative edge and repeats it at the end to
    close the loop, e.g. ``("win", "win")`` for ``win :- not win`` or
    ``("p", "q", "p")`` for mutual negation.  Ties are broken
    lexicographically so the witness is deterministic.
    """
    negative = set(negative_edges)
    successors: dict[str, set[str]] = {}
    for head, dep in set(positive_edges) | negative:
        successors.setdefault(head, set()).add(dep)
        successors.setdefault(dep, set())
    component_of = {
        node: index
        for index, members in enumerate(_sccs(successors))
        for node in members
    }
    best: Optional[tuple[str, ...]] = None
    for head, dep in sorted(negative):
        if component_of.get(head) != component_of.get(dep):
            continue
        path = _shortest_path(successors, dep, head, component_of)
        if path is None:  # pragma: no cover - same SCC guarantees a path
            continue
        cycle = (head, *path, head) if path[-1] != head else (head, *path)
        if best is None or (len(cycle), cycle) < (len(best), best):
            best = cycle
    return best


def _shortest_path(
    successors: dict[str, set[str]],
    start: str,
    goal: str,
    component_of: dict[str, int],
) -> Optional[tuple[str, ...]]:
    """Shortest path ``start → … → goal`` inside one SCC (BFS, sorted order)."""
    if start == goal:
        return (start,)
    component = component_of[goal]
    frontier = [(start, (start,))]
    seen = {start}
    while frontier:
        next_frontier: list[tuple[str, tuple[str, ...]]] = []
        for node, path in frontier:
            for succ in sorted(successors.get(node, ())):
                if component_of.get(succ) != component or succ in seen:
                    continue
                if succ == goal:
                    return path + (succ,)
                seen.add(succ)
                next_frontier.append((succ, path + (succ,)))
        frontier = next_frontier
    return None


def guardedness_profile(
    program: Union[DatalogPMProgram, Iterable[NTGD]],
) -> GuardednessProfile:
    """Classify every NTGD of a Datalog± program as guarded/linear/unguarded."""
    guarded = linear = unguarded = 0
    unguarded_indices: list[int] = []
    for index, rule in enumerate(program):
        if rule.is_linear():
            linear += 1
            guarded += 1
        elif rule.is_guarded():
            guarded += 1
        else:
            unguarded += 1
            unguarded_indices.append(index)
    return GuardednessProfile(
        guarded=guarded,
        linear=linear,
        unguarded=unguarded,
        unguarded_rule_indices=tuple(unguarded_indices),
    )
