"""The analyzer entry point and the engine planner.

:func:`analyze` is the one call the rest of the codebase (and the ``repro
analyze`` CLI verb) makes: it coerces any program representation the repo
uses — textual source, a :class:`~repro.lang.program.DatalogPMProgram`, a
:class:`~repro.lang.program.NormalProgram`, or a bare rule iterable — runs
the lint rules, the dependency analyzer and the termination hierarchy, and
returns an :class:`~repro.analysis.diagnostics.AnalysisReport` whose
``verdicts`` double as an execution plan:

* ``termination_criterion`` / ``chase_terminates`` — the strongest member of
  the acyclicity hierarchy that accepted the (skolemized) program;
* ``stratified`` / ``negative_cycle`` — whether stratified engines apply,
  with the minimal odd-loop explanation when they do not;
* ``guarded`` — whether the guarded chase machinery applies (NTGD input);
* ``plan`` — the engine knobs: magic rewriting eligibility, whether
  materialized maintenance is safe, and whether evaluation must fall back to
  *run-and-check* (budgeted evaluation with dynamic convergence checks)
  because every static termination test failed.

The verdicts are static and evaluation-free, so calling :func:`analyze` is
always safe — it never grounds, never chases, never loops.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence, Union, cast

from ..exceptions import IllFormedRuleError, ParseError, ReproError
from ..lang.atoms import Atom
from ..lang.program import Database, DatalogPMProgram, NormalProgram
from ..lang.rules import NTGD, NormalRule
from ..lang.skolem import skolemize_program
from .diagnostics import AnalysisReport, Diagnostic, make_report
from .graph import (
    DependencyAnalysis,
    GuardednessProfile,
    analyze_dependencies,
    guardedness_profile,
)
from .lint import lint_rules
from .termination import TerminationVerdict, termination_verdict

__all__ = ["analyze", "plan_engine"]

ProgramLike = Union[
    str,
    DatalogPMProgram,
    NormalProgram,
    Iterable[NormalRule],
    Iterable[NTGD],
]


def analyze(
    program: ProgramLike,
    database: Optional[Union[Database, Iterable[Atom]]] = None,
    *,
    query: Optional[Any] = None,
    queries: Sequence[Any] = (),
    skolem_args: str = "universal",
) -> AnalysisReport:
    """Statically analyze *program* and return the full report.

    ``database`` (when known) enables the reachability lints and feeds the
    arity check; ``query``/``queries`` mark predicates as consumed.  Textual
    input is parsed with the Datalog± grammar — facts in the text merge into
    the database — and a parse or safety error becomes an ``E102`` finding
    instead of an exception, so the analyzer can always be pointed at
    untrusted source.
    """
    all_queries = list(queries)
    if query is not None:
        all_queries.append(query)
    try:
        ntgds, rules, parsed_facts = _coerce_program(program, skolem_args=skolem_args)
    except (ParseError, IllFormedRuleError, ReproError) as exc:
        diagnostic = Diagnostic("E102", f"program is ill-formed: {exc}")
        return make_report([diagnostic], verdicts={}, summary={})

    database_atoms: Optional[list[Atom]] = None
    if database is not None or parsed_facts:
        database_atoms = list(parsed_facts)
        if database is not None:
            database_atoms.extend(database)

    diagnostics = lint_rules(
        rules, database_atoms=database_atoms, queries=all_queries
    )
    dependencies = analyze_dependencies(rules)
    verdict = termination_verdict(rules)
    profile = guardedness_profile(ntgds) if ntgds is not None else None
    diagnostics += _structural_diagnostics(ntgds, dependencies, verdict, profile)

    verdicts = _verdicts(dependencies, verdict, profile)
    summary = {
        "rules": len(rules),
        "predicates": len(dependencies.predicates),
        "facts": len(database_atoms) if database_atoms is not None else None,
    }
    return make_report(diagnostics, verdicts=verdicts, summary=summary)


def plan_engine(report: AnalysisReport) -> dict[str, Any]:
    """The engine-facing slice of a report's verdicts (always present keys)."""
    plan = dict(report.verdicts.get("plan", {}))
    plan.setdefault("magic_eligible", False)
    plan.setdefault("materializable", False)
    plan.setdefault("run_and_check", True)
    plan.setdefault("stratified_fastpath", False)
    return plan


# -- coercion -----------------------------------------------------------------


def _coerce_program(
    program: ProgramLike, *, skolem_args: str
) -> tuple[Optional[DatalogPMProgram], list[NormalRule], list[Atom]]:
    """Normalise any accepted program form to (NTGDs?, normal rules, facts).

    The termination hierarchy and the lint rules operate on skolemized normal
    rules — the representation the engines actually evaluate; the NTGD view
    is kept when available because guardedness is an NTGD-level property
    (Skolemization erases the guard structure).
    """
    if isinstance(program, str):
        from ..lang.parser import parse_program

        ntgds, database = parse_program(program)
        normal = skolemize_program(ntgds, skolem_args=skolem_args)
        return ntgds, list(normal.rules()), list(database)
    if isinstance(program, DatalogPMProgram):
        normal = skolemize_program(program, skolem_args=skolem_args)
        return program, list(normal.rules()), []
    if isinstance(program, NormalProgram):
        return None, list(program.rules()), []
    items = list(program)
    if items and isinstance(items[0], NTGD):
        ntgds = DatalogPMProgram(cast("list[NTGD]", items))
        normal = skolemize_program(ntgds, skolem_args=skolem_args)
        return ntgds, list(normal.rules()), []
    return None, cast("list[NormalRule]", items), []


# -- structural diagnostics ---------------------------------------------------


def _structural_diagnostics(
    ntgds: Optional[DatalogPMProgram],
    dependencies: DependencyAnalysis,
    verdict: TerminationVerdict,
    profile: Optional[GuardednessProfile],
) -> list[Diagnostic]:
    """Findings derived from the graph and termination analyses."""
    findings: list[Diagnostic] = []
    if not dependencies.stratified and dependencies.negative_cycle is not None:
        loop = " -> ".join(dependencies.negative_cycle)
        findings.append(
            Diagnostic(
                "I303",
                f"negation is not stratified (cycle {loop}); the well-founded "
                "engines handle this, stratified evaluation does not",
                predicate=dependencies.negative_cycle[0],
            )
        )
    if ntgds is not None and profile is not None:
        for index in profile.unguarded_rule_indices:
            rule = ntgds.rules()[index]
            findings.append(
                Diagnostic(
                    "W206",
                    "NTGD has no guard atom covering all universal variables; "
                    "the guarded chase engine will reject the program",
                    rule_index=index,
                    rule=str(rule),
                )
            )
    if verdict.criterion != "function-free":
        findings.append(
            Diagnostic(
                "I304",
                "the functional transformation introduces Skolem functions; "
                "termination depends on the acyclicity hierarchy",
            )
        )
    if not verdict.terminating:
        findings.append(
            Diagnostic(
                "W207",
                "no static termination criterion holds "
                f"({verdict.reason}); evaluation falls back to budgeted "
                "run-and-check",
            )
        )
    return findings


# -- verdicts -----------------------------------------------------------------


def _verdicts(
    dependencies: DependencyAnalysis,
    verdict: TerminationVerdict,
    profile: Optional[GuardednessProfile],
) -> dict[str, Any]:
    guarded: Optional[bool] = None
    guardedness: Optional[dict[str, int]] = None
    if profile is not None:
        guarded = profile.all_guarded
        guardedness = {
            "guarded": profile.guarded,
            "linear": profile.linear,
            "unguarded": profile.unguarded,
        }
    terminates = verdict.terminating
    return {
        "termination_criterion": verdict.criterion,
        "termination_reason": verdict.reason,
        "chase_terminates": terminates,
        "stratified": dependencies.stratified,
        "negative_cycle": (
            list(dependencies.negative_cycle)
            if dependencies.negative_cycle is not None
            else None
        ),
        "strata_count": (
            1 + max(dependencies.strata.values(), default=0)
            if dependencies.strata is not None and dependencies.strata
            else (1 if dependencies.strata is not None else None)
        ),
        "recursive": dependencies.recursive,
        "guarded": guarded,
        "guardedness": guardedness,
        "existential": verdict.criterion != "function-free",
        "plan": {
            "magic_eligible": terminates,
            "materializable": terminates,
            "run_and_check": not terminates,
            "stratified_fastpath": dependencies.stratified,
        },
    }
