"""Static program analysis: lint rules, acyclicity hierarchy, engine planning.

The analysis pass runs before (and without) any evaluation.  Point
:func:`analyze` at any program representation the repo uses and get back an
:class:`AnalysisReport`: structured diagnostics with stable codes plus the
machine-readable capability verdicts (termination criterion, stratification,
guardedness, planner hints) that the engines consume.  See
``docs/analysis.md`` for the diagnostic code table and the acyclicity
hierarchy.
"""

from .diagnostics import CODE_TABLE, AnalysisReport, Diagnostic, Severity, make_report
from .graph import (
    DependencyAnalysis,
    GuardednessProfile,
    analyze_dependencies,
    guardedness_profile,
    negative_cycle_witness,
)
from .lint import lint_rules
from .planner import analyze, plan_engine
from .termination import (
    CRITERIA,
    TerminationVerdict,
    is_jointly_acyclic,
    is_super_weakly_acyclic,
    is_weakly_acyclic,
    joint_acyclicity_violation,
    super_weak_acyclicity_violation,
    termination_verdict,
    weak_acyclicity_violation,
)

__all__ = [
    "CODE_TABLE",
    "CRITERIA",
    "AnalysisReport",
    "Diagnostic",
    "DependencyAnalysis",
    "GuardednessProfile",
    "Severity",
    "TerminationVerdict",
    "analyze",
    "analyze_dependencies",
    "guardedness_profile",
    "is_jointly_acyclic",
    "is_super_weakly_acyclic",
    "is_weakly_acyclic",
    "joint_acyclicity_violation",
    "lint_rules",
    "make_report",
    "negative_cycle_witness",
    "plan_engine",
    "super_weak_acyclicity_violation",
    "termination_verdict",
    "weak_acyclicity_violation",
]
