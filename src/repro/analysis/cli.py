"""The ``repro analyze`` verb: lint-style static analysis from the shell.

Usage::

    python -m repro analyze PROGRAM_FILE [...] [--scenario NAME] [--json] [--strict]

Targets can be

* program files in the textual Datalog± syntax (facts become the database),
* ``.py`` example files exposing either a top-level ``PROGRAM`` string
  (extracted via ``ast`` — the file is *not* executed) or an
  ``analyze_target()`` function returning program text, a program object, or
  a ``(program, database)`` pair (the module is imported and the hook
  called, but its ``main()`` is not run), and
* registered scenarios via ``--scenario NAME`` (repeatable) or
  ``--all-scenarios``; the scenario's database and query mix feed the
  reachability lints.

Exit codes are lint-style and aggregate over all targets: ``2`` when any
report contains an error, ``1`` when any contains a warning and ``--strict``
is set, ``0`` otherwise.  ``--json`` emits one JSON document with a
``targets`` object (target name → report) plus the aggregate ``exit_code``,
suitable for CI artifact upload.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from typing import Any, Optional, Sequence

from ..exceptions import ReproError
from ..lang.parser import parse_query
from .diagnostics import AnalysisReport
from .planner import analyze

__all__ = ["analyze_main", "build_analyze_parser"]


def build_analyze_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``analyze`` verb."""
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description=(
            "Statically analyze Datalog± programs: lint findings with stable "
            "codes, the acyclicity-hierarchy termination verdict, "
            "stratification and guardedness, and the engine plan."
        ),
    )
    parser.add_argument(
        "targets",
        nargs="*",
        metavar="PROGRAM",
        help=(
            "program files (textual syntax), or .py files exposing a "
            "top-level PROGRAM string"
        ),
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=[],
        metavar="NAME",
        help="analyze a registered scenario's program (repeatable)",
    )
    parser.add_argument(
        "--all-scenarios",
        action="store_true",
        help="analyze every registered scenario",
    )
    parser.add_argument(
        "--query",
        action="append",
        default=[],
        metavar="NBCQ",
        help="mark a query's predicates as consumed (repeatable; file targets only)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit one JSON document instead of the human-readable reports",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any report contains warnings (errors always exit 2)",
    )
    return parser


def _program_from_python_file(path: str) -> Optional[str]:
    """The top-level ``PROGRAM`` string of an example, without running it."""
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            targets = [node.target.id]
        else:
            continue
        if "PROGRAM" not in targets or node.value is None:
            continue
        if isinstance(node.value, ast.Constant) and isinstance(node.value.value, str):
            return node.value.value
    return None


def _target_from_python_module(path: str) -> Any:
    """Import the example and call its ``analyze_target()`` hook.

    Returns whatever the hook returns — program text, a program object, or a
    ``(program, database)`` pair.  The module's ``main()`` stays behind its
    ``__main__`` guard, so importing is cheap.
    """
    import importlib.util

    spec = importlib.util.spec_from_file_location("_repro_analyze_target", path)
    if spec is None or spec.loader is None:
        raise ReproError(f"{path}: not importable")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    hook = getattr(module, "analyze_target", None)
    if hook is None:
        raise ReproError(
            f"{path}: no top-level PROGRAM string and no analyze_target() hook"
        )
    return hook()


def _analyze_file(path: str, queries: Sequence[str]) -> AnalysisReport:
    source: Any
    database: list[Any] = []
    if path.endswith(".py"):
        source = _program_from_python_file(path)
        if source is None:
            target = _target_from_python_module(path)
            if isinstance(target, tuple):
                source, database = target[0], list(target[1])
            else:
                source = target
    else:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    parsed_queries = [parse_query(text) for text in queries]
    # Textual facts merge into the database inside analyze(); passing an
    # explicit (possibly empty) database keeps the reachability lints
    # enabled even for rule-only files.
    return analyze(source, database, queries=parsed_queries)


def _analyze_scenario(name: str) -> AnalysisReport:
    from ..scenarios.registry import build_scenario

    bundle = build_scenario(name)
    queries = [parse_query(text) for text in bundle.queries]
    return analyze(bundle.program, bundle.database, queries=queries)


def analyze_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``repro analyze``; returns the process exit code."""
    parser = build_analyze_parser()
    args = parser.parse_args(argv)

    scenario_names = list(args.scenario)
    if args.all_scenarios:
        from ..scenarios.registry import scenario_names as registered

        scenario_names.extend(
            name for name in registered() if name not in scenario_names
        )
    if not args.targets and not scenario_names:
        parser.error("nothing to analyze: give a PROGRAM file or --scenario/--all-scenarios")

    reports: dict[str, AnalysisReport] = {}
    failures: dict[str, str] = {}
    for path in args.targets:
        try:
            reports[path] = _analyze_file(path, args.query)
        except (OSError, ReproError) as error:
            failures[path] = str(error)
    for name in scenario_names:
        target = f"scenario:{name}"
        try:
            reports[target] = _analyze_scenario(name)
        except (KeyError, ReproError) as error:
            failures[target] = str(error)

    exit_code = 0
    for report in reports.values():
        exit_code = max(exit_code, report.exit_code(strict=args.strict))
    if failures:
        exit_code = 2

    if args.as_json:
        document = {
            "targets": {name: report.to_json() for name, report in reports.items()},
            "failures": failures,
            "strict": args.strict,
            "exit_code": exit_code,
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        for name, report in reports.items():
            print(f"== {name}")
            print(report.render())
        for name, message in failures.items():
            print(f"== {name}", file=sys.stderr)
            print(f"error: {message}", file=sys.stderr)
    return exit_code
