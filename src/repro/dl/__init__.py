"""DL-Lite_{R,⊓,not} front-end: ontologies translated to guarded normal Datalog±.

Implements the ontology side of the paper's motivation (Example 1 and
Example 2): description-logic TBoxes/ABoxes are encoded as guarded normal
Datalog± programs and queried under the standard well-founded semantics with
the unique name assumption.
"""

from .reasoner import OntologyReasoner
from .syntax import (
    ABox,
    AtomicConcept,
    ConceptAssertion,
    ConceptInclusion,
    ConceptLiteral,
    ExistentialConcept,
    Ontology,
    Role,
    RoleAssertion,
    RoleInclusion,
    TBox,
)
from .translate import (
    concept_predicate,
    exists_predicate,
    role_predicate,
    translate_abox,
    translate_ontology,
    translate_tbox,
)

__all__ = [
    "OntologyReasoner",
    "ABox",
    "AtomicConcept",
    "ConceptAssertion",
    "ConceptInclusion",
    "ConceptLiteral",
    "ExistentialConcept",
    "Ontology",
    "Role",
    "RoleAssertion",
    "RoleInclusion",
    "TBox",
    "concept_predicate",
    "exists_predicate",
    "role_predicate",
    "translate_abox",
    "translate_ontology",
    "translate_tbox",
]
