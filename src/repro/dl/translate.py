"""Translation of DL-Lite_{R,⊓,not} ontologies into guarded normal Datalog±.

The paper (Sec. 1, Example 2) points out that DL-Lite_{R,⊓,not} ontologies
"can be translated into corresponding guarded normal Datalog± programs"; this
module carries out the translation.  Concepts become unary predicates, roles
become binary predicates, and each axiom becomes one guarded NTGD (plus small
auxiliary rules when a *negated* existential appears on a left-hand side,
because NTGD bodies are conjunctions of atoms, not of existential formulas).

Translation table (X, Y fresh variables; ``r``/``a`` the role/concept predicates):

=============================  =====================================================
Axiom                          NTGD(s)
=============================  =====================================================
A ⊑ B                          a(X) → b(X)
A ⊑ ∃R                         a(X) → ∃Y r(X, Y)
A ⊑ ∃R⁻                        a(X) → ∃Y r(Y, X)
∃R ⊑ B                         r(X, Y) → b(X)
∃R⁻ ⊑ B                        r(X, Y) → b(Y)
L₁ ⊓ … ⊓ Lₙ ⊑ C                body literals as below, head as above
  positive Lᵢ = A              a(X)
  positive Lᵢ = ∃R             r(X, Yᵢ)           (fresh Yᵢ per conjunct)
  positive Lᵢ = ∃R⁻            r(Yᵢ, X)
  negated  Lᵢ = not A          not a(X)
  negated  Lᵢ = not ∃R         not ex_r(X)        + auxiliary rule r(X, Y) → ex_r(X)
  negated  Lᵢ = not ∃R⁻        not exinv_r(X)     + auxiliary rule r(X, Y) → exinv_r(Y)
R ⊑ S                          r(X, Y) → s(X, Y)
R ⊑ S⁻  (or R⁻ ⊑ S)            r(X, Y) → s(Y, X)
R⁻ ⊑ S⁻                        r(X, Y) → s(X, Y)
=============================  =====================================================

Guardedness: when the left-hand side has a single positive conjunct its atom
is the guard (it contains X, and — for existentials — its own fresh variable).
With *several* positive conjuncts the rule would not be guarded if any of
them were an existential (each introduces its own fresh variable that no
single atom covers); in that case existential positive conjuncts are replaced
by their auxiliary ``ex_r`` / ``exinv_r`` atoms as well, so that all body
atoms share the single variable X and the first positive atom is a guard.

The ABox becomes the database: ``A(a)`` ↦ ``a(a)``, ``R(a, b)`` ↦ ``r(a, b)``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from ..exceptions import TranslationError
from ..lang.atoms import Atom
from ..lang.program import Database, DatalogPMProgram
from ..lang.rules import NTGD
from ..lang.terms import Constant, Variable
from .syntax import (
    ABox,
    AtomicConcept,
    BasicConcept,
    ConceptAssertion,
    ConceptInclusion,
    ConceptLiteral,
    ExistentialConcept,
    Ontology,
    Role,
    RoleAssertion,
    RoleInclusion,
    TBox,
)

__all__ = [
    "concept_predicate",
    "role_predicate",
    "exists_predicate",
    "translate_ontology",
    "translate_tbox",
    "translate_abox",
]

_X = Variable("X")
_Y = Variable("Y")


def concept_predicate(concept: Union[AtomicConcept, str]) -> str:
    """The unary predicate name used for an atomic concept."""
    name = concept.name if isinstance(concept, AtomicConcept) else concept
    return _normalise(name)


def role_predicate(role: Union[Role, str]) -> str:
    """The binary predicate name used for a role."""
    name = role.name if isinstance(role, Role) else role
    return _normalise(name)


def exists_predicate(role: Role) -> str:
    """The auxiliary unary predicate standing for ``∃R`` (or ``∃R⁻``)."""
    suffix = "_inv" if role.inverse else ""
    return f"ex_{_normalise(role.name)}{suffix}"


def _normalise(name: str) -> str:
    """Predicate names are kept as-is apart from lower-casing the first letter.

    The textual program syntax treats identifiers starting with an upper-case
    letter as variables, so ``Person`` becomes ``person``; everything else
    (camel case, underscores) is preserved.
    """
    if not name:
        raise TranslationError("empty concept/role name")
    return name[0].lower() + name[1:]


def _role_atom(role: Role, subject, object_) -> Atom:
    """The binary atom for a role, honouring inversion."""
    if role.inverse:
        return Atom(role_predicate(role), (object_, subject))
    return Atom(role_predicate(role), (subject, object_))


def _head_atom(rhs: BasicConcept) -> tuple[Atom, bool]:
    """Head atom for a right-hand-side basic concept.

    Returns ``(atom, has_existential)``: for ``∃R`` the atom is
    ``r(X, Y)`` (or ``r(Y, X)`` for the inverse) and ``Y`` is existentially
    quantified because it does not occur in the body.
    """
    if isinstance(rhs, AtomicConcept):
        return Atom(concept_predicate(rhs), (_X,)), False
    return _role_atom(rhs.role, _X, _Y), True


def translate_concept_inclusion(
    axiom: ConceptInclusion,
    *,
    fresh_counter: list[int],
) -> list[NTGD]:
    """Translate one extended concept inclusion into NTGDs (plus auxiliaries)."""
    ntgds: list[NTGD] = []
    positives = axiom.positive_lhs()
    negatives = axiom.negative_lhs()

    body_pos: list[Atom] = []
    body_neg: list[Atom] = []

    # If there is more than one positive conjunct, positive existentials are
    # routed through their auxiliary predicate so the first atom guards the rule.
    use_aux_for_positive_existentials = len(positives) > 1

    for literal in positives:
        concept = literal.concept
        if isinstance(concept, AtomicConcept):
            body_pos.append(Atom(concept_predicate(concept), (_X,)))
        else:
            if use_aux_for_positive_existentials:
                body_pos.append(Atom(exists_predicate(concept.role), (_X,)))
                ntgds.extend(_auxiliary_rules(concept.role))
            else:
                fresh_counter[0] += 1
                fresh = Variable(f"Y{fresh_counter[0]}")
                body_pos.append(_role_atom(concept.role, _X, fresh))

    for literal in negatives:
        concept = literal.concept
        if isinstance(concept, AtomicConcept):
            body_neg.append(Atom(concept_predicate(concept), (_X,)))
        else:
            body_neg.append(Atom(exists_predicate(concept.role), (_X,)))
            ntgds.extend(_auxiliary_rules(concept.role))

    head, _ = _head_atom(axiom.rhs)
    ntgds.append(NTGD(tuple(body_pos), head, tuple(body_neg)))
    return ntgds


def _auxiliary_rules(role: Role) -> list[NTGD]:
    """The auxiliary rule defining ``ex_r`` / ``exinv_r`` for a role."""
    predicate = exists_predicate(role)
    if role.inverse:
        body = Atom(role_predicate(role), (_Y, _X))
    else:
        body = Atom(role_predicate(role), (_X, _Y))
    return [NTGD((body,), Atom(predicate, (_X,)))]


def translate_role_inclusion(axiom: RoleInclusion) -> NTGD:
    """Translate a role inclusion ``R ⊑ S`` into a single TGD."""
    body = _role_atom(axiom.lhs, _X, _Y)
    head = _role_atom(axiom.rhs, _X, _Y)
    return NTGD((body,), head)


def translate_tbox(tbox: TBox) -> DatalogPMProgram:
    """Translate every axiom of a TBox; duplicate auxiliary rules are merged."""
    program = DatalogPMProgram()
    fresh_counter = [0]
    for axiom in tbox:
        if isinstance(axiom, ConceptInclusion):
            for ntgd in translate_concept_inclusion(axiom, fresh_counter=fresh_counter):
                program.add(ntgd)
        else:
            program.add(translate_role_inclusion(axiom))
    return program


def translate_abox(abox: ABox) -> Database:
    """Translate ABox assertions into database facts."""
    database = Database()
    for assertion in abox:
        if isinstance(assertion, ConceptAssertion):
            database.add(
                Atom(concept_predicate(assertion.concept), (Constant(assertion.individual),))
            )
        else:
            database.add(
                Atom(
                    role_predicate(assertion.role),
                    (Constant(assertion.subject), Constant(assertion.object)),
                )
            )
    return database


def translate_ontology(ontology: Ontology) -> tuple[DatalogPMProgram, Database]:
    """Translate an ontology into ``(guarded normal Datalog± program, database)``.

    The resulting program is guarded by construction; this is re-checked and a
    :class:`~repro.exceptions.TranslationError` is raised if an axiom slipped
    through unguarded (which would indicate a bug or an unsupported axiom).
    """
    program = translate_tbox(ontology.tbox)
    for ntgd in program:
        if not ntgd.is_guarded():
            raise TranslationError(f"translated rule is not guarded: {ntgd}")
    return program, translate_abox(ontology.abox)
