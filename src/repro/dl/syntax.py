"""DL-Lite_{R,⊓,not} syntax: concepts, roles, axioms, TBoxes and ABoxes.

The paper's Example 2 interprets an extension of the DL-Lite family with
default negation (written ``not``) under the *standard* well-founded
semantics; the ontology language used there — DL-Lite_{R,⊓,not} from the
authors' AAAI-2012 companion paper — allows axioms of the form

    B₁ ⊓ … ⊓ Bₖ ⊓ not Bₖ₊₁ ⊓ … ⊓ not Bₙ  ⊑  C

where every ``Bᵢ`` and ``C`` is a *basic concept*: an atomic concept ``A``, an
unqualified existential ``∃R`` or ``∃R⁻``; plus role inclusions ``R ⊑ S``
(with possibly inverted sides) as in DL-Lite_R.  The ABox contains concept
and role assertions over individuals.

This module defines the abstract syntax as small immutable classes; the
translation to guarded normal Datalog± lives in :mod:`repro.dl.translate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence, Union

from ..exceptions import TranslationError

__all__ = [
    "AtomicConcept",
    "ExistentialConcept",
    "Role",
    "ConceptLiteral",
    "ConceptInclusion",
    "RoleInclusion",
    "ConceptAssertion",
    "RoleAssertion",
    "TBox",
    "ABox",
    "Ontology",
]


@dataclass(frozen=True)
class Role:
    """A role name, possibly inverted (``R`` or ``R⁻``)."""

    name: str
    inverse: bool = False

    def inverted(self) -> "Role":
        """The inverse of this role (``R⁻`` of ``R`` and vice versa)."""
        return Role(self.name, not self.inverse)

    def __str__(self) -> str:
        return f"{self.name}-" if self.inverse else self.name


@dataclass(frozen=True)
class AtomicConcept:
    """An atomic concept ``A`` (a class name)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ExistentialConcept:
    """An unqualified existential restriction ``∃R`` or ``∃R⁻``."""

    role: Role

    def __str__(self) -> str:
        return f"exists {self.role}"


#: A basic concept is an atomic concept or an unqualified existential.
BasicConcept = Union[AtomicConcept, ExistentialConcept]


@dataclass(frozen=True)
class ConceptLiteral:
    """A basic concept or its default negation, as used on axiom left-hand sides."""

    concept: BasicConcept
    positive: bool = True

    def __str__(self) -> str:
        return str(self.concept) if self.positive else f"not {self.concept}"


@dataclass(frozen=True)
class ConceptInclusion:
    """An extended concept inclusion ``L₁ ⊓ … ⊓ Lₙ ⊑ C``.

    The left-hand side is a conjunction of concept literals (at least one of
    which must be positive so that the Datalog± translation is guarded); the
    right-hand side is a basic concept.
    """

    lhs: tuple[ConceptLiteral, ...]
    rhs: BasicConcept

    def __post_init__(self) -> None:
        object.__setattr__(self, "lhs", tuple(self.lhs))
        if not self.lhs:
            raise TranslationError("a concept inclusion needs at least one left-hand conjunct")
        if not any(literal.positive for literal in self.lhs):
            raise TranslationError(
                f"concept inclusion {self} has no positive conjunct; the guarded "
                "translation requires at least one"
            )

    def positive_lhs(self) -> list[ConceptLiteral]:
        """The positive conjuncts of the left-hand side."""
        return [l for l in self.lhs if l.positive]

    def negative_lhs(self) -> list[ConceptLiteral]:
        """The negated conjuncts of the left-hand side."""
        return [l for l in self.lhs if not l.positive]

    def __str__(self) -> str:
        return f"{' and '.join(str(l) for l in self.lhs)} subClassOf {self.rhs}"


@dataclass(frozen=True)
class RoleInclusion:
    """A role inclusion ``R ⊑ S`` where either side may be inverted."""

    lhs: Role
    rhs: Role

    def __str__(self) -> str:
        return f"{self.lhs} subPropertyOf {self.rhs}"


@dataclass(frozen=True)
class ConceptAssertion:
    """An ABox assertion ``A(a)``."""

    concept: AtomicConcept
    individual: str

    def __str__(self) -> str:
        return f"{self.concept}({self.individual})"


@dataclass(frozen=True)
class RoleAssertion:
    """An ABox assertion ``R(a, b)``."""

    role: Role
    subject: str
    object: str

    def __str__(self) -> str:
        return f"{self.role}({self.subject}, {self.object})"


class TBox:
    """A terminological box: a finite set of concept and role inclusions."""

    def __init__(
        self,
        axioms: Iterable[Union[ConceptInclusion, RoleInclusion]] = (),
    ):
        self._axioms: list[Union[ConceptInclusion, RoleInclusion]] = list(axioms)

    def add(self, axiom: Union[ConceptInclusion, RoleInclusion]) -> None:
        """Add an axiom."""
        self._axioms.append(axiom)

    def concept_inclusions(self) -> list[ConceptInclusion]:
        """The concept inclusions of the TBox."""
        return [a for a in self._axioms if isinstance(a, ConceptInclusion)]

    def role_inclusions(self) -> list[RoleInclusion]:
        """The role inclusions of the TBox."""
        return [a for a in self._axioms if isinstance(a, RoleInclusion)]

    def __iter__(self) -> Iterator[Union[ConceptInclusion, RoleInclusion]]:
        return iter(self._axioms)

    def __len__(self) -> int:
        return len(self._axioms)

    def __str__(self) -> str:
        return "\n".join(str(a) for a in self._axioms)


class ABox:
    """An assertional box: concept and role assertions over individuals."""

    def __init__(
        self,
        assertions: Iterable[Union[ConceptAssertion, RoleAssertion]] = (),
    ):
        self._assertions: list[Union[ConceptAssertion, RoleAssertion]] = list(assertions)

    def add(self, assertion: Union[ConceptAssertion, RoleAssertion]) -> None:
        """Add an assertion."""
        self._assertions.append(assertion)

    def assert_concept(self, concept: Union[AtomicConcept, str], individual: str) -> None:
        """Convenience: add ``A(a)``."""
        if isinstance(concept, str):
            concept = AtomicConcept(concept)
        self.add(ConceptAssertion(concept, individual))

    def assert_role(self, role: Union[Role, str], subject: str, object: str) -> None:
        """Convenience: add ``R(a, b)``."""
        if isinstance(role, str):
            role = Role(role)
        self.add(RoleAssertion(role, subject, object))

    def individuals(self) -> set[str]:
        """All individuals mentioned by the ABox."""
        result: set[str] = set()
        for assertion in self._assertions:
            if isinstance(assertion, ConceptAssertion):
                result.add(assertion.individual)
            else:
                result.add(assertion.subject)
                result.add(assertion.object)
        return result

    def __iter__(self) -> Iterator[Union[ConceptAssertion, RoleAssertion]]:
        return iter(self._assertions)

    def __len__(self) -> int:
        return len(self._assertions)

    def __str__(self) -> str:
        return "\n".join(str(a) for a in self._assertions)


class Ontology:
    """A DL-Lite_{R,⊓,not} ontology: a TBox plus an ABox.

    Provides a small builder API so that the running examples read naturally::

        onto = Ontology()
        onto.subclass(["Person", "Employed", ("not", "exists JobSeekerID")],
                      "exists EmployeeID")
        onto.abox.assert_concept("Person", "a")
    """

    def __init__(self, tbox: Optional[TBox] = None, abox: Optional[ABox] = None):
        self.tbox = tbox if tbox is not None else TBox()
        self.abox = abox if abox is not None else ABox()

    # -- builder helpers -----------------------------------------------------------

    @staticmethod
    def _parse_basic(expr: Union[BasicConcept, str]) -> BasicConcept:
        """Parse ``"A"``, ``"exists R"`` or ``"exists R-"`` into a basic concept."""
        if isinstance(expr, (AtomicConcept, ExistentialConcept)):
            return expr
        text = expr.strip()
        if text.lower().startswith("exists "):
            role_text = text[len("exists "):].strip()
            inverse = role_text.endswith("-")
            role_name = role_text[:-1] if inverse else role_text
            return ExistentialConcept(Role(role_name, inverse))
        return AtomicConcept(text)

    @classmethod
    def _parse_literal(
        cls, expr: Union[ConceptLiteral, BasicConcept, str, tuple]
    ) -> ConceptLiteral:
        """Parse a left-hand-side conjunct, allowing ``("not", concept)`` tuples
        or strings prefixed with ``"not "``."""
        if isinstance(expr, ConceptLiteral):
            return expr
        if isinstance(expr, tuple):
            negation, inner = expr
            if str(negation).lower() != "not":
                raise TranslationError(f"unrecognised concept literal {expr!r}")
            return ConceptLiteral(cls._parse_basic(inner), False)
        if isinstance(expr, str) and expr.strip().lower().startswith("not "):
            return ConceptLiteral(cls._parse_basic(expr.strip()[4:]), False)
        return ConceptLiteral(cls._parse_basic(expr), True)

    def subclass(
        self,
        lhs: Union[Sequence[Union[ConceptLiteral, BasicConcept, str, tuple]], str],
        rhs: Union[BasicConcept, str],
    ) -> ConceptInclusion:
        """Add a concept inclusion; *lhs* may be a single concept or a conjunction."""
        if isinstance(lhs, (str, AtomicConcept, ExistentialConcept, ConceptLiteral, tuple)):
            lhs = [lhs]
        literals = tuple(self._parse_literal(item) for item in lhs)
        axiom = ConceptInclusion(literals, self._parse_basic(rhs))
        self.tbox.add(axiom)
        return axiom

    def subrole(self, lhs: Union[Role, str], rhs: Union[Role, str]) -> RoleInclusion:
        """Add a role inclusion (``"R-"`` denotes the inverse of ``R``)."""
        axiom = RoleInclusion(self._parse_role(lhs), self._parse_role(rhs))
        self.tbox.add(axiom)
        return axiom

    @staticmethod
    def _parse_role(expr: Union[Role, str]) -> Role:
        """Parse ``"R"`` / ``"R-"`` into a role."""
        if isinstance(expr, Role):
            return expr
        text = expr.strip()
        if text.endswith("-"):
            return Role(text[:-1], True)
        return Role(text)

    # -- views ---------------------------------------------------------------------------

    def concept_names(self) -> set[str]:
        """All atomic concept names used by the ontology."""
        names: set[str] = set()
        for axiom in self.tbox.concept_inclusions():
            for literal in axiom.lhs:
                if isinstance(literal.concept, AtomicConcept):
                    names.add(literal.concept.name)
            if isinstance(axiom.rhs, AtomicConcept):
                names.add(axiom.rhs.name)
        for assertion in self.abox:
            if isinstance(assertion, ConceptAssertion):
                names.add(assertion.concept.name)
        return names

    def role_names(self) -> set[str]:
        """All role names used by the ontology."""
        names: set[str] = set()
        for axiom in self.tbox:
            if isinstance(axiom, RoleInclusion):
                names.add(axiom.lhs.name)
                names.add(axiom.rhs.name)
            else:
                for literal in axiom.lhs:
                    if isinstance(literal.concept, ExistentialConcept):
                        names.add(literal.concept.role.name)
                if isinstance(axiom.rhs, ExistentialConcept):
                    names.add(axiom.rhs.role.name)
        for assertion in self.abox:
            if isinstance(assertion, RoleAssertion):
                names.add(assertion.role.name)
        return names

    def __str__(self) -> str:
        return f"TBox:\n{self.tbox}\nABox:\n{self.abox}"
