"""Ontology reasoning under the standard WFS (the paper's Example 2 workflow).

:class:`OntologyReasoner` glues the pieces together: a DL-Lite_{R,⊓,not}
ontology is translated into a guarded normal Datalog± program plus a database
(:mod:`repro.dl.translate`), and queries are answered over ``WFS(D, Σ)`` by a
:class:`~repro.core.engine.WellFoundedEngine`.  Because the engine works
under the unique name assumption, the reasoner exhibits exactly the behaviour
the paper argues for in Example 2: distinct Skolem nulls produced for the
employee ID of ``a`` and the job-seeker ID of ``b`` are *different* values,
so the ID of ``a`` is derived to be valid.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from ..lang.atoms import Atom
from ..lang.program import Database, DatalogPMProgram
from ..lang.queries import NormalBCQ
from ..lang.terms import Constant
from ..core.engine import DatalogWellFoundedModel, WellFoundedEngine
from ..core.stratified import StratifiedDatalogPM
from .syntax import AtomicConcept, Ontology, Role
from .translate import concept_predicate, role_predicate, translate_ontology

__all__ = ["OntologyReasoner"]


class OntologyReasoner:
    """Query answering over a DL-Lite_{R,⊓,not} ontology under WFS + UNA.

    Parameters
    ----------
    ontology:
        The ontology (TBox + ABox) to reason over.
    engine_options:
        Forwarded to :class:`~repro.core.engine.WellFoundedEngine` (depth
        schedule, strictness, ...).
    """

    def __init__(self, ontology: Ontology, **engine_options):
        self.ontology = ontology
        self.program, self.database = translate_ontology(ontology)
        self._engine = WellFoundedEngine(self.program, self.database, **engine_options)

    # -- low-level access ------------------------------------------------------------

    @property
    def engine(self) -> WellFoundedEngine:
        """The underlying well-founded engine (for advanced inspection)."""
        return self._engine

    def model(self) -> DatalogWellFoundedModel:
        """The well-founded model of the translated ontology."""
        return self._engine.model()

    # -- entailment API ----------------------------------------------------------------

    def holds(self, query: Union[NormalBCQ, str, Atom]) -> bool:
        """Does the NBCQ (in Datalog± predicate syntax) hold under the WFS?"""
        return self._engine.holds(query)

    def instance_of(self, concept: Union[AtomicConcept, str], individual: str) -> bool:
        """Is *individual* an instance of the atomic concept (true in the WFS)?"""
        atom = Atom(concept_predicate(concept), (Constant(individual),))
        return self.model().is_true(atom)

    def concept_members(self, concept: Union[AtomicConcept, str]) -> set[str]:
        """The ABox individuals that are (well-founded) members of the concept."""
        predicate = concept_predicate(concept)
        model = self.model()
        members: set[str] = set()
        for individual in self.ontology.abox.individuals():
            if model.is_true(Atom(predicate, (Constant(individual),))):
                members.add(individual)
        return members

    def related(
        self, role: Union[Role, str], subject: str, object: str
    ) -> bool:
        """Is ``R(subject, object)`` true in the well-founded model?"""
        atom = Atom(role_predicate(role), (Constant(subject), Constant(object)))
        return self.model().is_true(atom)

    def has_role_successor(self, role: Union[Role, str], subject: str) -> bool:
        """Does *subject* have some R-successor (possibly an anonymous null)?"""
        predicate = role_predicate(role)
        return self._engine.holds(f"? {predicate}({subject}, V_succ)")

    # -- baseline comparison --------------------------------------------------------------

    def stratified_baseline(self, **options) -> StratifiedDatalogPM:
        """The same ontology under the stratified Datalog± semantics of [1].

        Raises :class:`~repro.exceptions.NotStratifiedError` if the ontology's
        use of ``not`` is not stratified — which is exactly the situation the
        paper's WFS is designed to handle.
        """
        return StratifiedDatalogPM(self.program, self.database, **options)

    def __repr__(self) -> str:
        return (
            f"OntologyReasoner({len(self.ontology.tbox)} TBox axioms, "
            f"{len(self.ontology.abox)} ABox assertions)"
        )
