"""Materialized-view maintenance: a warm engine under fact insertion/retraction.

PRs 1–6 made the LP core incremental under monotone *rule* growth (the chase
deepening pattern).  This module closes the other half of the production
shape named in the ROADMAP: a long-lived engine whose *database* changes —
facts stream in and out while ``holds``/``answer`` stay warm, the signature
capability of systems like Vadalog (delete-rederive / counting maintenance
over a Datalog±-style core).

:class:`MaterializedEngine` keeps, across updates:

* a resumable semi-naive grounder (any ``backend=`` of
  :func:`repro.lp.columnar.make_grounder`) whose
  :class:`~repro.lp.grounding.GroundProgram` is **monotone**: stored ground
  rules are never deleted.  What changes is each stored rule's *activity* —
  a rule is active iff every positive body atom lies in the current
  derivable-candidate set ``C`` (for EDB fact rules: iff the fact is in the
  current EDB) — tracked by per-rule Dowling–Gallier-style counters of
  positive body atoms outside ``C`` and flipped through
  :meth:`RuleIndex.disable_rule`/:meth:`~repro.lp.fixpoint.RuleIndex.enable_rule`.
  The active rule set is, at every quiescent point, set-equal to the
  relevant grounding of the current (rules, EDB) pair, because the stored
  set is a grounding over the *ever-seen* candidate superset.
* an :class:`~repro.lp.wfs.IncrementalWFS` over the same ground program:
  activity flips are reported through
  :meth:`~repro.lp.wfs.IncrementalWFS.invalidate_atom_ids`, so only the
  condensation components whose defining rules changed (plus the components
  the value ripple reaches) are re-solved.

**Insertion** stages the new facts into the grounder
(:meth:`~repro.lp.grounding.SemiNaiveGrounder.add_fact`), runs its delta
rounds — grounding only the rule instances the new facts can fire — then
ingests the appended instances (initially inactive) and runs an *activation
closure*: counters of rules watching a newly derivable atom are decremented,
rules hitting zero are enabled and push their heads into ``C``.

**Retraction** is DRed (delete–rederive) with a counting fast path: the
downward closure of the retracted facts is *overdeleted* through the
positive-body watchers — except that an atom which still has an active
deriving rule keeps its place in ``C`` outright when it is provably
non-recursive (singleton condensation component without a positive
self-loop), the Gupta–Mumick counting argument, which is unsound under
cyclic support and therefore falls back to overdeletion there — and the
overdeleted atoms that retain an untouched active rule are *rederived* by
the same activation closure.  Negation never needs special treatment at
this layer: ``C`` is about positive derivability only, and the
unfounded-set machinery inside the component re-solves handles every
negative cycle the flips touched.

The from-scratch rebuild (reground + solve) is retained as
:meth:`MaterializedEngine.scratch_model`, the differential oracle: the
maintained model is bit-identical to it at every update step, which the
property suites and ``benchmarks/bench_view_maintenance.py`` pin.
"""

from __future__ import annotations

import itertools
from time import perf_counter
from typing import Iterable, Iterator, Optional, Union

from ..analysis.diagnostics import Diagnostic
from ..analysis.termination import termination_verdict
from ..exceptions import AnalysisError, GroundingError
from ..lang.atoms import Atom, Literal
from ..lang.parser import parse_atom, parse_database, parse_program, parse_query
from ..lang.program import Database, DatalogPMProgram, NormalProgram
from ..lang.queries import (
    ConjunctiveQuery,
    NormalBCQ,
    as_conjunctive_query,
    evaluate_query,
    query_holds,
)
from ..lang.rules import NormalRule
from ..lang.skolem import skolemize_program
from ..lang.terms import Constant
from ..lp.columnar import BACKENDS, make_grounder
from ..lp.interpretation import Interpretation
from ..lp.wfs import IncrementalWFS, WellFoundedModel, well_founded_model
from ..lp.grounding import relevant_grounding

__all__ = ["MaterializedEngine"]


def _coerce_rules(
    program: Union[DatalogPMProgram, NormalProgram, str, Iterable[NormalRule]],
    *,
    skolem_args: str,
    require_guarded: bool,
) -> tuple[list[NormalRule], list[Atom]]:
    """Normalise any supported program form to (non-fact rules, program facts)."""
    program_facts: list[Atom] = []
    if isinstance(program, str):
        parsed, parsed_db = parse_program(program)
        program_facts.extend(parsed_db)
        program = parsed
    if isinstance(program, DatalogPMProgram):
        if require_guarded:
            program.require_guarded()
        program = skolemize_program(program, skolem_args=skolem_args)
    rules: list[NormalRule] = []
    for rule in program:
        if rule.is_fact() and rule.is_ground():
            program_facts.append(rule.head)
        else:
            rules.append(rule)
    return rules, program_facts


def _require_terminating(rules: Iterable[NormalRule]) -> str:
    """The strongest passing termination criterion, or raise AnalysisError.

    Maintenance replays grounding rounds on every update, so a rule set with
    no static termination certificate would not "fail fast" — it would fail
    on the first insertion touching the cycle, after burning its budget.
    Surfacing the analyzer's verdict at construction time turns that silent
    loop into a diagnosis; ``check_termination=False`` restores the old
    behaviour for programs known to saturate on their actual data.
    """
    verdict = termination_verdict(rules)
    if verdict.criterion is not None:
        return verdict.criterion
    diagnostic = Diagnostic(
        "E103",
        "program has no static termination certificate "
        f"({verdict.reason}); materialized maintenance could loop until its "
        "budgets exhaust",
    )
    raise AnalysisError(
        f"{diagnostic.render()}\n"
        "pass check_termination=False to maintain it anyway under the "
        "max_rounds_per_update/max_atoms budgets",
        diagnostics=(diagnostic,),
    )


def _coerce_atoms(atoms: Union[Iterable[Atom], Database, str, Atom]) -> list[Atom]:
    """Normalise a fact collection (or a single fact, or text) to a list."""
    if isinstance(atoms, Atom):
        return [atoms]
    if isinstance(atoms, str):
        return list(parse_database(atoms))
    return [parse_atom(a) if isinstance(a, str) else a for a in atoms]


class MaterializedEngine:
    """A warm ``holds``/``answer`` engine maintained under fact updates.

    Parameters
    ----------
    program:
        The rule set: a :class:`~repro.lang.program.NormalProgram`, an
        iterable of :class:`~repro.lang.rules.NormalRule`, a
        :class:`~repro.lang.program.DatalogPMProgram` (skolemized on entry),
        or program text (parsed as Datalog± — its facts join the database).
        The supported fragment is the one whose skolemized relevant
        grounding is finite: the constructor runs the static termination
        hierarchy of :mod:`repro.analysis` (function-free / weakly / jointly
        / super-weakly acyclic) and raises
        :class:`~repro.exceptions.AnalysisError` with the analyzer's
        diagnostics when every criterion fails, instead of looping until the
        budgets exhaust.  Pass ``check_termination=False`` to opt out for a
        program known to saturate dynamically; such a program then behaves
        as before — it exhausts the round/atom budgets, exactly like
        :func:`~repro.lp.grounding.relevant_grounding` does.
    database:
        Initial EDB facts (:class:`~repro.lang.program.Database`, iterable of
        atoms, or text).
    backend:
        Grounding executor for the delta rounds — ``"tuple"``, ``"columnar"``
        or ``"sqlite"`` (:data:`repro.lp.columnar.BACKENDS`); maintained
        models are backend-invariant.
    max_rounds_per_update, max_atoms:
        Budgets: grounding rounds allowed per logical update, and an absolute
        cap on the candidate-atom count.  On exhaustion the update raises
        :class:`~repro.exceptions.GroundingError` but stays *staged*: queries
        keep re-raising, and re-calling any update method (or the query,
        after raising the budget attributes) resumes exactly where the
        grounder stopped.
    """

    def __init__(
        self,
        program: Union[DatalogPMProgram, NormalProgram, str, Iterable[NormalRule]],
        database: Union[Database, Iterable[Atom], str, None] = None,
        *,
        backend: str = "tuple",
        max_rounds_per_update: Optional[int] = None,
        max_atoms: Optional[int] = None,
        skolem_args: str = "universal",
        require_guarded: bool = False,
        check_termination: bool = True,
        workers: int = 1,
        parallel_executor: str = "auto",
    ):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown grounding backend {backend!r}; expected one of {BACKENDS}"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.backend = backend
        self.max_rounds_per_update = max_rounds_per_update
        self.max_atoms = max_atoms
        #: worker-pool width of the maintained solver's condensation-DAG
        #: scheduler (:mod:`repro.lp.parallel`); ``1`` = the serial oracle
        self.workers = workers
        self.parallel_executor = parallel_executor

        rules, program_facts = _coerce_rules(
            program, skolem_args=skolem_args, require_guarded=require_guarded
        )
        self._rules: list[NormalRule] = rules
        #: the strongest static termination criterion that accepted the rule
        #: set ("function-free", "weak", "joint", "super-weak"), or ``None``
        #: when the check was skipped or failed
        self.termination_criterion: Optional[str] = None
        if check_termination:
            self.termination_criterion = _require_terminating(rules)
        initial_facts = list(program_facts)
        if database is not None:
            if isinstance(database, str):
                database = parse_database(database)
            initial_facts.extend(database)

        self._grounder = make_grounder(self._rules, (), backend=backend)
        self._ground = self._grounder.ground
        #: built eagerly so every later ``ground.add`` keeps it in sync
        self._index = self._ground.index()
        self._wfs = IncrementalWFS(
            self._ground, workers=workers, executor=parallel_executor
        )

        # -- maintained state -------------------------------------------------
        self._edb: set[Atom] = set()
        #: the derivable-candidate set ``C`` as index atom ids
        self._active_ids: set[int] = set()
        #: atoms in ``C`` whose watcher decrement has not run yet (staged
        #: activation frontier; ingestion counts them as outside ``C`` so the
        #: pending decrement is never double-applied)
        self._unpopped: set[int] = set()
        # per-stored-rule state, indexed by dense rule id
        self._unsat: list[int] = []
        self._enabled: list[bool] = []
        self._is_fact_rule: list[bool] = []
        #: head atom id -> number of enabled rules deriving it
        self._support: dict[int, int] = {}
        #: atom id -> occurrences in enabled rules (the maintained universe)
        self._ucount: dict[int, int] = {}
        self._universe: set[Atom] = set()
        self._universe_frozen: Optional[frozenset[Atom]] = None
        #: heads of rules whose activity flipped since the last WFS hand-off
        self._dirty_ids: set[int] = set()
        self._processed_rules = 0

        # -- staged update state (survives budget exhaustion) ------------------
        self._in_update = False
        self._pending_ground: list[Atom] = []
        self._pending_reseed: list[Atom] = []
        self._staged_seeds: list[int] = []
        self._pending_drops: list[int] = []
        self._round_floor = 0

        self._model_cache: Optional[WellFoundedModel] = None

        # -- instrumentation ---------------------------------------------------
        self.last_stats: dict = {}
        #: statistics of the last model()/holds()/answer() call, with the
        #: same core keys (seconds, rounds, cache_hit, backend) that
        #: WellFoundedEngine.last_query_stats carries — replay clients read
        #: one shape from either engine
        self.last_query_stats: Optional[dict] = None
        self.total_stats: dict = {
            "updates": 0,
            "facts_added": 0,
            "facts_retracted": 0,
            "rules_enabled": 0,
            "rules_disabled": 0,
            "overdeleted": 0,
            "rederived": 0,
            "counting_kept": 0,
            "reseeded": 0,
            "dropped": 0,
        }
        self._stat: dict = {}

        self.add_facts(initial_facts, _op="init")

    # -- introspection ---------------------------------------------------------

    @property
    def edb(self) -> frozenset[Atom]:
        """The current extensional database."""
        return frozenset(self._edb)

    @property
    def rules(self) -> tuple[NormalRule, ...]:
        """The (non-fact) rules of the program."""
        return tuple(self._rules)

    def ground_rule_count(self) -> tuple[int, int]:
        """``(stored, active)`` ground-rule counts of the maintained state."""
        stored = len(self._index)
        return stored, stored - self._index.disabled_count()

    def __repr__(self) -> str:
        stored, active = self.ground_rule_count()
        return (
            f"MaterializedEngine({len(self._rules)} rules, |EDB|={len(self._edb)}, "
            f"{active}/{stored} ground rules active, backend={self.backend!r})"
        )

    # -- rule activity ----------------------------------------------------------

    def _enable_rule(self, rule_id: int, joined: list[int]) -> None:
        """Enable a stored rule; its head joins ``C`` (appended to *joined*)."""
        if self._enabled[rule_id]:
            return
        self._enabled[rule_id] = True
        index = self._index
        index.enable_rule(rule_id)
        head_id = index.head_id(rule_id)
        self._support[head_id] = self._support.get(head_id, 0) + 1
        self._dirty_ids.add(head_id)
        self._bump_universe(rule_id, +1)
        self._stat["rules_enabled"] = self._stat.get("rules_enabled", 0) + 1
        if head_id not in self._active_ids:
            self._join(head_id, joined)

    def _disable_rule(self, rule_id: int) -> None:
        """Disable a stored rule (its head's support drops by one)."""
        if not self._enabled[rule_id]:
            return
        self._enabled[rule_id] = False
        index = self._index
        index.disable_rule(rule_id)
        head_id = index.head_id(rule_id)
        self._support[head_id] -= 1
        self._dirty_ids.add(head_id)
        self._bump_universe(rule_id, -1)
        self._stat["rules_disabled"] = self._stat.get("rules_disabled", 0) + 1

    def _join(self, atom_id: int, joined: list[int]) -> None:
        """Enter *atom_id* into ``C`` with its watcher decrement still pending."""
        self._active_ids.add(atom_id)
        self._unpopped.add(atom_id)
        joined.append(atom_id)
        atom = self._index.atom_of(atom_id)
        if atom not in self._grounder.index:
            # the atom was physically retracted from the grounder's candidate
            # state earlier; it is derivable again, so the matching state must
            # catch up (the mutual grounding/activation fixpoint re-runs)
            self._pending_reseed.append(atom)
            self._stat["reseeded"] = self._stat.get("reseeded", 0) + 1

    def _bump_universe(self, rule_id: int, delta: int) -> None:
        index = self._index
        atom_ids = {index.head_id(rule_id)}
        atom_ids.update(index.pos_ids(rule_id))
        atom_ids.update(index.neg_ids(rule_id))
        ucount = self._ucount
        for atom_id in atom_ids:
            count = ucount.get(atom_id, 0) + delta
            if count:
                ucount[atom_id] = count
            else:
                ucount.pop(atom_id, None)
            if delta > 0 and count == 1:
                self._universe.add(index.atom_of(atom_id))
                self._universe_frozen = None
            elif delta < 0 and count == 0:
                self._universe.discard(index.atom_of(atom_id))
                self._universe_frozen = None

    def _fact_rule_id(self, head_id: int) -> Optional[int]:
        """The ingested EDB fact rule for an atom id, if one is stored."""
        ingested = len(self._is_fact_rule)
        for rule_id in self._index.rule_ids_for_head_id(head_id):
            if rule_id < ingested and self._is_fact_rule[rule_id]:
                return rule_id
        return None

    # -- the grounding / ingestion / activation fixpoint -------------------------

    def _ground_to_saturation(self) -> None:
        grounder = self._grounder
        while self._pending_ground:
            grounder.add_fact(self._pending_ground.pop())
        while self._pending_reseed:
            grounder.reseed(self._pending_reseed.pop())
        allowance = None
        if self.max_rounds_per_update is not None:
            allowance = self._round_floor + self.max_rounds_per_update
        grounder.run(
            max_rounds=allowance, max_atoms=self.max_atoms, raise_on_budget=True
        )

    def _ingest_new_rules(self, joined: list[int]) -> None:
        """Fold appended ground rules into the per-rule counters (inactive).

        A rule whose positive body already lies inside ``C`` (counting the
        staged frontier as outside, so the pending decrements stay balanced)
        is enabled on the spot; an EDB fact rule is enabled iff its fact is
        in the current EDB; everything else waits for the activation closure.
        """
        index = self._index
        active = self._active_ids
        unpopped = self._unpopped
        edb = self._edb
        for rule_id in range(self._processed_rules, len(index)):
            rule = index.rule(rule_id)
            is_fact = rule.is_fact()
            self._is_fact_rule.append(is_fact)
            self._enabled.append(False)
            index.disable_rule(rule_id)
            if is_fact:
                self._unsat.append(0)
                if index.atom_of(index.head_id(rule_id)) in edb:
                    self._enable_rule(rule_id, joined)
            else:
                unsat = sum(
                    1
                    for atom_id in index.pos_ids(rule_id)
                    if atom_id not in active or atom_id in unpopped
                )
                self._unsat.append(unsat)
                if unsat == 0:
                    self._enable_rule(rule_id, joined)
        self._processed_rules = len(index)

    def _activate(self, stack: list[int]) -> None:
        """Drain the activation frontier: the lfp of rule firing over ``C``."""
        index = self._index
        unsat = self._unsat
        enabled = self._enabled
        is_fact = self._is_fact_rule
        unpopped = self._unpopped
        while stack:
            atom_id = stack.pop()
            unpopped.discard(atom_id)
            for rule_id in index.watchers_pos_id(atom_id):
                unsat[rule_id] -= 1
                if unsat[rule_id] == 0 and not enabled[rule_id] and not is_fact[rule_id]:
                    self._enable_rule(rule_id, stack)

    def _complete_update(self) -> None:
        """Run grounding, ingestion and activation to their mutual fixpoint.

        Raises :class:`~repro.exceptions.GroundingError` on budget
        exhaustion, leaving every staged seed in place — re-calling resumes.
        """
        while True:
            self._ground_to_saturation()
            stack = self._staged_seeds
            self._staged_seeds = []
            self._ingest_new_rules(stack)
            self._staged_seeds = stack  # a budget raise inside the next
            # grounding pass must not lose the un-drained frontier
            self._activate(stack)
            self._staged_seeds = []
            if (
                not self._pending_ground
                and not self._pending_reseed
                and self._grounder.saturated
                and self._processed_rules == len(self._index)
            ):
                break
        # physical candidate-state cleanup: atoms that ended the update
        # outside ``C`` leave the grounder's matching state (re-entering via
        # reseed if ever rederived)
        index = self._index
        for atom_id in self._pending_drops:
            if atom_id not in self._active_ids:
                if self._grounder.retract_fact(index.atom_of(atom_id)):
                    self._stat["dropped"] = self._stat.get("dropped", 0) + 1
        self._pending_drops = []
        self._in_update = False
        if self._dirty_ids:
            self._wfs.invalidate_atom_ids(self._dirty_ids)
            self._dirty_ids = set()

    def _resume_pending(self) -> None:
        if self._in_update:
            self._complete_update()
            self._model_cache = None

    def _begin(self, op: str) -> float:
        """Open a logical update (or keep accumulating into a staged one)."""
        started = perf_counter()
        if not self._in_update:
            self._round_floor = self._grounder.rounds
            self._stat = {}
        self._in_update = True
        return started

    def _finish(self, op: str, started: float, **extra) -> dict:
        stat = self._stat
        stats = {
            "op": op,
            "seconds": perf_counter() - started,
            "backend": self.backend,
            "rules_enabled": stat.get("rules_enabled", 0),
            "rules_disabled": stat.get("rules_disabled", 0),
            "overdeleted": stat.get("overdeleted", 0),
            "rederived": stat.get("rederived", 0),
            "counting_kept": stat.get("counting_kept", 0),
            "reseeded": stat.get("reseeded", 0),
            "dropped": stat.get("dropped", 0),
            "grounding_rounds": self._grounder.rounds - self._round_floor,
            # "rounds" mirrors "grounding_rounds" so update stats read with
            # the same keys as last_query_stats everywhere (seconds/rounds)
            "rounds": self._grounder.rounds - self._round_floor,
            "stored_rules": len(self._index),
            "active_rules": len(self._index) - self._index.disabled_count(),
        }
        stats.update(extra)
        self.last_stats = stats
        totals = self.total_stats
        totals["updates"] += 1
        for key in (
            "rules_enabled",
            "rules_disabled",
            "overdeleted",
            "rederived",
            "counting_kept",
            "reseeded",
            "dropped",
        ):
            totals[key] += stats[key]
        totals["facts_added"] += stats.get("facts_added", 0)
        totals["facts_retracted"] += stats.get("facts_retracted", 0)
        return stats

    # -- updates ----------------------------------------------------------------

    def add_facts(
        self,
        atoms: Union[Iterable[Atom], Database, str, Atom],
        *,
        _op: str = "add",
    ) -> dict:
        """Insert facts; ground and activate only what they can fire.

        Returns the update's statistics dict (also kept as
        :attr:`last_stats`).  Already-present facts are ignored.
        """
        atoms = _coerce_atoms(atoms)
        self._resume_pending()
        started = self._begin(_op)
        new = [a for a in atoms if a not in self._edb]
        self._edb.update(new)
        for fact in new:
            if not fact.is_ground():
                raise GroundingError(f"database facts must be ground, got {fact}")
            head_id = self._index.atom_id(fact)
            fact_rule = self._fact_rule_id(head_id) if head_id is not None else None
            if fact_rule is not None:
                # the fact rule is already stored (a re-add, or an atom the
                # grounder saw before): flip it active, no regrounding needed
                self._enable_rule(fact_rule, self._staged_seeds)
            else:
                self._pending_ground.append(fact)
        self._complete_update()
        if new:
            self._model_cache = None
        return self._finish(_op, started, facts_added=len(new))

    def retract_facts(
        self, atoms: Union[Iterable[Atom], Database, str, Atom]
    ) -> dict:
        """Retract facts by DRed overdeletion + rederivation (counting fast path).

        Facts not currently in the EDB are ignored.  Returns the update's
        statistics dict.
        """
        atoms = _coerce_atoms(atoms)
        self._resume_pending()
        started = self._begin("retract")
        gone = [a for a in atoms if a in self._edb]
        self._edb.difference_update(gone)
        # the recursion test below needs a current condensation; refreshing
        # eagerly is safe — the update is accumulated, not lost
        self._wfs.refresh_structure()

        index = self._index
        overdeleted: list[int] = []
        stack: list[int] = []
        for fact in gone:
            head_id = index.atom_id(fact)
            if head_id is None:  # pragma: no cover - defensive
                continue
            fact_rule = self._fact_rule_id(head_id)
            if fact_rule is not None:
                self._disable_rule(fact_rule)
            self._maybe_overdelete(head_id, stack, overdeleted)
        ingested = len(self._unsat)
        while stack:
            atom_id = stack.pop()
            for rule_id in index.watchers_pos_id(atom_id):
                if rule_id >= ingested:  # pragma: no cover - defensive
                    continue
                self._unsat[rule_id] += 1
                if self._enabled[rule_id]:
                    self._disable_rule(rule_id)
                    self._maybe_overdelete(index.head_id(rule_id), stack, overdeleted)

        # rederive: overdeleted atoms that kept an untouched active rule are
        # still derivable; re-entering them closes the rest through the
        # activation closure (re-enabled rules push their heads back in)
        support = self._support
        seeds: list[int] = []
        for atom_id in overdeleted:
            if support.get(atom_id, 0) > 0 and atom_id not in self._active_ids:
                self._join(atom_id, seeds)
        self._staged_seeds.extend(seeds)
        self._stat["overdeleted"] = self._stat.get("overdeleted", 0) + len(overdeleted)
        self._stat["rederived"] = self._stat.get("rederived", 0) + len(seeds)
        self._pending_drops.extend(overdeleted)
        self._complete_update()
        if gone:
            self._model_cache = None
        return self._finish("retract", started, facts_retracted=len(gone))

    def _maybe_overdelete(
        self, atom_id: int, stack: list[int], overdeleted: list[int]
    ) -> None:
        if atom_id not in self._active_ids:
            return
        if self._support.get(atom_id, 0) > 0:
            if not self._is_recursive(atom_id):
                # counting fast path (Gupta–Mumick): acyclic support cannot
                # be circular, so a surviving active rule proves the atom
                # stays derivable — no overdeletion, no rederivation.  (If a
                # later pop disables that rule too, support hits zero and
                # this atom is revisited through the rule's head.)
                self._stat["counting_kept"] = self._stat.get("counting_kept", 0) + 1
                return
        self._active_ids.discard(atom_id)
        stack.append(atom_id)
        overdeleted.append(atom_id)

    def _is_recursive(self, atom_id: int) -> bool:
        """Can *atom_id*'s derivations depend on itself (counting unsound)?"""
        condensation = self._wfs.condensation
        component_id = condensation.component_of_atom(atom_id)
        if len(condensation.members(component_id)) > 1:
            return True
        ingested = len(self._unsat)
        for rule_id in self._index.rule_ids_for_head_id(atom_id):
            if rule_id < ingested and atom_id in self._index.pos_ids(rule_id):
                return True
        return False

    # -- queries ----------------------------------------------------------------

    def model(self) -> WellFoundedModel:
        """The maintained well-founded model of (rules, current EDB).

        Bit-identical to :meth:`scratch_model` at every quiescent point (the
        differential suites pin this); only the components the last updates
        touched are re-solved.
        """
        started = perf_counter()
        self._resume_pending()
        if self._model_cache is not None:
            self.last_query_stats = {
                "mode": "materialized",
                "backend": self.backend,
                "cache_hit": True,
                "rounds": 0,
                "seconds": perf_counter() - started,
            }
            return self._model_cache
        inner = self._wfs.model()
        universe = self._universe_frozenset()
        interpretation = Interpretation(
            inner.true_atoms(), inner.false_atoms() & universe
        )
        model = WellFoundedModel(interpretation, universe, iterations=inner.iterations)
        self._model_cache = model
        self.last_query_stats = {
            "mode": "materialized",
            "backend": self.backend,
            "cache_hit": False,
            "rounds": inner.iterations or 0,
            "seconds": perf_counter() - started,
        }
        return model

    def _universe_frozenset(self) -> frozenset[Atom]:
        if self._universe_frozen is None:
            self._universe_frozen = frozenset(self._universe)
        return self._universe_frozen

    def scratch_model(self) -> WellFoundedModel:
        """The from-scratch differential oracle: reground + solve everything.

        Builds the relevant grounding of (rules, current EDB) with the same
        backend and solves it cold.  The maintained :meth:`model` must equal
        this bit-for-bit; it is also what the benchmark charges re-derivation
        against.
        """
        ground = relevant_grounding(
            itertools.chain(
                self._rules, (NormalRule(atom) for atom in self._edb)
            ),
            max_atoms=self.max_atoms,
            backend=self.backend,
        )
        return well_founded_model(ground)

    def holds(
        self, query: Union[NormalBCQ, ConjunctiveQuery, Literal, Atom, str]
    ) -> bool:
        """Does the query hold in the maintained well-founded model?"""
        if isinstance(query, str):
            query = parse_query(query)
        model = self.model()
        if isinstance(query, Atom):
            return model.is_true(query)
        if isinstance(query, Literal):
            return model.holds(query)
        return query_holds(query, model)

    def answer(
        self,
        query: Union[NormalBCQ, ConjunctiveQuery, str],
        *,
        constants_only: bool = True,
    ) -> set[tuple]:
        """All answers to a conjunctive query over the maintained model."""
        if isinstance(query, str):
            query = parse_query(query)
        answers = evaluate_query(as_conjunctive_query(query), self.model())
        if constants_only:
            answers = {
                tup
                for tup in answers
                if all(isinstance(term, Constant) for term in tup)
            }
        return answers

    def facts_with_predicate(self, predicate: str) -> Iterator[Atom]:
        """The current EDB facts with the given predicate name."""
        return (atom for atom in self._edb if atom.predicate == predicate)
