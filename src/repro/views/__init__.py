"""Materialized-view maintenance over the well-founded LP core.

A long-lived :class:`MaterializedEngine` keeps the ground program, the SCC
condensation and the solved well-founded model warm while facts are inserted
(delta-round regrounding + activation closure) and retracted (DRed
delete–rederive with a counting fast path for non-recursive atoms).  See
:mod:`repro.views.materialized` for the architecture notes.
"""

from .materialized import MaterializedEngine

__all__ = ["MaterializedEngine"]
