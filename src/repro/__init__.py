"""repro — Well-founded semantics for guarded normal Datalog± under the UNA.

A from-scratch Python implementation of

    André Hernich, Clemens Kupke, Thomas Lukasiewicz, Georg Gottlob.
    "Well-Founded Semantics for Extended Datalog and Ontological Reasoning."
    PODS 2013.

The public API re-exported here covers the common workflow:

>>> from repro import parse_program, parse_query, WellFoundedEngine
>>> program, database = parse_program('''
...     scientist(X) -> exists Y isAuthorOf(X, Y).
...     scientist(john).
... ''')
>>> engine = WellFoundedEngine(program, database)
>>> engine.holds(parse_query("? isAuthorOf(john, Y)"))
True

Sub-packages
------------
``repro.lang``   terms, atoms, rules, programs, queries, parsing, Skolemisation
``repro.lp``     classical WFS substrate for finite ground normal programs
``repro.chase``  guarded chase forests, atom types, locality machinery
``repro.core``   the paper's contribution: WFS for guarded normal Datalog±
``repro.rewrite`` magic-sets query-driven rewriting for goal-directed answering
``repro.views``  materialized-view maintenance (DRed/counting) over warm state
``repro.dl``     DL-Lite_{R,⊓,not} front-end translated to Datalog±
``repro.bench``  workload generators and the measurement harness
"""

from .exceptions import (
    ConvergenceError,
    GroundingError,
    IllFormedRuleError,
    InconsistentInterpretationError,
    NotGuardedError,
    NotStratifiedError,
    ParseError,
    ReproError,
    TranslationError,
)
from .lang import (
    Atom,
    Constant,
    ConjunctiveQuery,
    Database,
    DatalogPMProgram,
    FunctionTerm,
    Literal,
    NTGD,
    NormalBCQ,
    NormalProgram,
    NormalRule,
    Schema,
    Substitution,
    TGD,
    Variable,
    evaluate_query,
    parse_atom,
    parse_database,
    parse_literal,
    parse_normal_program,
    parse_normal_rule,
    parse_ntgd,
    parse_program,
    parse_query,
    parse_term,
    query_holds,
    skolemize_ntgd,
    skolemize_program,
)
from .lp import (
    GroundProgram,
    Interpretation,
    RuleIndex,
    WellFoundedModel,
    perfect_model,
    relevant_grounding,
    stable_models,
    well_founded_model,
    well_founded_model_alternating,
    well_founded_model_naive,
)

__version__ = "0.1.0"

__all__ = [
    # exceptions
    "ReproError",
    "ParseError",
    "IllFormedRuleError",
    "NotGuardedError",
    "NotStratifiedError",
    "GroundingError",
    "ConvergenceError",
    "InconsistentInterpretationError",
    "TranslationError",
    # language
    "Atom",
    "Constant",
    "ConjunctiveQuery",
    "Database",
    "DatalogPMProgram",
    "FunctionTerm",
    "Literal",
    "NTGD",
    "NormalBCQ",
    "NormalProgram",
    "NormalRule",
    "Schema",
    "Substitution",
    "TGD",
    "Variable",
    "evaluate_query",
    "query_holds",
    "skolemize_ntgd",
    "skolemize_program",
    "parse_atom",
    "parse_database",
    "parse_literal",
    "parse_normal_program",
    "parse_normal_rule",
    "parse_ntgd",
    "parse_program",
    "parse_query",
    "parse_term",
    # lp substrate
    "GroundProgram",
    "Interpretation",
    "RuleIndex",
    "WellFoundedModel",
    "perfect_model",
    "relevant_grounding",
    "stable_models",
    "well_founded_model",
    "well_founded_model_alternating",
    "well_founded_model_naive",
    # lazily re-exported flagships (see __getattr__)
    "MaterializedEngine",
    "WellFoundedEngine",
    "answer_query",
    "holds_under_wfs",
    "shared_engine",
    "StratifiedDatalogPM",
    "SegmentStore",
    "shared_segment_store",
    "clear_segment_stores",
    "segment_store_info",
    "Ontology",
    "OntologyReasoner",
    "translate_ontology",
    "rewrite_for_query",
    "ground_magic",
    "MagicPlan",
]


def __getattr__(name: str):
    """Lazily expose the heavier sub-packages' flagship classes.

    ``WellFoundedEngine``, ``answer_query`` (from :mod:`repro.core`) and the
    DL front-end (:mod:`repro.dl`) import the chase machinery; importing them
    lazily keeps ``import repro`` cheap for users who only need the language
    or LP layers.
    """
    if name in (
        "WellFoundedEngine",
        "answer_query",
        "holds_under_wfs",
        "shared_engine",
        "StratifiedDatalogPM",
    ):
        from . import core

        return getattr(core, name)
    if name == "MaterializedEngine":
        from . import views

        return views.MaterializedEngine
    if name in (
        "SegmentStore",
        "shared_segment_store",
        "clear_segment_stores",
        "segment_store_info",
    ):
        from .chase import segments

        return getattr(segments, name)
    if name in ("Ontology", "OntologyReasoner", "translate_ontology"):
        from . import dl

        return getattr(dl, name)
    if name in ("rewrite_for_query", "ground_magic", "MagicPlan"):
        from . import rewrite

        return getattr(rewrite, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
