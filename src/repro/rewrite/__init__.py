"""Query-driven (magic-sets) rewriting for goal-directed WFS query answering.

The subsystem turns the bottom-up reasoner into a goal-directed query engine,
following the query-rewriting line of the ontological-database literature
(Gottlob–Orsi–Pieris; the Vadalog system): instead of grounding from *all*
facts, the query's constants are propagated top-down through the program and
only the reachable slice is ever grounded.

Pipeline (see each module for the details):

* :mod:`repro.rewrite.sips` — pluggable sideways-information-passing
  strategies that order rule bodies (left-to-right default, bound-first
  optional) and always visit negated literals last, fully bound;
* :mod:`repro.rewrite.adornment` — the bound/free adornment pass computing
  the ``(predicate, adornment)`` pairs reachable from a query, plus the
  query-relevant predicate set the chase layer uses for pruning;
* :mod:`repro.rewrite.magic` — the magic transformation itself, realised as a
  WFS-sound *grounding-time* restriction: magic guards gate the semi-naive
  grounding and are stripped before the well-founded model is computed, so
  magic atoms never interact with three-valued evaluation.

:class:`repro.core.engine.WellFoundedEngine` wires this into ``holds()`` /
``answer()`` behind the ``rewrite=`` option, with a conservative fallback to
relevance-pruned unrewritten evaluation for program/query pairs outside the
supported fragment (query-relevant existential recursion).
"""

from .adornment import AdornedProgram, Adornment, adorn, adornment_of
from .magic import (
    MAGIC_PREFIX,
    MagicGrounding,
    MagicPlan,
    ground_magic,
    is_magic_predicate,
    magic_predicate_name,
    rewrite_for_query,
)
from .sips import BoundFirstSIPS, LeftToRightSIPS, SIPSStep, SIPSStrategy, sips_strategy

__all__ = [
    "Adornment",
    "AdornedProgram",
    "adorn",
    "adornment_of",
    "MAGIC_PREFIX",
    "MagicGrounding",
    "MagicPlan",
    "ground_magic",
    "is_magic_predicate",
    "magic_predicate_name",
    "rewrite_for_query",
    "BoundFirstSIPS",
    "LeftToRightSIPS",
    "SIPSStep",
    "SIPSStrategy",
    "sips_strategy",
]
