"""Magic-sets rewriting as a WFS-sound *grounding-time* restriction.

Classical magic sets (Beeri–Ramakrishnan) rewrite a program so that bottom-up
evaluation only derives atoms relevant to a query.  Under the well-founded
semantics the textbook transformation is unsound in general: magic atoms can
become *undefined* inside the rewritten program and corrupt truth values
(Kemp–Srivastava–Stuckey).  This module therefore keeps the magic predicates
**out of the evaluated program entirely**:

1. The adorned program (:mod:`repro.rewrite.adornment`) yields, per reachable
   ``(predicate, adornment)`` pair, *magic rules* that pass bindings sideways
   and *gated rules* — the original rules with a magic guard atom prepended to
   the positive body.  Magic rules are emitted for **both positive and negated
   body literals**; the negative-context copies (``negative_context`` in
   :class:`MagicPlan`) are the labelled/doubled rules that make the restriction
   WFS-sound: relevance must flow into negated subgoals, because their truth
   values feed the unfounded-set computation.
2. The gated program is grounded by the ordinary semi-naive relevant grounding
   (:class:`repro.lp.grounding.SemiNaiveGrounder`), which treats negative
   bodies as satisfiable — a two-valued over-approximation.  The magic atoms
   are therefore computed on the program's *possible* (envelope) copy and
   over-approximate the atoms the query can reach.
3. :func:`ground_magic` then **strips** the magic guards and drops the magic
   rules, leaving a plain sub-program of the full relevant grounding whose
   heads are exactly the magic-covered atoms, plus the covered database facts.

Because the covered atom set is closed under "head covered ⇒ body covered"
(cover flows through every literal, negated ones included), the stripped
program is a *splitting bottom* of the full grounding: by the modularity of
the WFS, the well-founded model of the stripped program agrees with the full
model on every covered atom — for any program, stratified or not.  Query
evaluation only ever consults covered atoms (the query literals seed the
cover), so answers are preserved exactly.

The *sound fragment* enforced by :func:`rewrite_for_query` is about
**termination**, not truth values: the restricted grounding must saturate.
Query-relevant recursion through rules that create function terms (Skolemised
existentials) can make the fixpoint infinite, so such program/query pairs are
flagged ``supported=False`` and the engine falls back to the unrewritten
(chase-segment) evaluation, pruned to the query-relevant predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..lang.atoms import Atom, Literal
from ..lang.program import NormalProgram
from ..lang.rules import NormalRule
from ..lang.terms import Term
from ..lp.columnar import make_grounder
from ..lp.grounding import GroundProgram
from .adornment import AdornedProgram, Adornment, adorn
from .sips import SIPSStrategy, sips_strategy

__all__ = [
    "MAGIC_PREFIX",
    "MagicPlan",
    "MagicGrounding",
    "magic_predicate_name",
    "is_magic_predicate",
    "rewrite_for_query",
    "ground_magic",
]

#: Reserved namespace for magic predicates; programs using it are not rewritten.
MAGIC_PREFIX = "__magic_"


def magic_predicate_name(predicate: str, adornment: Adornment) -> str:
    """The name of the magic predicate ``magic_p^a`` (collision-free by prefix)."""
    return f"{MAGIC_PREFIX}{adornment}__{predicate}"


def is_magic_predicate(predicate: str) -> bool:
    """``True`` iff the predicate name lives in the magic namespace."""
    return predicate.startswith(MAGIC_PREFIX)


def _magic_atom(predicate: str, adornment: Adornment, args: Sequence[Term]) -> Atom:
    """The magic atom carrying the bound arguments of a call."""
    return Atom(magic_predicate_name(predicate, adornment), adornment.project(args))


@dataclass
class MagicPlan:
    """The rewriting of one program/query pair.

    ``program`` is the *gated* magic program: magic seeds and rules plus the
    original rules guarded by magic atoms.  It is ``None`` when the pair falls
    outside the supported fragment (``supported=False``; ``reason`` says why),
    in which case only the relevance information is usable.
    """

    query: tuple[Literal, ...]
    adorned: AdornedProgram
    sips: str
    supported: bool
    reason: Optional[str] = None
    program: Optional[NormalProgram] = None
    #: magic rules emitted for negated body literals (the labelled copies)
    negative_context: tuple[NormalRule, ...] = ()
    #: number of magic seed facts / magic rules / gated rules
    seed_count: int = 0
    magic_rule_count: int = 0
    gated_rule_count: int = 0
    #: DLV-style adornment subsumption: each reachable ``(predicate,
    #: adornment)`` maps to the most general reachable adornment whose bound
    #: positions it covers (itself when nothing more general is reachable).
    #: The rewriting is emitted over representatives only.
    representatives: "dict[tuple[str, Adornment], Adornment]" = field(
        default_factory=dict
    )
    #: reachable adornments folded into a strictly more general representative
    folded_adornments: int = 0
    #: the strongest acyclicity criterion certifying the restricted grounding
    #: terminates ("function-free", "weak", "joint", "super-weak"); ``None``
    #: when the plan is unsupported
    termination_criterion: Optional[str] = None

    def relevant_predicates(self) -> frozenset[str]:
        """Predicates reachable from the query (valid even when unsupported)."""
        return self.adorned.relevant_predicates()

    def adornments_by_predicate(self) -> dict[str, list[Adornment]]:
        """Representative adornments grouped by predicate (for cover tests).

        Only representative adornments have magic predicates in the emitted
        program, so cover tests (e.g. the database-fact filter of
        :func:`ground_magic`) must look these up, not the raw reachable set.
        """
        grouped: dict[str, list[Adornment]] = {}
        for key in self.adorned.reachable:
            predicate, adornment = key
            adornment = self.representatives.get(key, adornment)
            bucket = grouped.setdefault(predicate, [])
            if adornment not in bucket:
                bucket.append(adornment)
        return grouped

    def __repr__(self) -> str:
        status = "supported" if self.supported else f"fallback: {self.reason}"
        return (
            f"MagicPlan({len(self.adorned.reachable)} adorned predicates, "
            f"{self.magic_rule_count} magic rules, {self.gated_rule_count} gated rules, "
            f"{status})"
        )


def _weak_acyclicity_violation(rules: Sequence[NormalRule]) -> Optional[str]:
    """A reason the fragment is not weakly acyclic, or ``None`` if it is.

    Compatibility shim: the position-graph test used to live here and now has
    a single source of truth in :func:`repro.analysis.termination.
    weak_acyclicity_violation`; this name is kept so existing imports keep
    working.  Imported lazily because :mod:`repro.analysis.lint` imports this
    module for :data:`MAGIC_PREFIX`.
    """
    from ..analysis.termination import weak_acyclicity_violation

    return weak_acyclicity_violation(rules)


def _unsupported_reason(
    rules: Sequence[NormalRule], relevant: frozenset[str]
) -> "tuple[Optional[str], Optional[str]]":
    """``(reason, criterion)`` for the query-relevant fragment.

    The magic-restricted grounding must reach a fixpoint.  Magic and gated
    rules never create terms (they only project and copy existing ones), so
    termination is governed by the original query-relevant rules — judged by
    the full acyclicity hierarchy of :mod:`repro.analysis.termination` (weak
    ⊂ joint ⊂ super-weak), not weak acyclicity alone: any member of the
    hierarchy bounds the Skolem-chase and with it the restricted grounding.
    Returns ``(None, criterion)`` with the strongest passing criterion when
    the fragment is supported, and ``(reason, None)`` when it is not — which
    also covers programs whose predicates collide with the reserved magic
    namespace; those pairs are answered by the fallback path instead.
    """
    from ..analysis.termination import termination_verdict

    for rule in rules:
        predicate = rule.head.predicate
        if predicate in relevant and is_magic_predicate(predicate):
            return (
                f"program predicate {predicate!r} collides with the magic namespace",
                None,
            )
    relevant_rules = [r for r in rules if r.head.predicate in relevant]
    verdict = termination_verdict(relevant_rules)
    if verdict.terminating:
        return None, verdict.criterion
    return (
        "query-relevant fragment has no static termination criterion "
        f"({verdict.reason})",
        None,
    )


def _fold_adornments(
    adorned: AdornedProgram,
) -> dict[tuple[str, Adornment], Adornment]:
    """DLV-style adornment subsumption over the reachable adorned predicates.

    When both ``p^bb`` and ``p^bf`` are reachable, emitting magic machinery
    for both duplicates every rule of ``p`` per adornment.  Each reachable
    adornment is therefore mapped to the most general reachable adornment of
    the same predicate whose bound positions it *covers* (fewest bound
    positions, adornment string as the deterministic tie-break) — ``p^bb``
    folds into ``p^bf``, which folds into ``p^ff`` when that is reachable too.
    Folding towards the more general side is the sound direction: the coarser
    magic predicate covers a superset of atoms, and its full grounding cost is
    already being paid (it is reachable), so dropping the specialised copies
    removes duplicate rules without shrinking the cover.  The map is
    idempotent: a representative's candidate set is a subset of every
    adornment it represents, so nothing more general can be left for it.
    """
    by_predicate: dict[tuple[str, int], list[Adornment]] = {}
    for predicate, adornment in adorned.reachable:
        by_predicate.setdefault((predicate, adornment.arity), []).append(adornment)
    representative: dict[tuple[str, Adornment], Adornment] = {}
    for (predicate, _), adornments in by_predicate.items():
        for adornment in adornments:
            bound = set(adornment.bound_positions())
            representative[(predicate, adornment)] = min(
                (a for a in adornments if set(a.bound_positions()) <= bound),
                key=lambda a: (len(a.bound_positions()), str(a)),
            )
    return representative


def rewrite_for_query(
    rules: Iterable[NormalRule],
    query: Sequence[Literal],
    *,
    sips: "str | SIPSStrategy" = "left-to-right",
) -> MagicPlan:
    """Rewrite *rules* for goal-directed grounding of *query*.

    Returns a :class:`MagicPlan`; when ``plan.supported`` is ``False`` the
    plan still carries the adornment/relevance information so callers can fall
    back to a relevance-pruned unrewritten evaluation.

    Reachable adornments are first folded by subsumption
    (:func:`_fold_adornments`): magic seeds, magic rules and gated rules are
    emitted for *representative* adornments only, with every call's adornment
    mapped through the fold — multi-pattern queries that reach both ``p^bf``
    and ``p^bb`` get one set of ``p`` rules instead of two.
    """
    strategy = sips_strategy(sips)
    rules = list(rules)
    adorned = adorn(rules, query, sips=strategy)
    plan = MagicPlan(
        query=tuple(query),
        adorned=adorned,
        sips=strategy.name,
        supported=True,
    )

    reason, criterion = _unsupported_reason(rules, adorned.relevant_predicates())
    if reason is not None:
        plan.supported = False
        plan.reason = reason
        return plan
    plan.termination_criterion = criterion

    representative = _fold_adornments(adorned)
    plan.representatives = representative
    plan.folded_adornments = sum(
        1 for key, rep in representative.items() if key[1] != rep
    )

    program = NormalProgram()
    negative_context: list[NormalRule] = []

    # -- seeds and magic rules from the query body ---------------------------
    for call in adorned.query_calls:
        adornment = representative[(call.predicate, call.adornment)]
        magic_head = _magic_atom(call.predicate, adornment, call.atom.args)
        magic_rule = NormalRule(magic_head, call.step.prefix, ())
        if magic_rule not in program:
            program.add(magic_rule)
            if magic_rule.is_fact():
                plan.seed_count += 1
            else:
                plan.magic_rule_count += 1
        if not call.positive:
            negative_context.append(magic_rule)

    # -- magic rules and gated rules from the adorned program ----------------
    for adorned_rule in adorned.adorned_rules:
        rule = adorned_rule.rule
        head_key = (rule.head.predicate, adorned_rule.adornment)
        if representative[head_key] != adorned_rule.adornment:
            continue  # a more general reachable adornment carries these rules
        gate = _magic_atom(rule.head.predicate, adorned_rule.adornment, rule.head.args)
        for call in adorned_rule.calls:
            adornment = representative[(call.predicate, call.adornment)]
            magic_head = _magic_atom(call.predicate, adornment, call.atom.args)
            magic_rule = NormalRule(magic_head, (gate, *call.step.prefix), ())
            if magic_rule not in program:
                plan.magic_rule_count += 1
                program.add(magic_rule)
                if not call.positive:
                    negative_context.append(magic_rule)
        gated = NormalRule(rule.head, (gate, *rule.body_pos), rule.body_neg)
        if gated not in program:
            plan.gated_rule_count += 1
            program.add(gated)

    plan.program = program
    plan.negative_context = tuple(negative_context)
    return plan


@dataclass
class MagicGrounding:
    """Result of grounding a :class:`MagicPlan` against a database.

    ``ground`` is the stripped program: the sub-program of the full relevant
    grounding restricted to magic-covered heads, with all magic artefacts
    removed, plus the covered database facts.  ``saturated`` reports whether
    the restricted fixpoint completed within its budgets — only a saturated
    grounding is a sound basis for query answering.
    """

    ground: GroundProgram
    saturated: bool
    rounds: int
    #: derived magic (cover) atoms
    magic_atoms: int
    #: candidate atoms of the restricted grounding (magic atoms included)
    candidates: int
    #: database facts covered (and therefore kept)
    covered_facts: int

    def stats(self) -> dict:
        """JSON-ready summary used by the engine's per-query statistics."""
        return {
            "ground_rules": len(self.ground),
            "saturated": self.saturated,
            "rounds": self.rounds,
            "magic_atoms": self.magic_atoms,
            "candidates": self.candidates,
            "covered_facts": self.covered_facts,
        }


def ground_magic(
    plan: MagicPlan,
    database: Iterable[Atom] = (),
    *,
    max_rounds: Optional[int] = None,
    max_atoms: Optional[int] = None,
    backend: str = "tuple",
) -> MagicGrounding:
    """Ground the gated magic program semi-naively and strip the magic guards.

    ``database`` atoms are candidates for rule bodies throughout; only the
    magic-covered ones survive into the result as facts.  Budgets behave like
    :class:`~repro.lp.grounding.SemiNaiveGrounder`'s but never raise — a
    budget hit is reported as ``saturated=False`` and the caller is expected
    to fall back to unrewritten evaluation.

    ``backend`` selects the grounding executor (see
    :func:`~repro.lp.columnar.make_grounder`).  Under the columnar backends
    the magic guard — always the first positive body atom of a gated rule —
    drives the first hash probe of every join plan, so the guard's bound
    columns act as a semi-join filter over the gated relation.
    """
    if plan.program is None:
        raise ValueError(f"plan is not supported ({plan.reason}); cannot ground it")
    database = list(database)
    grounder = make_grounder(plan.program, database, backend=backend)
    saturated = grounder.run(
        max_rounds=max_rounds, max_atoms=max_atoms, raise_on_budget=False
    )

    stripped = GroundProgram()
    magic_atoms = sum(
        1 for atom in grounder.index.atoms() if is_magic_predicate(atom.predicate)
    )
    for instance in grounder.ground:
        if is_magic_predicate(instance.head.predicate):
            continue
        stripped.add(
            NormalRule(
                instance.head,
                tuple(a for a in instance.body_pos if not is_magic_predicate(a.predicate)),
                instance.body_neg,
            )
        )

    adornments = plan.adornments_by_predicate()
    covered_facts = 0
    for atom in database:
        for adornment in adornments.get(atom.predicate, ()):
            if _magic_atom(atom.predicate, adornment, atom.args) in grounder.index:
                stripped.add(NormalRule(atom))
                covered_facts += 1
                break

    return MagicGrounding(
        ground=stripped,
        saturated=saturated,
        rounds=grounder.rounds,
        magic_atoms=magic_atoms,
        candidates=len(grounder.index),
        covered_facts=covered_facts,
    )
