"""Bound/free adornments for query-driven rewriting (the ``p^a`` of magic sets).

Given a program and a query, this module computes the set of *adorned
predicates* ``p^a`` reachable from the query: an adornment ``a ∈ {b, f}^arity``
records which argument positions carry a binding when the predicate is called
top-down.  Bindings are propagated sideways through rule bodies by a pluggable
:mod:`SIPS strategy <repro.rewrite.sips>`.

The pass produces an :class:`AdornedProgram` holding

* the reachable ``(predicate, adornment)`` pairs,
* per ``(rule, adornment)`` the SIPS schedule used to visit the body (the raw
  material for the magic transformation in :mod:`repro.rewrite.magic`),
* the *relevant predicate set* — every predicate reachable from the query in
  the rule dependency graph.  The chase layer uses this set to prune
  existential expansions that cannot influence the query.

Predicates are **not renamed**: the engine evaluates the original program
restricted by magic guards (see :mod:`repro.rewrite.magic`), so adornments
exist only to name magic predicates and to drive binding propagation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..exceptions import IllFormedRuleError
from ..lang.atoms import Atom, Literal
from ..lang.rules import NormalRule
from ..lang.terms import Variable, variables_of
from .sips import SIPSStep, SIPSStrategy, _is_bound_arg, sips_strategy

__all__ = [
    "Adornment",
    "AdornedCall",
    "AdornedRule",
    "AdornedProgram",
    "adornment_of",
    "adorn",
]


@dataclass(frozen=True)
class Adornment:
    """A bound/free pattern over the argument positions of a predicate."""

    bound: tuple[bool, ...]

    @classmethod
    def all_free(cls, arity: int) -> "Adornment":
        """The adornment binding no position (``f…f``)."""
        return cls((False,) * arity)

    @classmethod
    def all_bound(cls, arity: int) -> "Adornment":
        """The adornment binding every position (``b…b``)."""
        return cls((True,) * arity)

    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.bound)

    def bound_positions(self) -> tuple[int, ...]:
        """Indices of the bound positions, in order."""
        return tuple(i for i, b in enumerate(self.bound) if b)

    def project(self, args: Sequence) -> tuple:
        """The sub-tuple of *args* at the bound positions (the magic arguments)."""
        return tuple(args[i] for i in self.bound_positions())

    def __str__(self) -> str:
        return "".join("b" if b else "f" for b in self.bound)

    def __repr__(self) -> str:
        return f"Adornment({self})"


def adornment_of(atom: Atom, bound: frozenset[Variable]) -> Adornment:
    """The adornment of *atom* when called with *bound* variables bound.

    An argument position is bound iff its term is ground or all its variables
    (including those nested inside function terms) are bound.
    """
    return Adornment(tuple(_is_bound_arg(arg, bound) for arg in atom.args))


@dataclass(frozen=True)
class AdornedCall:
    """A body literal visited under an adornment, with its SIPS context.

    ``step.prefix`` holds the positive atoms visited before this literal — the
    body of the magic rule that passes bindings into the call.
    """

    predicate: str
    adornment: Adornment
    step: SIPSStep

    @property
    def atom(self) -> Atom:
        """The called atom itself."""
        return self.step.literal.atom

    @property
    def positive(self) -> bool:
        """Polarity of the call (``False`` for calls through a negated literal)."""
        return self.step.literal.positive


@dataclass(frozen=True)
class AdornedRule:
    """A program rule processed under one head adornment."""

    rule: NormalRule
    adornment: Adornment
    #: variables bound on entry: the head variables at bound positions
    entry_bound: frozenset[Variable]
    #: one call per body literal, in SIPS order (negatives last)
    calls: tuple[AdornedCall, ...]


def _head_bound_variables(head: Atom, adornment: Adornment) -> frozenset[Variable]:
    """Variables occurring in the head's bound argument positions."""
    result: set[Variable] = set()
    for position in adornment.bound_positions():
        result.update(variables_of(head.args[position]))
    return frozenset(result)


@dataclass
class AdornedProgram:
    """The result of the adornment pass for one program/query pair."""

    #: the query as literals (positives first); see :func:`adorn`
    query: tuple[Literal, ...]
    #: reachable adorned predicates, in discovery order
    reachable: list[tuple[str, Adornment]] = field(default_factory=list)
    #: adorned versions of program rules, one per reachable head adornment
    adorned_rules: list[AdornedRule] = field(default_factory=list)
    #: SIPS calls made directly by the query body
    query_calls: list[AdornedCall] = field(default_factory=list)

    def adornments_of(self, predicate: str) -> list[Adornment]:
        """All reachable adornments of *predicate*."""
        return [a for p, a in self.reachable if p == predicate]

    def relevant_predicates(self) -> frozenset[str]:
        """Every predicate reachable from the query (any adornment)."""
        return frozenset(p for p, _ in self.reachable)

    def __repr__(self) -> str:
        return (
            f"AdornedProgram({len(self.reachable)} adorned predicates, "
            f"{len(self.adorned_rules)} adorned rules)"
        )


def adorn(
    rules: Iterable[NormalRule],
    query: Sequence[Literal],
    *,
    sips: "str | SIPSStrategy" = "left-to-right",
) -> AdornedProgram:
    """Compute the adorned program for *query* over *rules*.

    ``query`` is a sequence of literals; every variable of a negated literal
    must occur in some positive literal (the NBCQ safety condition), except
    that a fully ground negated literal may stand alone.  Constants appearing
    in the query provide the initial bindings.
    """
    strategy = sips_strategy(sips)
    query = tuple(query)
    _check_query(query)

    rules_by_head: dict[str, list[NormalRule]] = {}
    for rule in rules:
        rules_by_head.setdefault(rule.head.predicate, []).append(rule)

    program = AdornedProgram(query=query)
    seen: set[tuple[str, Adornment]] = set()
    worklist: list[tuple[str, Adornment]] = []

    def visit(predicate: str, adornment: Adornment) -> None:
        key = (predicate, adornment)
        if key not in seen:
            seen.add(key)
            program.reachable.append(key)
            worklist.append(key)

    # -- the query body is scheduled like a rule body with nothing bound ------
    for step in strategy.schedule(query, frozenset()):
        adornment = adornment_of(step.literal.atom, step.bound_before)
        call = AdornedCall(step.literal.predicate, adornment, step)
        program.query_calls.append(call)
        visit(call.predicate, adornment)

    # -- propagate through the program rules ----------------------------------
    while worklist:
        predicate, adornment = worklist.pop()
        for rule in rules_by_head.get(predicate, ()):
            entry_bound = _head_bound_variables(rule.head, adornment)
            calls: list[AdornedCall] = []
            for step in strategy.schedule(rule.body, entry_bound):
                call_adornment = adornment_of(step.literal.atom, step.bound_before)
                call = AdornedCall(step.literal.predicate, call_adornment, step)
                calls.append(call)
                visit(call.predicate, call_adornment)
            program.adorned_rules.append(
                AdornedRule(rule, adornment, entry_bound, tuple(calls))
            )
    return program


def _check_query(query: tuple[Literal, ...]) -> None:
    """Enforce the safety condition the rewriting (and NBCQ evaluation) needs."""
    if not query:
        raise IllFormedRuleError("cannot adorn an empty query")
    positive_vars: set[Variable] = set()
    for literal in query:
        if literal.positive:
            positive_vars |= literal.atom.variables()
    for literal in query:
        if literal.positive:
            continue
        uncovered = literal.atom.variables() - positive_vars
        if uncovered:
            names = ", ".join(sorted(str(v) for v in uncovered))
            raise IllFormedRuleError(
                f"negated query literal {literal} has variables {{{names}}} that occur "
                "in no positive query literal"
            )
