"""Sideways information passing strategies (SIPS) for adorned rewriting.

A SIPS decides, for a rule body (or a query), in which order the positive
literals are visited and therefore which variables are *bound* when each body
literal is reached.  The magic-sets transformation (:mod:`repro.rewrite.magic`)
emits one magic rule per visited literal, whose body is the prefix of already
visited positive literals — so the SIPS directly shapes how selective the
rewriting is.

Two strategies are provided:

* :class:`LeftToRightSIPS` (the default) — positive literals in textual body
  order.  This matches the classical presentation (Beeri–Ramakrishnan) and the
  left-to-right evaluation order assumed by the soundness results for
  well-founded magic sets (Kemp–Srivastava–Stuckey's left-to-right weakly
  stratified programs).
* :class:`BoundFirstSIPS` — greedily picks the positive literal with the most
  bound argument positions next (ties broken by body order).  This tends to
  produce more selective magic predicates on star-shaped joins.

Every strategy schedules **negated literals last**, after all positive
literals: rule safety guarantees that all their variables are then bound, so
each negated literal receives a fully-bound adornment.  This is the invariant
the WFS-preserving treatment of negation in :mod:`repro.rewrite.magic` relies
on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from ..lang.atoms import Atom, Literal
from ..lang.terms import Variable, is_ground_term, variables_of

__all__ = [
    "SIPSStep",
    "SIPSStrategy",
    "LeftToRightSIPS",
    "BoundFirstSIPS",
    "sips_strategy",
    "bound_argument_count",
]


@dataclass(frozen=True)
class SIPSStep:
    """One visited body literal together with the variables bound on entry.

    ``bound_before`` is the set of variables already bound when the literal is
    reached (head-bound variables plus the variables of all previously visited
    positive literals); ``prefix`` is the tuple of previously visited
    *positive* atoms, which becomes the body of the literal's magic rule.
    """

    literal: Literal
    bound_before: frozenset[Variable]
    prefix: tuple[Atom, ...]


def _is_bound_arg(arg, bound: frozenset[Variable]) -> bool:
    """An argument position is bound iff the term carries no unbound variable."""
    if is_ground_term(arg):
        return True
    return all(variable in bound for variable in variables_of(arg))


def bound_argument_count(atom: Atom, bound: frozenset[Variable]) -> int:
    """Number of argument positions of *atom* that are bound under *bound*."""
    return sum(1 for arg in atom.args if _is_bound_arg(arg, bound))


class SIPSStrategy(Protocol):
    """Strategy protocol: order a rule body given the initially bound variables."""

    name: str

    def schedule(
        self, body: Sequence[Literal], bound: frozenset[Variable]
    ) -> list[SIPSStep]:  # pragma: no cover - protocol
        ...


class _NegativesLastSIPS:
    """Shared skeleton: order positives by :meth:`_pick`, then all negatives."""

    name = "abstract"

    def schedule(
        self, body: Sequence[Literal], bound: frozenset[Variable]
    ) -> list[SIPSStep]:
        """Visit every body literal once, threading the bound-variable set."""
        positives = [l for l in body if l.positive]
        negatives = [l for l in body if not l.positive]
        steps: list[SIPSStep] = []
        prefix: list[Atom] = []
        remaining = list(positives)
        while remaining:
            literal = self._pick(remaining, bound)
            remaining.remove(literal)
            steps.append(SIPSStep(literal, bound, tuple(prefix)))
            bound = bound | literal.atom.variables()
            prefix.append(literal.atom)
        for literal in negatives:
            # Safety guarantees the negated literal's variables occur in the
            # positive body, so by now every one of them is bound.
            steps.append(SIPSStep(literal, bound, tuple(prefix)))
        return steps

    def _pick(
        self, remaining: list[Literal], bound: frozenset[Variable]
    ) -> Literal:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class LeftToRightSIPS(_NegativesLastSIPS):
    """The classical left-to-right SIPS: positives in body order."""

    name = "left-to-right"

    def _pick(self, remaining: list[Literal], bound: frozenset[Variable]) -> Literal:
        return remaining[0]


class BoundFirstSIPS(_NegativesLastSIPS):
    """Greedy SIPS: visit the positive literal with the most bound positions next."""

    name = "bound-first"

    def _pick(self, remaining: list[Literal], bound: frozenset[Variable]) -> Literal:
        return max(remaining, key=lambda l: bound_argument_count(l.atom, bound))


_STRATEGIES = {
    LeftToRightSIPS.name: LeftToRightSIPS,
    BoundFirstSIPS.name: BoundFirstSIPS,
}


def sips_strategy(sips: "str | SIPSStrategy") -> SIPSStrategy:
    """Resolve a strategy name (``"left-to-right"``, ``"bound-first"``) or object."""
    if isinstance(sips, str):
        try:
            return _STRATEGIES[sips]()
        except KeyError:
            known = ", ".join(sorted(_STRATEGIES))
            raise ValueError(f"unknown SIPS strategy {sips!r} (known: {known})") from None
    return sips
