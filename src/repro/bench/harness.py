"""Measurement harness shared by the benchmark suite.

Provides the handful of utilities every experiment needs:

* :func:`time_call` — robust wall-clock timing (median of several repeats);
* :func:`fit_powerlaw_exponent` — least-squares slope on a log–log scale, used
  to report the *empirical* growth exponent of a scaling series (experiment
  E2 compares it against the paper's PTIME data-complexity claim);
* :class:`ResultTable` — a tiny column-aligned table printer so every bench
  prints the rows/series it reproduces in a uniform way (and the output of
  ``pytest benchmarks/ --benchmark-only`` doubles as the EXPERIMENTS.md data);
* :func:`scaling_series` — run a (build, run) pair over a list of sizes and
  collect timings.

The harness deliberately depends only on the standard library plus numpy
(which is available offline) so benchmarks can run anywhere the library runs.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

try:  # numpy is an optional convenience for the fit; fall back to a manual fit.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is installed in the target env
    _np = None

__all__ = ["time_call", "fit_powerlaw_exponent", "ResultTable", "scaling_series"]


def time_call(fn: Callable[[], object], *, repeats: int = 3) -> float:
    """Median wall-clock time (seconds) of calling ``fn()`` *repeats* times."""
    samples = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]


def fit_powerlaw_exponent(sizes: Sequence[float], times: Sequence[float]) -> float:
    """Least-squares slope of ``log(time)`` against ``log(size)``.

    For a series that scales as ``time ≈ c · size^k`` the returned value
    approximates ``k``; a value around 1 means linear scaling, around 2
    quadratic, and so on.  Degenerate inputs (fewer than two points, zero
    times) return ``float('nan')``.
    """
    pairs = [(s, t) for s, t in zip(sizes, times) if s > 0 and t > 0]
    if len(pairs) < 2:
        return float("nan")
    xs = [math.log(s) for s, _ in pairs]
    ys = [math.log(t) for _, t in pairs]
    if _np is not None:
        slope, _intercept = _np.polyfit(xs, ys, 1)
        return float(slope)
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    denominator = sum((x - mean_x) ** 2 for x in xs)
    if denominator == 0:
        return float("nan")
    return sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / denominator


@dataclass
class ResultTable:
    """A minimal column-aligned table used by every benchmark's printed report."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append one row (values are converted to strings when printing)."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} values but the table has {len(self.headers)} columns"
            )
        self.rows.append(values)

    def render(self) -> str:
        """Render the table as aligned text."""
        string_rows = [[_format_cell(v) for v in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in string_rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "-" * len(self.title)]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers)))
        lines.append("  ".join("-" * widths[i] for i in range(len(self.headers))))
        for row in string_rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def print(self) -> None:
        """Print the rendered table (with a leading blank line for readability)."""
        print("\n" + self.render())


def _format_cell(value: object) -> str:
    """Human-friendly cell formatting (floats get 4 significant digits)."""
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def scaling_series(
    sizes: Iterable[int],
    build: Callable[[int], object],
    run: Callable[[object], object],
    *,
    repeats: int = 3,
) -> list[tuple[int, float]]:
    """Time ``run(build(size))`` for every size; building is not timed.

    Returns a list of ``(size, median_seconds)`` pairs in input order.
    """
    series: list[tuple[int, float]] = []
    for size in sizes:
        prepared = build(size)
        elapsed = time_call(lambda: run(prepared), repeats=repeats)
        series.append((size, elapsed))
    return series
