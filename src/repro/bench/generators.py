"""Synthetic workload generators for the evaluation (DESIGN.md, experiments E1–E7).

The paper has no empirical section, so the workloads here are derived from its
worked examples and from the classical benchmark programs of the WFS
literature:

* :func:`paper_example_program` — Example 4/6/9 verbatim (the transfinite
  ``T(0)`` example), optionally with extra seed facts.
* :func:`employment_workload` — Example 2 (the DL-Lite_{R,⊓,not} employment
  ontology) scaled to ``n`` persons; used for the data-complexity experiment.
* :func:`win_move_game` — the win/move game, *the* canonical program with
  unstratified negation; both as a plain normal logic program (for the LP
  substrate) and as a guarded Datalog± program.
* :func:`reachability_program` — a stratified program (reach + unreachable)
  used to check the coincidence of WFS and stratified semantics.
* :func:`random_guarded_program` — random guarded NTGDs over a configurable
  schema, used for the combined-complexity experiment.
* :func:`university_ontology` — a small LUBM-flavoured ontology with
  existential axioms and default negation, used for the ontology experiment.

All generators are deterministic given their ``seed``.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Sequence

from ..lang.atoms import Atom
from ..lang.program import Database, DatalogPMProgram, NormalProgram
from ..lang.rules import NTGD, NormalRule
from ..lang.terms import Constant, Variable
from ..dl.syntax import Ontology

__all__ = [
    "paper_example_program",
    "employment_workload",
    "employment_ontology",
    "win_move_game",
    "win_move_datalog_pm",
    "reachability_program",
    "large_edb_reachability",
    "chain_reachability_workload",
    "combined_complexity_workload",
    "random_guarded_program",
    "university_ontology",
]


# ---------------------------------------------------------------------------
# E1 — the paper's running example
# ---------------------------------------------------------------------------


def paper_example_program(extra_chains: int = 0) -> tuple[DatalogPMProgram, Database]:
    """The program and database of Example 4 of the paper.

    ``extra_chains`` adds further seed facts ``r(i, i, i+1), p(i, i)`` for
    ``i = 1 … extra_chains`` so the same rule set can be exercised over larger
    databases (each chain behaves like an isomorphic copy of the original).
    """
    x, y, z = Variable("X"), Variable("Y"), Variable("Z")
    w = Variable("W")
    r = lambda a, b, c: Atom("r", (a, b, c))  # noqa: E731 - local shorthand
    p = lambda a, b: Atom("p", (a, b))  # noqa: E731
    q = lambda a: Atom("q", (a,))  # noqa: E731
    s = lambda a: Atom("s", (a,))  # noqa: E731
    t = lambda a: Atom("t", (a,))  # noqa: E731

    program = DatalogPMProgram(
        [
            NTGD((r(x, y, z),), r(x, z, w), label="growth"),
            NTGD((r(x, y, z), p(x, y)), p(x, z), (q(z),), label="propagate"),
            NTGD((r(x, y, z),), q(z), (p(x, y),), label="mark"),
            NTGD((r(x, y, z),), s(x), (p(x, z),), label="suspect"),
            NTGD((p(x, y),), t(x), (s(x),), label="trust"),
        ]
    )
    facts = [Atom("r", (Constant("0"), Constant("0"), Constant("1"))), Atom("p", (Constant("0"), Constant("0")))]
    for i in range(1, extra_chains + 1):
        base = Constant(f"c{i}")
        succ = Constant(f"c{i}_1")
        facts.append(Atom("r", (base, base, succ)))
        facts.append(Atom("p", (base, base)))
    return program, Database(facts)


# ---------------------------------------------------------------------------
# E2 / E5 — the employment ontology of Example 2, scaled
# ---------------------------------------------------------------------------


def employment_ontology(
    num_persons: int,
    *,
    employed_fraction: float = 0.5,
    registered_fraction: float = 0.1,
    seed: int = 0,
) -> Ontology:
    """Example 2 of the paper as an ontology over ``num_persons`` individuals.

    A ``registered_fraction`` of the unemployed persons is explicitly asserted
    to already hold a job-seeker ID (a role assertion to a named ID), which
    exercises the negated existential in the first axiom.
    """
    rng = random.Random(seed)
    ontology = Ontology()
    ontology.subclass(
        ["Person", "Employed", ("not", "exists JobSeekerID")], "exists EmployeeID"
    )
    ontology.subclass(
        ["Person", ("not", "Employed"), ("not", "exists EmployeeID")], "exists JobSeekerID"
    )
    ontology.subclass(
        ["exists EmployeeID-", ("not", "exists JobSeekerID-")], "ValidID"
    )
    for i in range(num_persons):
        person = f"p{i}"
        ontology.abox.assert_concept("Person", person)
        if rng.random() < employed_fraction:
            ontology.abox.assert_concept("Employed", person)
        elif rng.random() < registered_fraction:
            ontology.abox.assert_role("JobSeekerID", person, f"jsid{i}")
    return ontology


def employment_workload(
    num_persons: int,
    *,
    employed_fraction: float = 0.5,
    registered_fraction: float = 0.1,
    seed: int = 0,
) -> tuple[DatalogPMProgram, Database]:
    """The employment ontology already translated to guarded normal Datalog±."""
    from ..dl.translate import translate_ontology

    ontology = employment_ontology(
        num_persons,
        employed_fraction=employed_fraction,
        registered_fraction=registered_fraction,
        seed=seed,
    )
    return translate_ontology(ontology)


# ---------------------------------------------------------------------------
# E4 / E7 — the win/move game
# ---------------------------------------------------------------------------


def _game_graph(
    num_positions: int, out_degree: int, seed: int
) -> list[tuple[str, str]]:
    """A random directed game graph with out-degrees between 0 and *out_degree*.

    Roughly a quarter of the positions are dead ends (out-degree 0), which
    gives the game a rich mix of won, lost and drawn (undefined) positions —
    the interesting regime for the well-founded semantics.
    """
    rng = random.Random(seed)
    edges: set[tuple[str, str]] = set()
    for source in range(num_positions):
        if rng.random() < 0.25:
            continue  # dead end: an immediately lost position
        for _ in range(rng.randint(1, max(1, out_degree))):
            target = rng.randrange(num_positions)
            if target != source:
                edges.add((f"n{source}", f"n{target}"))
    return sorted(edges)


def win_move_game(
    num_positions: int,
    *,
    out_degree: int = 2,
    seed: int = 0,
) -> NormalProgram:
    """The win/move game as a normal logic program.

    ``win(X) ← move(X, Y), not win(Y)`` over a random game graph.  The program
    is not stratified; positions on even-length escape paths come out true,
    dead ends false, and cycles with no escape undefined — the textbook WFS
    behaviour used throughout the literature (and in the paper's Example 4
    in spirit).
    """
    x, y = Variable("X"), Variable("Y")
    rules = [
        NormalRule(Atom("win", (x,)), (Atom("move", (x, y)),), (Atom("win", (y,)),))
    ]
    for source, target in _game_graph(num_positions, out_degree, seed):
        rules.append(NormalRule(Atom("move", (Constant(source), Constant(target)))))
    return NormalProgram(rules)


def win_move_datalog_pm(
    num_positions: int,
    *,
    out_degree: int = 2,
    seed: int = 0,
) -> tuple[DatalogPMProgram, Database]:
    """The same win/move game as a guarded normal Datalog± program plus database.

    The single rule is guarded by ``move(X, Y)``; the game graph becomes the
    database.  Used to check that the Datalog± engine coincides with the
    classical LP well-founded model on existential-free programs.
    """
    x, y = Variable("X"), Variable("Y")
    program = DatalogPMProgram(
        [NTGD((Atom("move", (x, y)),), Atom("win", (x,)), (Atom("win", (y,)),), label="win")]
    )
    facts = [
        Atom("move", (Constant(source), Constant(target)))
        for source, target in _game_graph(num_positions, out_degree, seed)
    ]
    return program, Database(facts)


# ---------------------------------------------------------------------------
# E4 — a stratified workload
# ---------------------------------------------------------------------------


def reachability_program(
    num_nodes: int,
    *,
    edge_prob: float = 0.08,
    seed: int = 0,
) -> NormalProgram:
    """A stratified program: reachability from a source plus its negation.

    ``reach(s)``; ``reach(Y) ← reach(X), edge(X, Y)``;
    ``unreachable(X) ← node(X), not reach(X)``.  Stratified, so the WFS is
    total and coincides with the perfect model — one of the classical
    properties experiment E4 re-checks.
    """
    rng = random.Random(seed)
    x, y = Variable("X"), Variable("Y")
    rules = [
        NormalRule(Atom("reach", (Constant("s"),))),
        NormalRule(Atom("reach", (y,)), (Atom("reach", (x,)), Atom("edge", (x, y))), ()),
        NormalRule(Atom("unreachable", (x,)), (Atom("node", (x,)),), (Atom("reach", (x,)),)),
    ]
    names = ["s"] + [f"v{i}" for i in range(num_nodes - 1)]
    for name in names:
        rules.append(NormalRule(Atom("node", (Constant(name),))))
    for source in names:
        for target in names:
            if source != target and rng.random() < edge_prob:
                rules.append(NormalRule(Atom("edge", (Constant(source), Constant(target)))))
    return NormalProgram(rules)


# ---------------------------------------------------------------------------
# Columnar-grounding benchmark — a large EDB with a small reachable core
# ---------------------------------------------------------------------------


def large_edb_reachability(
    num_facts: int,
    *,
    core_size: int = 128,
    seed: int = 0,
) -> tuple[NormalProgram, list[Atom]]:
    """A reachability/ontology workload whose EDB dwarfs its derived core.

    Returns the *rules* (a :class:`NormalProgram` without facts) and the EDB
    as a separate atom list, ready to feed a grounding backend as
    ``extra_atoms``:

    * ``reach(X) ← source(X)``
    * ``reach(Y) ← edge(X, Y), reach(X)``
    * ``frontier(X) ← reach(X), edge(X, Y), not reach(Y)``
    * ``unreachable(X) ← node(X), not reach(X)``

    The EDB has exactly ``num_facts`` atoms: one ``source`` fact, a
    deterministic chain of ``core_size - 1`` ``edge`` facts (the only part
    reachable from the source), ``node`` facts for about a quarter of the
    budget, and random background ``edge`` facts among *unreachable* nodes
    for the rest.  The derived ``reach`` core therefore stays ``core_size``
    atoms no matter how large the database grows — the regime where the
    per-candidate tuple matcher pays its full per-predicate scan on every
    deepening round while a columnar backend only probes hash indexes.
    Deterministic given *seed*.
    """
    core_size = max(2, min(core_size, num_facts // 4))
    x, y = Variable("X"), Variable("Y")
    rules = [
        NormalRule(Atom("reach", (x,)), (Atom("source", (x,)),), ()),
        NormalRule(Atom("reach", (y,)), (Atom("edge", (x, y)), Atom("reach", (x,))), ()),
        NormalRule(
            Atom("frontier", (x,)),
            (Atom("reach", (x,)), Atom("edge", (x, y))),
            (Atom("reach", (y,)),),
        ),
        NormalRule(Atom("unreachable", (x,)), (Atom("node", (x,)),), (Atom("reach", (x,)),)),
    ]

    rng = random.Random(seed)
    core = [Constant(f"k{i}") for i in range(core_size)]
    facts: list[Atom] = [Atom("source", (core[0],))]
    for left, right in zip(core, core[1:]):
        facts.append(Atom("edge", (left, right)))

    num_node_facts = num_facts // 4
    remaining = num_facts - len(facts) - num_node_facts
    # Background nodes are disjoint from the core and never pointed to from
    # it, so no background edge can ever extend the reachable set.
    num_background = max(2, min(remaining, 4 * int(remaining**0.5) + 2))
    background = [f"b{i}" for i in range(num_background)]
    edges: set[tuple[str, str]] = set()
    while len(edges) < remaining:
        source = rng.randrange(num_background)
        target = rng.randrange(num_background)
        if source != target:
            edges.add((background[source], background[target]))
    for left, right in sorted(edges):
        facts.append(Atom("edge", (Constant(left), Constant(right))))
    for name in core[: num_node_facts // 2] + [
        Constant(b) for b in background[: num_node_facts - num_node_facts // 2]
    ]:
        facts.append(Atom("node", (name,)))
    # Top the budget up with extra node facts over fresh isolated constants
    # if the background pool was too small to absorb it.
    index = 0
    while len(facts) < num_facts:
        facts.append(Atom("node", (Constant(f"iso{index}"),)))
        index += 1
    return NormalProgram(rules), facts


# ---------------------------------------------------------------------------
# Query-rewriting benchmark — disjoint reachability chains
# ---------------------------------------------------------------------------


def chain_reachability_workload(
    num_chains: int,
    chain_length: int,
) -> tuple[DatalogPMProgram, Database]:
    """Disjoint reachability chains as a guarded Datalog± program + database.

    ``num_chains`` chains of ``chain_length`` edges each, with nodes named
    ``c<chain>_<index>``; rules:

    * ``source(X) → reach(X)``
    * ``edge(X, Y), reach(X) → reach(Y)``  (guarded by ``edge``)
    * ``node(X), not reach(X) → unreachable(X)``

    A query about one node of one chain (e.g. ``? reach(c0_{L})``) is
    *selective*: its magic-sets rewriting only grounds the target's own chain,
    so the rewritten-vs-unrewritten ground-rule ratio grows linearly with
    ``num_chains``.  This is the workload behind ``BENCH_query_rewrite.json``.
    Deterministic by construction.
    """
    x, y = Variable("X"), Variable("Y")
    program = DatalogPMProgram(
        [
            NTGD((Atom("source", (x,)),), Atom("reach", (x,)), label="seed"),
            NTGD(
                (Atom("edge", (x, y)), Atom("reach", (x,))),
                Atom("reach", (y,)),
                label="step",
            ),
            NTGD(
                (Atom("node", (x,)),),
                Atom("unreachable", (x,)),
                (Atom("reach", (x,)),),
                label="complement",
            ),
        ]
    )
    facts: list[Atom] = []
    for chain in range(num_chains):
        names = [f"c{chain}_{i}" for i in range(chain_length + 1)]
        facts.append(Atom("source", (Constant(names[0]),)))
        for left, right in zip(names, names[1:]):
            facts.append(Atom("edge", (Constant(left), Constant(right))))
        for name in names:
            facts.append(Atom("node", (Constant(name),)))
    return program, Database(facts)


# ---------------------------------------------------------------------------
# E3 — workloads with a growing schema (combined complexity)
# ---------------------------------------------------------------------------


def combined_complexity_workload(
    num_predicates: int,
    arity: int,
    *,
    num_constants: int = 2,
    chain_length: int = 3,
) -> tuple[DatalogPMProgram, Database]:
    """A deterministic family whose cost is driven by the *schema*, not the data.

    The guard predicate ``g`` has the given arity and is seeded with every
    tuple over ``num_constants`` constants (so the database alone grows as
    ``num_constants^arity`` — the combined-complexity effect of wide guards),
    plus:

    * an existential "shift" rule ``g(X₁…X_w) → ∃Z g(X₂…X_w, Z)`` that keeps
      the chase alive;
    * for each of the ``num_predicates`` unary predicates ``qᵢ`` a pair of
      mutually negative rules
      ``g(X₁…X_w), not q_{i+1}(X₁) → qᵢ(X₁)`` (indices cyclic), which makes
      the unfounded-set computation work harder as the schema grows.

    Used by experiment E3; deterministic by construction.
    """
    variables = [Variable(f"X{i}") for i in range(arity)]
    guard = Atom("g", tuple(variables))
    fresh = Variable("Z")
    shifted = Atom("g", tuple(variables[1:] + [fresh])) if arity > 0 else Atom("g", ())

    ntgds: list[NTGD] = []
    if arity > 0:
        ntgds.append(NTGD((guard,), shifted, label="shift"))
    for index in range(num_predicates):
        current = Atom(f"q{index}", (variables[0],) if arity else ())
        successor = Atom(f"q{(index + 1) % num_predicates}", (variables[0],) if arity else ())
        ntgds.append(NTGD((guard,), current, (successor,), label=f"cycle{index}"))

    constants = [Constant(f"c{i}") for i in range(num_constants)]
    facts: list[Atom] = []
    if arity > 0:
        import itertools as _it

        for combo in _it.product(constants, repeat=arity):
            facts.append(Atom("g", combo))
    else:
        facts.append(Atom("g", ()))
    # ``chain_length`` extra unary facts give the qᵢ predicates mixed support.
    for i in range(min(chain_length, num_constants)):
        facts.append(Atom("q0", (constants[i],)))
    return DatalogPMProgram(ntgds), Database(facts)


# ---------------------------------------------------------------------------
# E3 (auxiliary) — random guarded programs over a growing schema
# ---------------------------------------------------------------------------


def random_guarded_program(
    num_predicates: int,
    arity: int,
    num_rules: int,
    *,
    negation_prob: float = 0.3,
    existential_prob: float = 0.4,
    num_constants: int = 4,
    num_facts: int = 12,
    seed: int = 0,
) -> tuple[DatalogPMProgram, Database]:
    """A random guarded normal Datalog± program over a configurable schema.

    Each rule has a guard atom over a "wide" predicate mentioning all its
    variables, an optional extra positive atom, an optional negated atom and a
    head that reuses guard variables plus (with probability
    ``existential_prob``) one existential variable.  Used to scale the number
    of predicates and the arity for the combined-complexity experiment (E3).
    """
    rng = random.Random(seed)
    predicates = [f"q{i}" for i in range(num_predicates)]
    guard_pred = "g"  # dedicated wide guard predicate of the given arity
    variables = [Variable(f"X{i}") for i in range(arity)]

    ntgds: list[NTGD] = []
    for rule_index in range(num_rules):
        guard = Atom(guard_pred, tuple(variables))
        body_pos: list[Atom] = [guard]
        body_neg: list[Atom] = []
        if predicates and rng.random() < 0.5:
            extra_pred = rng.choice(predicates)
            extra_args = tuple(rng.choice(variables) for _ in range(1))
            body_pos.append(Atom(extra_pred, extra_args))
        if predicates and rng.random() < negation_prob:
            neg_pred = rng.choice(predicates)
            body_neg.append(Atom(neg_pred, (rng.choice(variables),)))
        head_pred = rng.choice(predicates) if predicates else guard_pred
        if rng.random() < existential_prob:
            head = Atom(head_pred, (rng.choice(variables),))
            # existential head over the guard predicate keeps the chase alive
            if rng.random() < 0.5:
                fresh = Variable("Z")
                head = Atom(guard_pred, tuple(variables[1:] + [fresh])[:arity])
        else:
            head = Atom(head_pred, (rng.choice(variables),))
        ntgds.append(NTGD(tuple(body_pos), head, tuple(body_neg), label=f"rnd{rule_index}"))

    constants = [Constant(f"c{i}") for i in range(num_constants)]
    facts: list[Atom] = []
    for _ in range(num_facts):
        facts.append(Atom(guard_pred, tuple(rng.choice(constants) for _ in range(arity))))
        if predicates:
            facts.append(Atom(rng.choice(predicates), (rng.choice(constants),)))
    return DatalogPMProgram(ntgds), Database(facts)


# ---------------------------------------------------------------------------
# E5 — a university ontology (LUBM flavour, with default negation)
# ---------------------------------------------------------------------------


def university_ontology(
    num_departments: int,
    students_per_department: int,
    *,
    advised_fraction: float = 0.5,
    seed: int = 0,
) -> Ontology:
    """A small LUBM-flavoured ontology with existentials and default negation.

    TBox (in DL-Lite_{R,⊓,not}):

    * ``Professor ⊑ ∃worksFor``                 (every professor works somewhere)
    * ``Student ⊑ ∃enrolledIn``                 (every student is enrolled)
    * ``∃advises⁻ ⊑ Advised``                   (someone advised by anybody is Advised)
    * ``Student ⊓ not Advised ⊑ ∃needsAdvisor`` (unadvised students need an advisor)
    * ``∃worksFor ⊑ Employee``
    * ``advises ⊑ mentors``                     (role inclusion)

    ABox: departments, professors, students, and ``advised_fraction`` of the
    students have an explicit advisor.
    """
    rng = random.Random(seed)
    ontology = Ontology()
    ontology.subclass("Professor", "exists WorksFor")
    ontology.subclass("Student", "exists EnrolledIn")
    ontology.subclass("exists Advises-", "Advised")
    ontology.subclass(["Student", ("not", "Advised")], "exists NeedsAdvisor")
    ontology.subclass("exists WorksFor", "Employee")
    ontology.subrole("Advises", "Mentors")

    for dept_index in range(num_departments):
        dept = f"dept{dept_index}"
        professor = f"prof{dept_index}"
        ontology.abox.assert_concept("Professor", professor)
        ontology.abox.assert_role("WorksFor", professor, dept)
        for student_index in range(students_per_department):
            student = f"student{dept_index}_{student_index}"
            ontology.abox.assert_concept("Student", student)
            ontology.abox.assert_role("EnrolledIn", student, dept)
            if rng.random() < advised_fraction:
                ontology.abox.assert_role("Advises", professor, student)
    return ontology
