"""Workload generators and the measurement harness for the evaluation suite."""

from .generators import (
    combined_complexity_workload,
    employment_ontology,
    employment_workload,
    paper_example_program,
    random_guarded_program,
    reachability_program,
    university_ontology,
    win_move_datalog_pm,
    win_move_game,
)
from .harness import ResultTable, fit_powerlaw_exponent, scaling_series, time_call

__all__ = [
    "combined_complexity_workload",
    "employment_ontology",
    "employment_workload",
    "paper_example_program",
    "random_guarded_program",
    "reachability_program",
    "university_ontology",
    "win_move_datalog_pm",
    "win_move_game",
    "ResultTable",
    "fit_powerlaw_exponent",
    "scaling_series",
    "time_call",
]
