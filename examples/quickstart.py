"""Quickstart: define a guarded normal Datalog± program, compute its
well-founded model and ask queries.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import WellFoundedEngine, parse_atom

# A small knowledge base about a research group.  It mixes the three features
# the paper is about: existential rules (every scientist authors *something*),
# default negation (papers not known to be retracted count as valid), and a
# database of plain facts.
PROGRAM = """
% TBox-style rules ---------------------------------------------------------
conferencePaper(X) -> article(X).
scientist(X) -> exists Y isAuthorOf(X, Y).
isAuthorOf(X, Y), not retracted(Y) -> hasValidPublication(X).
article(X), not openAccess(X) -> paywalled(X).

% Database -----------------------------------------------------------------
scientist(ada).
scientist(grace).
conferencePaper(pods13).
openAccess(pods13).
isAuthorOf(grace, pods13).
"""


def main() -> None:
    engine = WellFoundedEngine(PROGRAM)
    model = engine.model()

    print("Well-founded model computed.")
    print(f"  chase depth used : {model.depth}")
    print(f"  converged        : {model.converged}")
    print(f"  true atoms       : {len(model.true_atoms())}")
    print(f"  false atoms      : {len(model.false_atoms())}")
    print(f"  undefined atoms  : {len(model.undefined_atoms())}")

    print("\nBoolean queries (NBCQs):")
    for query in (
        "? isAuthorOf(ada, Y)",                       # existential witness (a null)
        "? hasValidPublication(grace)",                # uses default negation
        "? article(pods13), not paywalled(pods13)",    # negation over derived atoms
        "? retracted(pods13)",
    ):
        print(f"  {query:48s} -> {engine.holds(query)}")

    print("\nCertain answers to 'which articles are open access?':")
    for answer in sorted(engine.answer("? article(X), openAccess(X)")):
        print("  ", ", ".join(str(term) for term in answer))

    print("\nTruth values of selected ground atoms:")
    for text in ("article(pods13)", "paywalled(pods13)", "hasValidPublication(ada)"):
        print(f"  {text:32s} -> {engine.literal_value(parse_atom(text))}")


if __name__ == "__main__":
    main()
