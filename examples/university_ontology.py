"""A larger ontology-based data access scenario: the university ontology.

This example exercises the DL front-end on a LUBM-flavoured ontology with
existential axioms, an inverse role, a role inclusion and default negation
("students not known to be advised need an advisor"), and shows the three
query modalities the library offers: instance checks, concept retrieval and
NBCQs with negation.

Run with::

    python examples/university_ontology.py
"""

from __future__ import annotations

from repro.dl import OntologyReasoner
from repro.bench.generators import university_ontology


def analyze_target():
    """The translated (program, database) pair for ``repro analyze`` smoke runs."""
    from repro.dl import translate_ontology

    ontology = university_ontology(num_departments=3, students_per_department=6,
                                   advised_fraction=0.5, seed=2026)
    return translate_ontology(ontology)


def main() -> None:
    ontology = university_ontology(num_departments=3, students_per_department=6,
                                   advised_fraction=0.5, seed=2026)
    print("TBox:")
    for axiom in ontology.tbox:
        print("  ", axiom)
    print(f"ABox: {len(ontology.abox)} assertions over "
          f"{len(ontology.abox.individuals())} individuals")

    reasoner = OntologyReasoner(ontology)
    model = reasoner.model()
    print(f"\nWell-founded model: {len(model.true_atoms())} true atoms, "
          f"chase depth {model.depth}, converged={model.converged}")

    print("\nInstance checks:")
    print("  Employee(prof0)      :", reasoner.instance_of("Employee", "prof0"))
    print("  Advised(student0_0)  :", reasoner.instance_of("Advised", "student0_0"))

    print("\nConcept retrieval:")
    advised = reasoner.concept_members("Advised")
    print(f"  advised students     : {len(advised)}")
    unadvised = [
        person
        for person in sorted(reasoner.concept_members("Student"))
        if person not in advised
    ]
    print(f"  students needing an advisor ({len(unadvised)}):", ", ".join(unadvised[:6]),
          "..." if len(unadvised) > 6 else "")

    print("\nNBCQs:")
    for query in (
        "? student(X), needsAdvisor(X, V)",
        "? professor(X), mentors(X, Y)",
        "? student(X), not advised(X), enrolledIn(X, dept0)",
    ):
        print(f"  {query:52s} -> {reasoner.holds(query)}")

    print("\nComparison with the stratified Datalog± baseline of [1]:")
    baseline = reasoner.stratified_baseline()
    for query in ("? employee(prof0)", "? needsAdvisor(student0_0, V)"):
        print(f"  {query:36s} WFS={reasoner.holds(query)}  stratified={baseline.holds(query)}")


if __name__ == "__main__":
    main()
