"""Ontological reasoning with default negation under the UNA (paper Example 2).

The DL-Lite_{R,⊓,not} ontology:

    Person ⊓ Employed ⊓ not ∃JobSeekerID  ⊑  ∃EmployeeID
    Person ⊓ not Employed ⊓ not ∃EmployeeID  ⊑  ∃JobSeekerID
    ∃EmployeeID⁻ ⊓ not ∃JobSeekerID⁻  ⊑  ValidID

with the ABox {Person(a), Person(b), Employed(a)}.  The paper argues that the
*standard* WFS under the unique name assumption is the right semantics here:
the employee ID created for `a` and the job-seeker ID created for `b` are
distinct nulls, so `a`'s ID is derived to be valid — something the
equality-friendly WFS (without UNA) cannot conclude.  The script also shows
why the stratified Datalog± semantics of [1] cannot handle this ontology at
all (its negation is not stratified).

Run with::

    python examples/employment_ontology.py
"""

from __future__ import annotations

from repro.dl import Ontology, OntologyReasoner
from repro.exceptions import NotStratifiedError


def build_ontology() -> Ontology:
    ontology = Ontology()
    ontology.subclass(
        ["Person", "Employed", ("not", "exists JobSeekerID")], "exists EmployeeID"
    )
    ontology.subclass(
        ["Person", ("not", "Employed"), ("not", "exists EmployeeID")], "exists JobSeekerID"
    )
    ontology.subclass(
        ["exists EmployeeID-", ("not", "exists JobSeekerID-")], "ValidID"
    )
    ontology.abox.assert_concept("Person", "a")
    ontology.abox.assert_concept("Person", "b")
    ontology.abox.assert_concept("Employed", "a")
    return ontology


def analyze_target():
    """The translated (program, database) pair for ``repro analyze`` smoke runs."""
    from repro.dl import translate_ontology

    return translate_ontology(build_ontology())


def main() -> None:
    ontology = build_ontology()
    print("TBox:")
    for axiom in ontology.tbox:
        print("  ", axiom)
    print("ABox:")
    for assertion in ontology.abox:
        print("  ", assertion)

    reasoner = OntologyReasoner(ontology)
    print("\nTranslated guarded normal Datalog± program:")
    for ntgd in reasoner.program:
        print("  ", ntgd)

    print("\nReasoning under the standard WFS with the UNA:")
    print("  a has an EmployeeID     :", reasoner.has_role_successor("EmployeeID", "a"))
    print("  b has a JobSeekerID     :", reasoner.has_role_successor("JobSeekerID", "b"))
    print("  b has an EmployeeID     :", reasoner.has_role_successor("EmployeeID", "b"))
    print("  a's ID is a ValidID     :", reasoner.holds("? employeeID(a, V), validID(V)"))
    print("    (this last derivation needs f(a) != g(b), i.e. the UNA — cf. Example 2)")

    print("\nWhy stratified Datalog± (the baseline of [1]) is not enough here:")
    try:
        reasoner.stratified_baseline()
    except NotStratifiedError as error:
        print("  stratified semantics rejected the ontology:", error)

    print("\nValidation with negative constraints and EGDs (future work of the paper,")
    print("implemented in repro.core.constraints):")
    from repro.core import EGD, NegativeConstraint, check_constraints
    from repro.lang import Variable
    from repro.lang.atoms import Atom

    x, y, z = Variable("X"), Variable("Y"), Variable("Z")
    constraints = [
        # nobody may hold both kinds of ID
        NegativeConstraint((Atom("employeeID", (x, y)), Atom("jobSeekerID", (x, z))), ()),
        # employee IDs are functional
        EGD((Atom("employeeID", (x, y)), Atom("employeeID", (x, z))), y, z),
    ]
    violations = check_constraints(reasoner.engine, constraints)
    if violations:
        for violation in violations:
            print("  ", violation)
    else:
        print("  no violations: the derived IDs are consistent")

    print("\nScaling the same ontology to more individuals:")
    from repro.bench.generators import employment_ontology

    for persons in (10, 50, 100):
        big = OntologyReasoner(employment_ontology(persons, seed=1))
        model = big.model()
        valid_ids = sum(1 for atom in model.true_atoms() if atom.predicate == "validID")
        print(f"  {persons:4d} persons -> {valid_ids:3d} valid IDs derived "
              f"(chase depth {model.depth}, {len(model.forest())} nodes)")


if __name__ == "__main__":
    main()
