"""The win/move game: the textbook use-case of the well-founded semantics.

A position X is won if there is a move to a position that is *not* won:

    win(X) <- move(X, Y), not win(Y)

The rule is unstratified, so neither plain Datalog nor stratified Datalog±
can express it; under the WFS, positions are classified as won (true), lost
(false) or drawn (undefined).  The script analyses a small hand-made game and
a random game, once with the classical LP substrate (Sec. 2.6 of the paper)
and once with the guarded Datalog± engine (the paper's contribution), and
checks that the two agree — the WFS for Datalog± conservatively extends the
classical WFS.

Run with::

    python examples/win_move_game.py
"""

from __future__ import annotations

from repro import WellFoundedEngine, parse_normal_program, relevant_grounding, well_founded_model
from repro.lang import parse_atom
from repro.bench.generators import win_move_datalog_pm, win_move_game

HAND_MADE = """
% a -> b -> a is a cycle; b can also escape to c; c moves to the dead end d.
move(a, b). move(b, a). move(b, c). move(c, d).
move(X, Y), not win(Y) -> win(X).
"""


def classify(model, positions):
    rows = []
    for name in positions:
        atom = parse_atom(f"win({name})")
        if model.is_true(atom):
            rows.append((name, "won"))
        elif model.is_false(atom):
            rows.append((name, "lost"))
        else:
            rows.append((name, "drawn (undefined)"))
    return rows


def analyze_target():
    """The hand-made game program for ``repro analyze`` smoke runs."""
    return HAND_MADE


def main() -> None:
    print("Hand-made game (classical LP well-founded semantics):")
    lp_model = well_founded_model(relevant_grounding(parse_normal_program(HAND_MADE)))
    for name, status in classify(lp_model, "abcd"):
        print(f"  position {name}: {status}")

    print("\nSame game through the guarded Datalog± WFS engine:")
    engine = WellFoundedEngine(HAND_MADE)
    for name, status in classify(engine.model(), "abcd"):
        print(f"  position {name}: {status}")

    print("\nRandom game with 40 positions — LP substrate vs Datalog± engine:")
    size, seed = 40, 7
    lp_random = well_founded_model(relevant_grounding(win_move_game(size, seed=seed)))
    program, database = win_move_datalog_pm(size, seed=seed)
    dpm_random = WellFoundedEngine(program, database).model()

    counts = {"won": 0, "lost": 0, "drawn": 0}
    disagreements = 0
    for atom in lp_random.universe():
        if atom.predicate != "win":
            continue
        if lp_random.is_true(atom):
            counts["won"] += 1
        elif lp_random.is_false(atom):
            counts["lost"] += 1
        else:
            counts["drawn"] += 1
        agree = (
            lp_random.is_true(atom) == dpm_random.is_true(atom)
            and lp_random.is_false(atom) == dpm_random.is_false(atom)
        )
        disagreements += 0 if agree else 1

    print(f"  won positions   : {counts['won']}")
    print(f"  lost positions  : {counts['lost']}")
    print(f"  drawn positions : {counts['drawn']}")
    print(f"  disagreements between the two computations: {disagreements}")


if __name__ == "__main__":
    main()
