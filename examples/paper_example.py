"""The paper's running example (Examples 4, 6 and 9), end to end.

This script reproduces, step by step, what Sections 3 and 4 of the paper do
with their running example:

1. build the guarded chase forest F+(P) of the Skolemised program,
2. inspect forward proofs and their negative hypotheses (Example 6),
3. compute the well-founded model and check the literals the paper derives
   (Example 4 and Example 9 — including T(0), which on the infinite forest
   only appears after transfinitely many Ŵ_P iterations),
4. re-verify literals with the WCHECK-style path criterion of Section 4.

Run with::

    python examples/paper_example.py
"""

from __future__ import annotations

from repro import WellFoundedEngine
from repro.core import find_forward_proof, path_witness, wcheck_literal
from repro.lang import parse_atom
from repro.lang.atoms import Literal
from repro.bench.generators import paper_example_program


def analyze_target():
    """The (program, database) pair for ``repro analyze`` smoke runs."""
    return paper_example_program()


def main() -> None:
    program, database = paper_example_program()
    print("Sigma (guarded normal Datalog± program):")
    for ntgd in program:
        print("  ", ntgd)
    print("Database D:", database)

    engine = WellFoundedEngine(program, database)
    model = engine.model()
    forest = engine.chase_forest()

    print(f"\nChase segment: {len(forest)} nodes, max depth {forest.max_depth()}, "
          f"stabilised at depth {model.depth} (converged={model.converged}).")

    print("\nForward proofs (Example 6):")
    p01 = parse_atom("p(0, 1)")
    proof = find_forward_proof(forest, p01)
    print(f"  forward proof of {p01}: {proof.size()} nodes, "
          f"negative hypotheses {{{', '.join(sorted(str(a) for a in proof.negative_hypotheses))}}}")

    print("\nLiterals of WFS(D, Sigma) highlighted by the paper (Examples 4 and 9):")
    for text in ("p(0,0)", "p(0,1)", "q(1)", "s(0)", "t(0)"):
        atom = parse_atom(text)
        print(f"  {text:10s} -> {model.value(atom)}")

    print("\nWCHECK-style verification (Section 4):")
    print("  path witness for t(0):",
          " -> ".join(str(a) for a in path_witness(model, parse_atom("t(0)"))))
    print("  every path to s(0) blocked:",
          wcheck_literal(model, Literal(parse_atom("s(0)"), False)))

    print("\nNBCQ answering (Theorem 14):")
    for query in ("? t(X), not s(X)", "? p(0, Y), not q(Y)", "? q(1)"):
        print(f"  {query:24s} -> {engine.holds(query)}")

    print("\nTheoretical locality bound of Prop. 12 (never needed in practice):")
    delta = engine.delta()
    # delta is astronomically large (it certifies decidability, nothing more);
    # format the order of magnitude by hand — it overflows float.
    print(f"  delta ~ 10^{len(str(delta)) - 1}  vs  depth actually used = {model.depth}")


if __name__ == "__main__":
    main()
