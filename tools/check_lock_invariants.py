#!/usr/bin/env python3
"""Custom lint: every guarded-state mutation site holds the matching lock.

PR 9 made two structures safe for the parallel schedulers and pinned the
invariants this script re-checks statically on every CI run:

* ``repro.chase.segments.SegmentStore`` — all mutations of the store's
  internal state (``_segments``, ``_aliases``, ``_replays`` and the
  counters) happen under ``self._lock``; the module-level store registry is
  mutated only under ``_registry_lock``.
* ``repro.core.answering`` — the shared-engine LRU (``_engine_cache``) and
  its hit/miss counters are mutated only under ``_cache_lock``.

The check is purely syntactic (``ast``), with two deliberate escapes that
mirror how the code is written: ``__init__``/module-level *definitions* (no
concurrent reader can exist yet), and helper methods whose docstring
contains "must hold the lock" (their callers are the locked sites).  A
mutation is an assignment / augmented assignment / ``del`` targeting a
guarded name (or an attribute/subscript of one), or a call of a mutating
method (``pop``, ``clear``, ``move_to_end``, …) on a guarded name.

Run from the repo root::

    python tools/check_lock_invariants.py

Exit code 0 when every mutation site is locked, 1 otherwise (sites listed).
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent

#: methods whose call on a guarded object counts as a mutation
MUTATING_METHODS = {
    "add",
    "append",
    "clear",
    "discard",
    "extend",
    "insert",
    "move_to_end",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "update",
}

#: docstring marker exempting a helper whose callers hold the lock
CALLER_HOLDS_MARKER = "must hold the lock"


@dataclass(frozen=True)
class Rule:
    """One invariant: mutations of *guarded* names need *lock* held."""

    path: str
    lock: str  # attribute name on self, or module-level name
    lock_is_self_attr: bool
    guarded: frozenset[str]  # self attributes / module globals
    guarded_is_self_attr: bool
    scope_class: Optional[str] = None  # restrict to one class body


RULES = [
    Rule(
        path="src/repro/chase/segments.py",
        lock="_lock",
        lock_is_self_attr=True,
        guarded=frozenset(
            {
                "_segments",
                "_aliases",
                "_replays",
                "_replay_count",
                "_total_nodes",
                "_hits",
                "_misses",
                "_recordings",
                "_evictions",
                "_alias_hits",
            }
        ),
        guarded_is_self_attr=True,
        scope_class="SegmentStore",
    ),
    Rule(
        path="src/repro/chase/segments.py",
        lock="_registry_lock",
        lock_is_self_attr=False,
        guarded=frozenset({"_stores"}),
        guarded_is_self_attr=False,
    ),
    Rule(
        path="src/repro/core/answering.py",
        lock="_cache_lock",
        lock_is_self_attr=False,
        guarded=frozenset({"_engine_cache", "_cache_hits", "_cache_misses"}),
        guarded_is_self_attr=False,
    ),
]


def _is_lock_context(node: ast.With, rule: Rule) -> bool:
    """Does this ``with`` statement acquire the rule's lock?"""
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):  # with lock.acquire-style wrappers
            expr = expr.func
        if rule.lock_is_self_attr:
            if (
                isinstance(expr, ast.Attribute)
                and expr.attr == rule.lock
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
            ):
                return True
        else:
            if isinstance(expr, ast.Name) and expr.id == rule.lock:
                return True
    return False


def _guarded_root(expr: ast.AST, rule: Rule) -> Optional[str]:
    """The guarded name at the root of an expression, if any.

    Unwraps subscripts and attribute chains: ``self._segments[k]``,
    ``_engine_cache.move_to_end`` and plain ``_cache_hits`` all resolve to
    their guarded root.
    """
    while isinstance(expr, (ast.Subscript, ast.Attribute)):
        if rule.guarded_is_self_attr and isinstance(expr, ast.Attribute):
            if (
                expr.attr in rule.guarded
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
            ):
                return expr.attr
        expr = expr.value
    if not rule.guarded_is_self_attr and isinstance(expr, ast.Name):
        if expr.id in rule.guarded:
            return expr.id
    return None


def _mutations(node: ast.AST, rule: Rule) -> Iterator[tuple[int, str]]:
    """Yield (lineno, description) for every mutation of guarded state."""
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            name = _guarded_root(target, rule)
            if name is not None:
                yield node.lineno, f"assignment to {name}"
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            name = _guarded_root(target, rule)
            if name is not None:
                yield node.lineno, f"del on {name}"
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in MUTATING_METHODS:
            name = _guarded_root(node.func.value, rule)
            if name is not None:
                yield node.lineno, f"{name}.{node.func.attr}(...)"


def _docstring_exempts(node: ast.AST) -> bool:
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        doc = ast.get_docstring(node)
        return doc is not None and CALLER_HOLDS_MARKER in doc.lower()
    return False


def _walk(
    node: ast.AST,
    rule: Rule,
    *,
    locked: bool,
    exempt: bool,
    in_scope: bool,
) -> Iterator[tuple[int, str]]:
    """DFS tracking lock context, exemptions and the class scope filter."""
    for child in ast.iter_child_nodes(node):
        child_locked = locked
        child_exempt = exempt
        child_scope = in_scope
        if isinstance(child, ast.ClassDef):
            if rule.scope_class is not None:
                child_scope = child.name == rule.scope_class
        elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # a nested function body does not inherit the lexical lock —
            # it may run later, outside the with block
            child_locked = False
            child_exempt = exempt or child.name == "__init__" or _docstring_exempts(child)
        elif isinstance(child, ast.With) and _is_lock_context(child, rule):
            child_locked = True
        if in_scope and not locked and not exempt:
            # module-level Assign/AnnAssign is the *definition* of the
            # guarded object — no concurrent reader can exist at import time
            defining = isinstance(node, ast.Module) and isinstance(
                child, (ast.Assign, ast.AnnAssign)
            )
            if not defining:
                yield from _mutations(child, rule)
        yield from _walk(
            child,
            rule,
            locked=child_locked,
            exempt=child_exempt,
            in_scope=child_scope,
        )


def check_rule(rule: Rule) -> list[str]:
    path = REPO_ROOT / rule.path
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    findings = []
    initial_scope = rule.scope_class is None
    for lineno, description in _walk(
        tree, rule, locked=False, exempt=False, in_scope=initial_scope
    ):
        findings.append(
            f"{rule.path}:{lineno}: {description} without holding {rule.lock}"
        )
    return sorted(set(findings))


def main() -> int:
    all_findings: list[str] = []
    for rule in RULES:
        all_findings.extend(check_rule(rule))
    if all_findings:
        print("lock-invariant violations:")
        for finding in all_findings:
            print(f"  {finding}")
        return 1
    checked = ", ".join(sorted({rule.path for rule in RULES}))
    print(f"lock invariants hold ({checked})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
