"""Property tests over the scenario corpus: random workloads × random traces.

Hypothesis samples registered scenarios with random parameters and drives
warm engines through *fresh* random trace interleavings (not just the bundled
ones).  The invariants:

* the maintained :class:`repro.views.MaterializedEngine` equals its
  from-scratch oracle at every checkpoint of every interleaving;
* recording a trace and replaying the recording verifies clean, on any
  backend;
* a budget-interrupted replay resumed with the same target and report is
  indistinguishable from an uninterrupted run.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scenarios import (
    MaterializedTarget,
    ReplayInterrupted,
    build_target,
    record_trace,
    replay_trace,
)
from repro.views import MaterializedEngine

from strategies import scenario_bundles, scenario_traces

COMMON_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@settings(max_examples=20, **COMMON_SETTINGS)
@given(data=scenario_traces())
def test_random_interleavings_never_diverge_from_the_oracle(data):
    bundle, trace = data
    report = replay_trace(trace, build_target(bundle), check=True)
    assert report.ok, (bundle.name, report.divergences)
    assert report.checks > 0


@settings(max_examples=15, **COMMON_SETTINGS)
@given(
    data=scenario_traces(),
    backend=st.sampled_from(["tuple", "columnar", "sqlite"]),
)
def test_recorded_traces_self_verify_on_any_backend(data, backend):
    bundle, trace = data
    recorded, recording_report = record_trace(trace, build_target(bundle))
    assert recording_report.ok
    replayed = replay_trace(recorded, build_target(bundle, backend=backend))
    assert replayed.ok, (bundle.name, backend, replayed.divergences)
    queries = sum(1 for event in trace if event.kind == "query")
    assert replayed.expects == queries


@settings(max_examples=10, **COMMON_SETTINGS)
@given(
    data=scenario_traces(),
    rounds_budget=st.integers(min_value=1, max_value=3),
)
def test_budget_interrupted_replay_resumes_losslessly(data, rounds_budget):
    """Starving the engine mid-trace loses nothing once the budget is lifted."""
    bundle, trace = data
    reference = replay_trace(trace, build_target(bundle), check=True)
    assert reference.ok

    engine = MaterializedEngine(bundle.program, bundle.database, backend="columnar")
    engine.max_rounds_per_update = rounds_budget
    target = MaterializedTarget(engine)
    events = list(trace)
    report = None
    remaining = events
    interruptions = 0
    while True:
        try:
            report = replay_trace(remaining, target, check=True, report=report)
            break
        except ReplayInterrupted as error:
            interruptions += 1
            report = error.report
            remaining = remaining[error.index:]
            # lift the budget after a few starved attempts so the loop always
            # terminates; before that, re-trying resumes the staged update
            if interruptions >= 3:
                engine.max_rounds_per_update = None

    assert report.ok, (bundle.name, report.divergences)
    assert [r.detail for r in report.records if r.kind == "query"] == [
        r.detail for r in reference.records if r.kind == "query"
    ]
    assert report.checks == reference.checks


@settings(max_examples=15, **COMMON_SETTINGS)
@given(bundle=scenario_bundles())
def test_bundled_traces_replay_clean(bundle):
    report = replay_trace(bundle.trace, build_target(bundle), check=True)
    assert report.ok, (bundle.name, report.divergences)
