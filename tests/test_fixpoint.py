"""Unit tests for the worklist fixpoint substrate (:mod:`repro.lp.fixpoint`)
and the SCC-modular well-founded evaluation built on top of it."""

from __future__ import annotations

from hypothesis import given, settings

from repro.lang.atoms import Atom
from repro.lang.parser import parse_atom, parse_normal_program
from repro.lang.rules import NormalRule
from repro.lp.fixpoint import RuleIndex, strongly_connected_components
from repro.lp.grounding import (
    GroundProgram,
    PredicateIndex,
    _relevant_grounding_naive,
    relevant_grounding,
)
from repro.lp.interpretation import Interpretation
from repro.lp.stratification import (
    ground_component_summary,
    ground_dependency_components,
)
from repro.lp.wfs import (
    gelfond_lifschitz_reduct,
    well_founded_model,
    well_founded_model_naive,
)

from strategies import ground_programs


def atoms(*names):
    return [Atom(name, ()) for name in names]


def ground(text):
    """Ground a propositional program verbatim (keep underivable rules too)."""
    program = parse_normal_program(text)
    if any(not rule.is_ground() for rule in program):
        return relevant_grounding(program)
    result = GroundProgram()
    for rule in program:
        result.add(rule)
    return result


class TestRuleIndex:
    def test_interning_is_dense_and_stable(self):
        a, b, c = atoms("a", "b", "c")
        index = RuleIndex([NormalRule(a, (b,), (c,)), NormalRule(b, (c,), ())])
        assert index.atom_count() == 3
        assert len(index) == 2
        for atom in (a, b, c):
            assert index.atom_of(index.atom_id(atom)) == atom
        assert index.atom_id(Atom("zzz", ())) is None
        assert index.atoms() == {a, b, c}

    def test_bodies_are_deduplicated(self):
        a, b = atoms("a", "b")
        index = RuleIndex([NormalRule(a, (b, b), (b, b))])
        assert index.pos_body(0) == (b,)
        assert index.neg_body(0) == (b,)

    def test_watchers_and_head_index(self):
        a, b, c = atoms("a", "b", "c")
        rule = NormalRule(a, (b,), (c,))
        index = RuleIndex([rule, NormalRule(a, (c,), ())])
        assert list(index.rule_ids_for_head(a)) == [0, 1]
        assert list(index.watchers_pos_id(index.atom_id(b))) == [0]
        assert list(index.watchers_neg_id(index.atom_id(c))) == [0]
        assert index.rule(0) is rule

    def test_least_model_propagates_chains(self):
        program = ground("p. p -> q. q -> r. s -> t.")
        index = program.index()
        assert index.least_model() == set(atoms("p", "q", "r"))

    def test_least_model_with_seed(self):
        program = ground("s -> t.")
        index = program.index()
        assert index.least_model(start=atoms("s")) == set(atoms("s", "t"))
        # Seed atoms outside the program survive into the result.
        assert atoms("zzz")[0] in index.least_model(start=atoms("zzz"))

    def test_least_model_ignores_negative_bodies(self):
        program = ground("p. p, not q -> r.")
        assert program.index().least_model() == set(atoms("p", "r"))

    def test_facts_fired_during_init_are_not_double_counted(self):
        # Regression test: a head fired while counters are still being set up
        # must decrement its watchers exactly once.  Here both a-rules have an
        # empty positive body and fire during initialisation; c must still
        # wait for b, which is never derivable.
        program = ground("not a, not c -> a. not c, not b -> a. b, a -> c.")
        assert program.index().gamma(set()) == set(atoms("a"))

    @settings(max_examples=60, deadline=None)
    @given(ground_programs())
    def test_gamma_equals_least_model_of_the_materialised_reduct(self, program):
        index = program.index()
        for assumed in (set(), set(program.atoms()), set(list(program.atoms())[:2])):
            reduct = gelfond_lifschitz_reduct(program, assumed)
            assert index.gamma(assumed) == RuleIndex(reduct).least_model()

    @settings(max_examples=60, deadline=None)
    @given(ground_programs())
    def test_tp_matches_the_definition(self, program):
        model = well_founded_model(program)
        interpretation = Interpretation(model.true_atoms(), model.false_atoms())
        expected = {
            rule.head
            for rule in program
            if all(interpretation.is_true(b) for b in rule.body_pos)
            and all(interpretation.is_false(b) for b in rule.body_neg)
        }
        assert program.index().tp(interpretation) == expected


class TestStronglyConnectedComponents:
    def test_cycle_is_one_component(self):
        graph = {1: [2], 2: [3], 3: [1], 4: [1]}
        components = strongly_connected_components(graph)
        assert sorted(map(sorted, components)) == [[1, 2, 3], [4]]

    def test_dependencies_come_first(self):
        graph = {"a": ["b"], "b": ["c"], "c": [], "d": ["a"]}
        order = strongly_connected_components(graph)
        flat = [node for component in order for node in component]
        assert flat.index("c") < flat.index("b") < flat.index("a") < flat.index("d")

    def test_successors_missing_from_keys_are_isolated_nodes(self):
        components = strongly_connected_components({"a": ["b"]})
        assert sorted(map(sorted, components)) == [["a"], ["b"]]

    def test_self_loop(self):
        assert strongly_connected_components({"a": ["a"]}) == [["a"]]


class TestGroundDependencyComponents:
    def test_win_move_positions_share_a_component(self):
        # a and b sit on a mutual move cycle: their win-atoms are mutually
        # negative and must land in one component, after the move facts.
        program = ground(
            "move(a, b). move(b, a). move(b, c). move(c, d)."
            " move(X, Y), not win(Y) -> win(X)."
        )
        components = ground_dependency_components(program)
        by_atom = {}
        for position, component in enumerate(components):
            for atom in component:
                by_atom[atom] = position
        win_a, win_b = parse_atom("win(a)"), parse_atom("win(b)")
        assert by_atom[win_a] == by_atom[win_b]
        assert by_atom[parse_atom("move(a, b)")] < by_atom[win_a]

    def test_summary_flags_internal_negation(self):
        program = ground("p. not q -> r. not s -> s.")
        summary = dict(ground_component_summary(program))
        assert summary[frozenset(atoms("s"))] is True
        assert summary[frozenset(atoms("r"))] is False
        assert summary[frozenset(atoms("p"))] is False

    def test_positive_cycle_has_no_internal_negation_flag(self):
        program = ground("q -> p. p -> q.")
        summary = ground_component_summary(program)
        assert summary == [(frozenset(atoms("p", "q")), False)]


class TestSccModularEvaluator:
    def test_agrees_with_naive_on_the_win_move_game(self, win_move_ground):
        indexed = well_founded_model(win_move_ground)
        naive = well_founded_model_naive(win_move_ground)
        assert indexed.true_atoms() == naive.true_atoms()
        assert indexed.false_atoms() == naive.false_atoms()

    def test_undefined_external_atom_blocks_truth_but_not_support(self):
        # u is undefined (odd loop); t <- u must stay undefined, not false.
        program = ground("not u -> u. u -> t.")
        model = well_founded_model(program)
        assert model.is_undefined(parse_atom("u"))
        assert model.is_undefined(parse_atom("t"))

    def test_negation_of_undefined_external_atom_is_undefined(self):
        program = ground("not u -> u. not u -> t.")
        model = well_founded_model(program)
        assert model.is_undefined(parse_atom("t"))

    def test_stratified_chain_resolves_in_one_pass_per_component(self):
        program = ground("p. p -> q. not q -> r. not r -> s.")
        model = well_founded_model(program)
        assert model.is_true(parse_atom("p"))
        assert model.is_true(parse_atom("q"))
        assert model.is_false(parse_atom("r"))
        assert model.is_true(parse_atom("s"))
        # Stratified: one round per component (no alternation anywhere).
        assert model.iterations == len(ground_dependency_components(program))


class TestSemiNaiveGrounding:
    def test_matches_the_naive_reference_on_recursion(self):
        text = """
        edge(a, b). edge(b, c). edge(c, d).
        edge(X, Y) -> path(X, Y).
        path(X, Y), edge(Y, Z) -> path(X, Z).
        node(a). node(X), not path(a, X) -> far(X).
        """
        program = parse_normal_program(text)
        semi = relevant_grounding(program)
        naive = _relevant_grounding_naive(parse_normal_program(text))
        assert set(semi.rules()) == set(naive.rules())

    def test_empty_positive_body_rules_are_instantiated_and_seed_candidates(self):
        # ``not q -> p`` has no positive body; its head must still become a
        # candidate so that rules over p are instantiated.
        program = parse_normal_program("not q -> p. p -> r.")
        ground_program = relevant_grounding(program)
        assert parse_atom("r") in ground_program.head_atoms()
        model = well_founded_model(ground_program)
        assert model.is_true(parse_atom("p"))
        assert model.is_true(parse_atom("r"))

    def test_predicate_index_deduplicates(self):
        index = PredicateIndex()
        atom = parse_atom("p(a)")
        assert index.add(atom) is True
        assert index.add(atom) is False
        assert len(index) == 1
        assert list(index.get("p")) == [atom]
        assert index.get("q") == ()
        assert atom in index


class TestIncrementalIndex:
    def test_index_stays_in_sync_with_added_rules(self):
        program = GroundProgram()
        a, b = atoms("a", "b")
        program.add(NormalRule(a))
        index = program.index()
        assert index.least_model() == {a}
        program.add(NormalRule(b, (a,), ()))
        assert program.index() is index  # same object, grown in place
        assert index.least_model() == {a, b}
        model = well_founded_model(program)
        assert model.is_true(a) and model.is_true(b)
