"""Tests for the workload generators (:mod:`repro.bench.generators`)."""

from __future__ import annotations

import pytest

from repro.lang.parser import parse_atom
from repro.bench.generators import (
    combined_complexity_workload,
    employment_ontology,
    employment_workload,
    paper_example_program,
    random_guarded_program,
    reachability_program,
    university_ontology,
    win_move_datalog_pm,
    win_move_game,
)
from repro.lp.grounding import relevant_grounding
from repro.lp.stratification import is_stratified
from repro.lp.wfs import well_founded_model


class TestPaperExample:
    def test_base_instance_matches_example_4(self):
        program, database = paper_example_program()
        assert len(program) == 5
        assert parse_atom("r(0,0,1)") in database
        assert parse_atom("p(0,0)") in database
        assert program.is_guarded()

    def test_extra_chains_add_isomorphic_seed_facts(self):
        _, database = paper_example_program(extra_chains=3)
        assert len(database) == 2 + 2 * 3
        assert parse_atom("p(c3, c3)") in database


class TestEmploymentWorkload:
    def test_determinism(self):
        left = employment_ontology(25, seed=11)
        right = employment_ontology(25, seed=11)
        assert str(left) == str(right)

    def test_database_grows_linearly_with_persons(self):
        _, small = employment_workload(10, seed=1)
        _, large = employment_workload(40, seed=1)
        assert len(large) > len(small)

    def test_translated_program_is_guarded_and_uses_negation(self):
        program, _ = employment_workload(5, seed=1)
        assert program.is_guarded()
        assert not program.is_positive()

    def test_fraction_parameters_shape_the_abox(self):
        all_employed, _ = employment_workload(20, employed_fraction=1.0, seed=2)
        _, database = employment_workload(20, employed_fraction=1.0, seed=2)
        employed = [a for a in database if a.predicate == "employed"]
        persons = [a for a in database if a.predicate == "person"]
        assert len(employed) == len(persons) == 20


class TestWinMove:
    def test_lp_and_datalog_pm_versions_share_the_same_graph(self):
        lp_program = win_move_game(20, seed=5)
        program, database = win_move_datalog_pm(20, seed=5)
        lp_moves = {r.head for r in lp_program if r.is_fact()}
        assert lp_moves == set(database)

    def test_graph_has_dead_ends_to_make_the_game_interesting(self):
        lp_program = win_move_game(40, seed=9)
        ground = relevant_grounding(lp_program)
        model = well_founded_model(ground)
        wins = [a for a in model.universe() if a.predicate == "win"]
        assert any(model.is_true(a) for a in wins)
        assert any(model.is_false(a) for a in wins)

    def test_win_move_is_not_stratified(self):
        assert not is_stratified(win_move_game(10, seed=0))


class TestOtherGenerators:
    def test_reachability_program_is_stratified(self):
        program = reachability_program(15, seed=2)
        assert is_stratified(program)
        model = well_founded_model(relevant_grounding(program))
        assert model.is_total()
        assert model.is_true(parse_atom("reach(s)"))

    def test_random_guarded_program_is_guarded_and_deterministic(self):
        left, left_db = random_guarded_program(3, 2, 5, seed=4)
        right, right_db = random_guarded_program(3, 2, 5, seed=4)
        assert [str(r) for r in left] == [str(r) for r in right]
        assert left_db == right_db
        assert left.is_guarded()

    def test_random_guarded_program_scales_with_parameters(self):
        small, _ = random_guarded_program(2, 2, 3, seed=1)
        large, _ = random_guarded_program(2, 2, 9, seed=1)
        assert len(large) > len(small)

    def test_combined_complexity_workload_scales_with_the_schema(self):
        small_program, small_db = combined_complexity_workload(2, 2)
        large_program, large_db = combined_complexity_workload(4, 3)
        assert small_program.is_guarded() and large_program.is_guarded()
        assert len(large_program) > len(small_program)
        assert len(large_db) > len(small_db)
        assert large_program.max_arity() == 3

    def test_combined_complexity_workload_runs_under_the_engine(self):
        from repro.core.engine import WellFoundedEngine

        program, database = combined_complexity_workload(2, 2)
        model = WellFoundedEngine(program, database, max_depth=9).model()
        assert model.true_atoms()

    def test_university_ontology_shape(self):
        ontology = university_ontology(2, 4, seed=6)
        individuals = ontology.abox.individuals()
        assert "prof0" in individuals and "student1_3" in individuals
        assert "Student" in ontology.concept_names()
        assert "Advises" in ontology.role_names()
