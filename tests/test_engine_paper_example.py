"""End-to-end replay of the paper's running example (Examples 4, 6 and 9).

The expected truth values are taken verbatim from the paper:

* ``R(0, 1, f(0,0,1)) ∈ WFS(D, Σ)``        (Example 4),
* ``P(0, 1) ∈ WFS(D, Σ)``                   (Example 4),
* ``¬Q(1) ∈ WFS(D, Σ)``                     (Example 4),
* ``¬S(0)`` and ``T(0) ∈ WFS(D, Σ)``        (Example 9 — the literals that only
  appear after transfinitely many Ŵ_P iterations on the infinite forest),
* ``P(0, t_j)`` true and ``Q(t_j)`` false for every chain term ``t_j``
  materialised by the engine (Example 9's characterisation of Ŵ_{P,ω+2}).
"""

from __future__ import annotations

import pytest

from repro.lang.atoms import Atom
from repro.lang.parser import parse_atom, parse_query
from repro.lang.terms import Constant, FunctionTerm
from repro.core.engine import WellFoundedEngine
from repro.bench.generators import paper_example_program


def chain_terms(depth):
    """t_0 = 0, t_1 = 1, t_{i+2} = sk(0, t_i, t_{i+1})."""
    terms = [Constant("0"), Constant("1")]
    for _ in range(depth):
        terms.append(FunctionTerm("sk_r0_W", (Constant("0"), terms[-2], terms[-1])))
    return terms


class TestExample4Literals:
    def test_database_atoms_are_true(self, paper_example_engine):
        model = paper_example_engine.model()
        assert model.is_true(parse_atom("r(0,0,1)"))
        assert model.is_true(parse_atom("p(0,0)"))

    def test_first_chase_step_atom_is_true(self, paper_example_engine):
        model = paper_example_engine.model()
        terms = chain_terms(1)
        assert model.is_true(Atom("r", (Constant("0"), Constant("1"), terms[2])))

    def test_q1_is_false_because_of_the_una(self, paper_example_engine):
        # No rule can derive an atom R(*, *, 1): Skolem terms differ from the
        # constant 1 by the UNA, so the only rule instance for Q(1) is blocked
        # by P(0,0) being true — exactly the argument of Example 4.
        model = paper_example_engine.model()
        assert model.is_false(parse_atom("q(1)"))

    def test_p01_is_true(self, paper_example_engine):
        assert paper_example_engine.model().is_true(parse_atom("p(0,1)"))


class TestExample9TransfiniteLiterals:
    def test_s0_is_false_and_t0_is_true(self, paper_example_engine):
        model = paper_example_engine.model()
        assert model.is_false(parse_atom("s(0)"))
        assert model.is_true(parse_atom("t(0)"))

    def test_chain_literals_up_to_the_materialised_depth(self, paper_example_engine):
        model = paper_example_engine.model()
        terms = chain_terms(model.depth - 2)
        zero = Constant("0")
        for j in range(1, len(terms) - 1):
            assert model.is_true(Atom("p", (zero, terms[j]))), f"p(0, t_{j}) should be true"
            assert model.is_false(Atom("q", (terms[j],))), f"q(t_{j}) should be false"

    def test_model_is_total_on_the_segment(self, paper_example_engine):
        # Example 9's well-founded model decides every atom of the chain.
        model = paper_example_engine.model()
        assert model.undefined_atoms() == frozenset()

    def test_engine_converges_quickly(self, paper_example_engine):
        model = paper_example_engine.model()
        assert model.converged
        assert model.depth <= 7
        assert model.iterations <= 3


class TestExampleQueries:
    def test_boolean_queries(self, paper_example_engine):
        engine = paper_example_engine
        assert engine.holds("? t(0)")
        assert engine.holds("? t(X), not s(X)")
        assert engine.holds("? p(0, X), not q(X)")
        assert not engine.holds("? s(X)")
        assert not engine.holds("? q(1)")

    def test_atom_and_literal_queries(self, paper_example_engine):
        from repro.lang.atoms import Literal

        engine = paper_example_engine
        assert engine.holds(parse_atom("t(0)"))
        assert engine.holds(Literal(parse_atom("s(0)"), False))
        assert not engine.holds(Literal(parse_atom("t(0)"), False))

    def test_answer_returns_constant_tuples_only_by_default(self, paper_example_engine):
        answers = paper_example_engine.answer("? p(0, Y)")
        assert (Constant("0"),) in answers
        assert (Constant("1"),) in answers
        assert all(isinstance(t, Constant) for tup in answers for t in tup)

    def test_answer_can_include_nulls_on_request(self, paper_example_engine):
        answers = paper_example_engine.answer("? p(0, Y)", constants_only=False)
        assert any(isinstance(tup[0], FunctionTerm) for tup in answers)

    def test_literal_value_api(self, paper_example_engine):
        assert paper_example_engine.literal_value(parse_atom("t(0)")) == "true"
        assert paper_example_engine.literal_value(parse_atom("s(0)")) == "false"


class TestApiEquivalence:
    def test_programmatic_and_textual_construction_agree(self, paper_example_engine):
        program, database = paper_example_program()
        engine = WellFoundedEngine(program, database)
        left = paper_example_engine.model()
        right = engine.model()
        for atom_text in ("p(0,0)", "p(0,1)", "q(1)", "s(0)", "t(0)"):
            atom = parse_atom(atom_text)
            assert left.is_true(atom) == right.is_true(atom)
            assert left.is_false(atom) == right.is_false(atom)

    def test_extra_chains_behave_like_isomorphic_copies(self):
        program, database = paper_example_program(extra_chains=2)
        engine = WellFoundedEngine(program, database)
        model = engine.model()
        assert model.is_true(parse_atom("t(0)"))
        assert model.is_true(parse_atom("t(c1)"))
        assert model.is_true(parse_atom("t(c2)"))
        assert model.is_false(parse_atom("s(c1)"))
