"""Unit tests for :mod:`repro.lang.terms`."""

from __future__ import annotations

import pytest

from repro.lang.terms import (
    Constant,
    FunctionTerm,
    Variable,
    constants_of,
    fresh_null_factory,
    fresh_variable_factory,
    is_ground_term,
    nulls_of,
    term_depth,
    term_sort_key,
    uniquify,
    variables_of,
)


class TestConstantsAndVariables:
    def test_equal_constants_compare_equal(self):
        assert Constant("a") == Constant("a")
        assert hash(Constant("a")) == hash(Constant("a"))

    def test_distinct_constants_differ_under_una(self):
        assert Constant("a") != Constant("b")

    def test_constant_and_variable_with_same_name_differ(self):
        assert Constant("x") != Variable("x")

    def test_variables_are_hashable_and_comparable(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")
        assert len({Variable("X"), Variable("X"), Variable("Y")}) == 2

    def test_str_forms(self):
        assert str(Constant("john")) == "john"
        assert str(Variable("X")) == "X"


class TestFunctionTerms:
    def test_construction_and_equality(self):
        t1 = FunctionTerm("f", (Constant("a"), Variable("X")))
        t2 = FunctionTerm("f", (Constant("a"), Variable("X")))
        assert t1 == t2
        assert hash(t1) == hash(t2)

    def test_different_function_symbols_differ(self):
        assert FunctionTerm("f", (Constant("a"),)) != FunctionTerm("g", (Constant("a"),))

    def test_functional_term_differs_from_constant(self):
        assert FunctionTerm("a", ()) != Constant("a")

    def test_args_are_stored_as_tuple(self):
        term = FunctionTerm("f", [Constant("a"), Constant("b")])
        assert isinstance(term.args, tuple)
        assert term.arity == 2

    def test_immutability(self):
        term = FunctionTerm("f", (Constant("a"),))
        with pytest.raises(AttributeError):
            term.function = "g"

    def test_str_form(self):
        term = FunctionTerm("f", (Constant("0"), Variable("X")))
        assert str(term) == "f(0, X)"
        assert str(FunctionTerm("g", ())) == "g()"

    def test_deeply_nested_terms_hash_in_reasonable_time(self):
        # Fibonacci-style sharing: t_{i+2} = f(t_i, t_{i+1}).  Without cached
        # hashes this would be exponential in the nesting depth.
        t0, t1 = Constant("0"), Constant("1")
        terms = [t0, t1]
        for _ in range(200):
            terms.append(FunctionTerm("f", (terms[-2], terms[-1])))
        deep = terms[-1]
        assert hash(deep) == hash(FunctionTerm("f", (terms[-3], terms[-2])))
        assert deep == terms[-1]
        assert is_ground_term(deep)


class TestGroundness:
    def test_constant_is_ground(self):
        assert is_ground_term(Constant("a"))

    def test_variable_is_not_ground(self):
        assert not is_ground_term(Variable("X"))

    def test_function_term_groundness_follows_arguments(self):
        assert is_ground_term(FunctionTerm("f", (Constant("a"),)))
        assert not is_ground_term(FunctionTerm("f", (Variable("X"),)))
        nested = FunctionTerm("f", (FunctionTerm("g", (Variable("X"),)),))
        assert not is_ground_term(nested)


class TestTermTraversals:
    def test_variables_of_collects_nested_variables(self):
        term = FunctionTerm("f", (Variable("X"), FunctionTerm("g", (Variable("Y"),))))
        assert set(variables_of(term)) == {Variable("X"), Variable("Y")}

    def test_variables_of_ground_term_is_empty(self):
        term = FunctionTerm("f", (Constant("a"), FunctionTerm("g", (Constant("b"),))))
        assert list(variables_of(term)) == []

    def test_constants_of_collects_nested_constants(self):
        term = FunctionTerm("f", (Constant("a"), FunctionTerm("g", (Constant("b"),))))
        assert set(constants_of(term)) == {Constant("a"), Constant("b")}

    def test_nulls_of_yields_maximal_ground_functional_terms(self):
        inner = FunctionTerm("g", (Constant("b"),))
        outer = FunctionTerm("f", (Constant("a"), inner))
        assert list(nulls_of(outer)) == [outer]
        mixed = FunctionTerm("f", (Variable("X"), inner))
        assert list(nulls_of(mixed)) == [inner]

    def test_term_depth(self):
        assert term_depth(Constant("a")) == 0
        assert term_depth(Variable("X")) == 0
        assert term_depth(FunctionTerm("f", (Constant("a"),))) == 1
        nested = FunctionTerm("f", (FunctionTerm("g", (Constant("a"),)),))
        assert term_depth(nested) == 2


class TestOrderingAndFactories:
    def test_sort_key_places_constants_before_nulls(self):
        constant_key = term_sort_key(Constant("z"))
        null_key = term_sort_key(FunctionTerm("a", ()))
        assert constant_key < null_key

    def test_sort_key_orders_constants_lexicographically(self):
        assert term_sort_key(Constant("a")) < term_sort_key(Constant("b"))

    def test_fresh_variable_factory_produces_distinct_variables(self):
        fresh = fresh_variable_factory("V")
        assert fresh() != fresh()

    def test_fresh_null_factory_produces_distinct_nulls(self):
        fresh = fresh_null_factory("n")
        first, second = fresh(), fresh()
        assert first != second
        assert is_ground_term(first)

    def test_uniquify_preserves_order(self):
        a, b = Constant("a"), Constant("b")
        assert uniquify([a, b, a, b, a]) == [a, b]
