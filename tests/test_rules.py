"""Unit tests for :mod:`repro.lang.rules` (normal rules, NTGDs, guardedness)."""

from __future__ import annotations

import pytest

from repro.exceptions import IllFormedRuleError, NotGuardedError
from repro.lang.atoms import Atom
from repro.lang.rules import NTGD, NormalRule
from repro.lang.terms import Constant, FunctionTerm, Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b = Constant("a"), Constant("b")


class TestNormalRule:
    def test_fact_detection(self):
        fact = NormalRule(Atom("p", (a,)))
        assert fact.is_fact() and fact.is_positive() and fact.is_ground()

    def test_body_literals_keep_polarity(self):
        rule = NormalRule(Atom("p", (X,)), (Atom("q", (X,)),), (Atom("r", (X,)),))
        literals = rule.body
        assert [l.positive for l in literals] == [True, False]

    def test_unsafe_head_variable_is_rejected(self):
        with pytest.raises(IllFormedRuleError):
            NormalRule(Atom("p", (X, Y)), (Atom("q", (X,)),), ())

    def test_unsafe_negative_variable_is_rejected(self):
        with pytest.raises(IllFormedRuleError):
            NormalRule(Atom("p", (X,)), (Atom("q", (X,)),), (Atom("r", (Y,)),))

    def test_positive_part_drops_negative_body(self):
        rule = NormalRule(Atom("p", (X,)), (Atom("q", (X,)),), (Atom("r", (X,)),))
        positive = rule.positive_part()
        assert positive.body_neg == () and positive.body_pos == rule.body_pos

    def test_variables_and_predicates(self):
        rule = NormalRule(Atom("p", (X,)), (Atom("q", (X, Y)),), (Atom("r", (Y,)),))
        assert rule.variables() == {X, Y}
        assert rule.predicates() == {"p", "q", "r"}

    def test_function_terms_allowed_in_normal_rules(self):
        head = Atom("p", (FunctionTerm("f", (X,)),))
        rule = NormalRule(head, (Atom("q", (X,)),), ())
        assert rule.head == head

    def test_ground_rule_detection(self):
        assert NormalRule(Atom("p", (a,)), (Atom("q", (b,)),), ()).is_ground()
        assert not NormalRule(Atom("p", (X,)), (Atom("q", (X,)),), ()).is_ground()

    def test_str_round_trips_visually(self):
        rule = NormalRule(Atom("p", (X,)), (Atom("q", (X,)),), (Atom("r", (X,)),))
        assert str(rule) == "q(X), not r(X) -> p(X)."
        assert str(NormalRule(Atom("p", (a,)))) == "p(a)."


class TestNTGD:
    def test_existential_variable_detection(self):
        ntgd = NTGD((Atom("scientist", (X,)),), Atom("isAuthorOf", (X, Y)))
        assert ntgd.existential_variables() == {Y}
        assert ntgd.universal_variables() == {X}
        assert ntgd.frontier_variables() == {X}

    def test_no_existentials_when_head_covered(self):
        ntgd = NTGD((Atom("conf", (X,)),), Atom("article", (X,)))
        assert ntgd.existential_variables() == set()

    def test_guard_detection(self):
        guarded = NTGD((Atom("r", (X, Y, Z)), Atom("p", (X, Y))), Atom("p", (X, Z)))
        assert guarded.is_guarded()
        assert guarded.guard() == Atom("r", (X, Y, Z))

    def test_unguarded_rule_detected(self):
        unguarded = NTGD((Atom("p", (X,)), Atom("q", (Y,))), Atom("r", (X, Y)))
        assert not unguarded.is_guarded()
        with pytest.raises(NotGuardedError):
            unguarded.require_guard()

    def test_empty_body_is_rejected(self):
        with pytest.raises(IllFormedRuleError):
            NTGD((), Atom("p", (a,)))

    def test_function_terms_are_rejected_in_ntgds(self):
        with pytest.raises(IllFormedRuleError):
            NTGD((Atom("p", (FunctionTerm("f", (X,)),)),), Atom("q", (X,)))

    def test_negative_body_variables_must_be_universal(self):
        with pytest.raises(IllFormedRuleError):
            NTGD((Atom("p", (X,)),), Atom("q", (X,)), (Atom("r", (Y,)),))

    def test_positive_part_drops_negation(self):
        ntgd = NTGD((Atom("r", (X, Y)),), Atom("s", (X,)), (Atom("p", (X,)),))
        assert ntgd.positive_part().body_neg == ()

    def test_linearity(self):
        assert NTGD((Atom("p", (X,)),), Atom("q", (X,))).is_linear()
        assert not NTGD(
            (Atom("r", (X, Y)), Atom("p", (X,))), Atom("q", (X,))
        ).is_linear()

    def test_max_arity(self):
        ntgd = NTGD((Atom("r", (X, Y, Z)),), Atom("q", (X,)))
        assert ntgd.max_arity() == 3

    def test_str_mentions_existentials(self):
        ntgd = NTGD((Atom("scientist", (X,)),), Atom("isAuthorOf", (X, Y)))
        assert "exists Y" in str(ntgd)
