"""Property tests: magic-sets rewriting never changes query answers.

The central contract of :mod:`repro.rewrite` is *bit-identical answers*:
``holds(q, rewrite=True) == holds(q, rewrite=False)`` and likewise for
``answer``, across generated programs and queries — including programs with
negation and with existential recursion, where the engine's conservative
fallback (relevance-pruned unrewritten evaluation) must kick in and still
agree.
"""

from __future__ import annotations

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.bench.generators import (
    paper_example_program,
    random_guarded_program,
    win_move_game,
)
from repro.core.engine import WellFoundedEngine
from repro.lang.atoms import Atom, neg, pos
from repro.lang.queries import NormalBCQ
from repro.lang.terms import Constant, Variable
from repro.lp.grounding import relevant_grounding
from repro.lp.wfs import well_founded_model
from repro.rewrite import ground_magic, rewrite_for_query

X = Variable("X")

COMMON_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def guarded_workloads(draw):
    """A random guarded Datalog± workload plus a query against it.

    ``existential_prob > 0`` yields Skolemised rules whose query-relevant
    fragments are frequently not weakly acyclic, which is exactly what drives
    the conservative fallback path.
    """
    seed = draw(st.integers(min_value=0, max_value=10_000))
    num_predicates = draw(st.integers(min_value=1, max_value=3))
    num_rules = draw(st.integers(min_value=2, max_value=5))
    negation_prob = draw(st.sampled_from([0.0, 0.4, 0.8]))
    existential_prob = draw(st.sampled_from([0.0, 0.0, 0.4]))
    program, database = random_guarded_program(
        num_predicates,
        2,
        num_rules,
        negation_prob=negation_prob,
        existential_prob=existential_prob,
        num_constants=3,
        num_facts=8,
        seed=seed,
    )

    predicates = sorted({f"q{i}" for i in range(num_predicates)})
    predicate = draw(st.sampled_from(predicates))
    shape = draw(st.sampled_from(["ground", "open", "negated", "join"]))
    constant = Constant(f"c{draw(st.integers(min_value=0, max_value=2))}")
    if shape == "ground":
        query = NormalBCQ((Atom(predicate, (constant,)),))
    elif shape == "open":
        query = NormalBCQ((Atom(predicate, (X,)),))
    elif shape == "negated":
        other = draw(st.sampled_from(predicates))
        query = NormalBCQ((Atom(predicate, (X,)),), (Atom(other, (X,)),))
    else:
        other = draw(st.sampled_from(predicates))
        query = NormalBCQ((Atom(predicate, (X,)), Atom(other, (X,))))
    return program, database, query


@given(workload=guarded_workloads())
@settings(max_examples=40, **COMMON_SETTINGS)
def test_holds_is_invariant_under_rewriting(workload):
    """``holds`` agrees with and without rewriting, fallback cases included."""
    program, database, query = workload
    engine = WellFoundedEngine(program, database, max_nodes=30_000)
    # Compare only exact models: a non-converged classic approximation is not
    # a ground truth either path is required to match.
    assume(engine.model().converged)
    classic = engine.holds(query)
    rewritten = engine.holds(query, rewrite=True)
    assert rewritten == classic, (
        f"rewrite changed the answer for {query} "
        f"(stats: {engine.last_query_stats})"
    )


@given(workload=guarded_workloads())
@settings(max_examples=25, **COMMON_SETTINGS)
def test_answer_is_invariant_under_rewriting(workload):
    """``answer`` returns identical certain-answer sets with and without rewriting."""
    program, database, query = workload
    assume(not query.negative)
    engine = WellFoundedEngine(program, database, max_nodes=30_000)
    assume(engine.model().converged)
    from repro.lang.queries import as_conjunctive_query

    conjunctive = as_conjunctive_query(query)
    assert engine.answer(conjunctive, rewrite=True) == engine.answer(conjunctive)


@given(
    size=st.integers(min_value=8, max_value=40),
    seed=st.integers(min_value=0, max_value=10_000),
    pick=st.integers(min_value=0, max_value=1_000_000),
)
@settings(max_examples=40, **COMMON_SETTINGS)
def test_ground_slice_preserves_wfs_on_unstratified_programs(size, seed, pick):
    """LP-level property: the magic-restricted grounding agrees with the full
    WFS on the queried atom, for arbitrary (unstratified) win/move games."""
    program = list(win_move_game(size, seed=seed))
    full = relevant_grounding(program)
    atoms = sorted(
        (atom for atom in full.atoms() if atom.predicate == "win"),
        key=lambda atom: atom.sort_key(),
    )
    assume(atoms)
    atom = atoms[pick % len(atoms)]
    plan = rewrite_for_query(program, [pos(atom)])
    assert plan.supported
    grounding = ground_magic(plan, [])
    assert grounding.saturated
    restricted = well_founded_model(grounding.ground)
    reference = well_founded_model(full)
    assert restricted.is_true(atom) == reference.is_true(atom)
    assert restricted.is_false(atom) == reference.is_false(atom)
    assert restricted.is_undefined(atom) == reference.is_undefined(atom)


@given(
    chains=st.integers(min_value=1, max_value=3),
    query=st.sampled_from(["? t(0)", "? q(1)", "? s(0)", "? p(0, 1), not q(1)"]),
)
@settings(max_examples=12, **COMMON_SETTINGS)
def test_fallback_on_existential_recursion_agrees(chains, query):
    """The paper's transfinite example is outside the sound fragment: the
    rewrite path must fall back — and still return the classic answer."""
    program, database = paper_example_program(chains)
    engine = WellFoundedEngine(program, database)
    classic = engine.holds(query)
    rewritten = engine.holds(query, rewrite=True)
    assert engine.last_query_stats["mode"] in ("pruned-chase", "full-chase")
    assert engine.last_query_stats["fallback_reason"]
    assert rewritten == classic
