"""Unit tests for the magic-sets rewriting subsystem (:mod:`repro.rewrite`)."""

from __future__ import annotations

import pytest

from repro.exceptions import IllFormedRuleError
from repro.lang.atoms import Atom, neg, pos
from repro.lang.queries import NormalBCQ, query_holds
from repro.lang.rules import NormalRule
from repro.lang.terms import Constant, Variable
from repro.lp.grounding import SemiNaiveGrounder, relevant_grounding
from repro.lp.wfs import well_founded_model
from repro.rewrite import (
    Adornment,
    BoundFirstSIPS,
    LeftToRightSIPS,
    adorn,
    adornment_of,
    ground_magic,
    is_magic_predicate,
    magic_predicate_name,
    rewrite_for_query,
    sips_strategy,
)
from repro.core.engine import WellFoundedEngine
from repro.bench.generators import (
    chain_reachability_workload,
    paper_example_program,
    win_move_datalog_pm,
    win_move_game,
)

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b, c = Constant("a"), Constant("b"), Constant("c")


def reach_rules() -> list[NormalRule]:
    """reach/unreachable over edges — the workhorse of these tests."""
    return [
        NormalRule(Atom("reach", (X,)), (Atom("source", (X,)),), ()),
        NormalRule(Atom("reach", (Y,)), (Atom("edge", (X, Y)), Atom("reach", (X,))), ()),
        NormalRule(Atom("unreachable", (X,)), (Atom("node", (X,)),), (Atom("reach", (X,)),)),
    ]


def chain_facts(chains: int, length: int) -> list[Atom]:
    facts: list[Atom] = []
    for chain in range(chains):
        facts.append(Atom("source", (Constant(f"c{chain}_0"),)))
        for i in range(length):
            facts.append(
                Atom("edge", (Constant(f"c{chain}_{i}"), Constant(f"c{chain}_{i+1}")))
            )
        for i in range(length + 1):
            facts.append(Atom("node", (Constant(f"c{chain}_{i}"),)))
    return facts


class TestAdornment:
    def test_adornment_rendering_and_projection(self):
        adornment = Adornment((True, False, True))
        assert str(adornment) == "bfb"
        assert adornment.bound_positions() == (0, 2)
        assert adornment.project(("x", "y", "z")) == ("x", "z")

    def test_adornment_of_marks_ground_and_bound_positions(self):
        atom = Atom("p", (a, X, Y))
        assert str(adornment_of(atom, frozenset())) == "bff"
        assert str(adornment_of(atom, frozenset({X}))) == "bbf"

    def test_adorn_reaches_only_query_relevant_predicates(self):
        adorned = adorn(reach_rules(), [pos(Atom("reach", (a,)))])
        assert adorned.relevant_predicates() == {"reach", "edge", "source"}
        assert "unreachable" not in adorned.relevant_predicates()

    def test_bound_query_constant_produces_bound_adornment(self):
        adorned = adorn(reach_rules(), [pos(Atom("reach", (a,)))])
        assert [str(x) for x in adorned.adornments_of("reach")] == ["b"]

    def test_negated_literals_are_visited_fully_bound(self):
        adorned = adorn(
            reach_rules(),
            [pos(Atom("node", (X,))), neg(Atom("reach", (X,)))],
        )
        (reach_adornment,) = adorned.adornments_of("reach")
        assert str(reach_adornment) == "b"

    def test_unsafe_negated_query_literal_is_rejected(self):
        with pytest.raises(IllFormedRuleError):
            adorn(reach_rules(), [pos(Atom("node", (X,))), neg(Atom("reach", (Y,)))])

    def test_empty_query_is_rejected(self):
        with pytest.raises(IllFormedRuleError):
            adorn(reach_rules(), [])


class TestSIPS:
    def test_left_to_right_keeps_body_order(self):
        body = (pos(Atom("p", (X,))), pos(Atom("q", (X, Y))), neg(Atom("r", (Y,))))
        steps = LeftToRightSIPS().schedule(body, frozenset())
        assert [s.literal.predicate for s in steps] == ["p", "q", "r"]
        # the negated literal sees every positive atom as its prefix
        assert [atom.predicate for atom in steps[-1].prefix] == ["p", "q"]

    def test_bound_first_prefers_literals_with_bound_arguments(self):
        body = (pos(Atom("p", (X,))), pos(Atom("q", (a, Y))))
        steps = BoundFirstSIPS().schedule(body, frozenset())
        assert [s.literal.predicate for s in steps] == ["q", "p"]

    def test_negatives_always_scheduled_last(self):
        body = (neg(Atom("r", (X,))), pos(Atom("p", (X,))))
        for strategy in (LeftToRightSIPS(), BoundFirstSIPS()):
            steps = strategy.schedule(body, frozenset())
            assert [s.literal.positive for s in steps] == [True, False]

    def test_strategy_lookup(self):
        assert isinstance(sips_strategy("bound-first"), BoundFirstSIPS)
        with pytest.raises(ValueError):
            sips_strategy("no-such-sips")


class TestMagicRewriting:
    def test_magic_names_live_in_reserved_namespace(self):
        name = magic_predicate_name("reach", Adornment((True,)))
        assert is_magic_predicate(name)
        assert not is_magic_predicate("reach")

    def test_restricted_grounding_is_much_smaller_on_selective_queries(self):
        rules = reach_rules()
        facts = chain_facts(chains=6, length=8)
        full = relevant_grounding(rules + [NormalRule(f) for f in facts])
        plan = rewrite_for_query(rules, [pos(Atom("reach", (Constant("c0_8"),)))])
        grounding = ground_magic(plan, facts)
        assert grounding.saturated
        assert len(grounding.ground) * 5 <= len(full)

    def test_restricted_model_agrees_with_full_model_on_query(self):
        rules = reach_rules()
        facts = chain_facts(chains=3, length=4)
        full = well_founded_model(
            relevant_grounding(rules + [NormalRule(f) for f in facts])
        )
        for atom in (
            Atom("reach", (Constant("c1_4"),)),
            Atom("unreachable", (Constant("c2_2"),)),
        ):
            plan = rewrite_for_query(rules, [pos(atom)])
            grounding = ground_magic(plan, facts)
            restricted = well_founded_model(grounding.ground)
            assert restricted.is_true(atom) == full.is_true(atom)
            assert restricted.is_false(atom) == full.is_false(atom)

    def test_unstratified_negation_is_sliced_soundly(self):
        """win/move: the cover flows through negated literals, so the slice
        preserves true/false/undefined exactly — no stratification needed."""
        program = list(win_move_game(25, seed=11))
        full = relevant_grounding(program)
        full_model = well_founded_model(full)
        win_atoms = sorted(
            (atom for atom in full.atoms() if atom.predicate == "win"),
            key=lambda atom: atom.sort_key(),
        )
        assert win_atoms, "generator produced no win atoms"
        for atom in win_atoms[:12]:
            plan = rewrite_for_query(program, [pos(atom)])
            grounding = ground_magic(plan, [])
            model = well_founded_model(grounding.ground)
            assert model.is_true(atom) == full_model.is_true(atom)
            assert model.is_false(atom) == full_model.is_false(atom)

    def test_negated_query_literal_is_covered(self):
        rules = reach_rules()
        facts = chain_facts(chains=2, length=3)
        query = NormalBCQ(
            (Atom("node", (Constant("c0_2"),)),),
            (Atom("reach", (Constant("c0_2"),)),),
        )
        plan = rewrite_for_query(rules, query.literals())
        grounding = ground_magic(plan, facts)
        model = well_founded_model(grounding.ground)
        # c0_2 is reachable, so the NBCQ must be false — and it must be false
        # because reach(c0_2) is *true* in the slice, not merely missing.
        assert model.is_true(Atom("reach", (Constant("c0_2"),)))
        assert not query_holds(query, model)

    def test_negative_context_rules_are_labelled(self):
        plan = rewrite_for_query(
            reach_rules(), [pos(Atom("unreachable", (Constant("c0_1"),)))]
        )
        assert plan.supported
        assert plan.negative_context, "negated body literal must emit labelled magic rules"
        for rule in plan.negative_context:
            assert is_magic_predicate(rule.head.predicate)

    def test_existential_recursion_is_outside_the_sound_fragment(self):
        program, _ = paper_example_program()
        from repro.lang.skolem import skolemize_program

        rules = skolemize_program(program).rules()
        plan = rewrite_for_query(rules, [pos(Atom("t", (Constant("0"),)))])
        assert not plan.supported
        assert "no static termination criterion" in plan.reason
        assert plan.termination_criterion is None
        assert plan.program is None
        with pytest.raises(ValueError):
            ground_magic(plan, [])

    def test_magic_namespace_collision_is_rejected(self):
        clash = NormalRule(
            Atom("__magic_b__p", (X,)), (Atom("q", (X,)),), ()
        )
        plan = rewrite_for_query(
            [clash, NormalRule(Atom("p", (X,)), (Atom("__magic_b__p", (X,)),), ())],
            [pos(Atom("p", (a,)))],
        )
        assert not plan.supported
        assert "magic namespace" in plan.reason

    def test_bound_first_sips_gives_identical_answers(self):
        rules = reach_rules()
        facts = chain_facts(chains=2, length=4)
        atom = Atom("unreachable", (Constant("c1_3"),))
        results = []
        for sips in ("left-to-right", "bound-first"):
            plan = rewrite_for_query(rules, [pos(atom)], sips=sips)
            model = well_founded_model(ground_magic(plan, facts).ground)
            results.append((model.is_true(atom), model.is_false(atom)))
        assert results[0] == results[1]


class TestSemiNaiveGrounder:
    def test_budget_exhaustion_is_reported_not_raised(self):
        # A term-growing rule never saturates; the grounder must stop politely.
        from repro.lang.terms import FunctionTerm

        growing = NormalRule(
            Atom("p", (FunctionTerm("f", (X,)),)), (Atom("p", (X,)),), ()
        )
        grounder = SemiNaiveGrounder([growing], [Atom("p", (a,))])
        assert not grounder.run(max_rounds=3, raise_on_budget=False)
        assert not grounder.saturated
        # resuming with a larger budget continues from where it stopped
        assert not grounder.run(max_rounds=5, raise_on_budget=False)
        assert grounder.rounds == 5

    def test_matches_relevant_grounding(self):
        program = list(win_move_game(15, seed=3))
        grounder = SemiNaiveGrounder(program)
        assert grounder.run()
        reference = relevant_grounding(program)
        assert set(grounder.ground.rules()) == set(reference.rules())


class TestEngineRewritePath:
    def test_holds_agrees_on_function_free_unstratified_program(self):
        program, database = win_move_datalog_pm(30, seed=5)
        engine = WellFoundedEngine(program, database)
        positions = sorted({atom.args[0] for atom in database}, key=str)
        for position in positions[:6]:
            query = f"? win({position})"
            assert engine.holds(query) == engine.holds(query, rewrite=True)
        assert engine.last_query_stats["mode"] == "magic"

    def test_answer_agrees_and_reports_stats(self):
        program, database = chain_reachability_workload(4, 6)
        engine = WellFoundedEngine(program, database)
        classic = engine.answer("? reach(X)")
        rewritten = engine.answer("? reach(X)", rewrite=True)
        assert classic == rewritten
        assert engine.last_query_stats["mode"] == "magic"
        assert engine.last_query_stats["saturated"]

    def test_selective_query_grounds_less_than_classic(self):
        program, database = chain_reachability_workload(6, 8)
        engine = WellFoundedEngine(program, database)
        target = "? reach(c0_8)"
        assert engine.holds(target, rewrite=True)
        rewritten_size = engine.last_query_stats["ground_rules"]
        classic_size = len(engine.ground_program())
        assert rewritten_size * 5 <= classic_size

    def test_fallback_is_exact_and_flagged(self):
        program, database = paper_example_program(1)
        engine = WellFoundedEngine(program, database)
        for query in ("? t(0)", "? q(1)", "? p(0, 1), not s(0)"):
            assert engine.holds(query) == engine.holds(query, rewrite=True)
            stats = engine.last_query_stats
            assert stats["mode"] in ("pruned-chase", "full-chase")
            assert stats["fallback_reason"]
            # the mode must truthfully reflect whether rules were dropped
            pruned = stats["rules_relevant"] < stats["rules_total"]
            assert stats["mode"] == ("pruned-chase" if pruned else "full-chase")

    def test_rewrite_default_from_constructor(self):
        program, database = chain_reachability_workload(2, 3)
        engine = WellFoundedEngine(program, database, rewrite=True)
        assert engine.holds("? reach(c1_3)")
        assert engine.last_query_stats["mode"] == "magic"
        # per-call override wins over the engine default
        assert engine.holds("? reach(c1_3)", rewrite=False)
        assert engine.last_query_stats["mode"] == "classic"

    def test_rewrite_results_are_cached_per_query(self):
        program, database = chain_reachability_workload(2, 3)
        engine = WellFoundedEngine(program, database)
        engine.holds("? reach(c0_3)", rewrite=True)
        first = engine.last_query_stats
        engine.holds("? reach(c0_3)", rewrite=True)
        assert engine.last_query_stats is first  # same cached outcome object
