"""Differential tests: agenda saturation ≡ the retained breadth-first scan.

The agenda-driven loop of :class:`repro.chase.engine.GuardedChaseEngine`
(``saturation="agenda"``, the default) must reach the *bit-identical* least
fixpoint as the historical round-based re-scan, kept verbatim as
``saturation="scan"`` / ``_expand_one_round_scan``.  "Bit-identical" is asserted
through a canonical forest signature — each node identified by its root label
and the ground edge rules along its path (node ids are insertion-order
artefacts), carrying its label, tree depth and canonical level — so two
forests agree exactly on labels, parents, rules and levels iff their
signatures are equal.

The suites cover the paper's running examples, hand-built guarded programs
exercising the watched-side-atom machinery, iterative deepening, segment-cache
splicing, unguarded experimentation mode, budget exhaustion, and randomised
agenda orderings.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.generators import (
    chain_reachability_workload,
    win_move_datalog_pm,
)
from repro.chase.engine import GuardedChaseEngine
from repro.chase.forest import ChaseForest
from repro.chase.segments import clear_segment_stores
from repro.exceptions import GroundingError
from repro.lang.parser import parse_program
from repro.lang.skolem import skolemize_program

#: Example 4 of the paper (kept inline: ``conftest`` is ambiguous between the
#: tests/ and benchmarks/ directories when pytest runs from the repo root).
PAPER_EXAMPLE_TEXT = """
r(X,Y,Z) -> exists W r(X,Z,W).
r(X,Y,Z), p(X,Y), not q(Z) -> p(X,Z).
r(X,Y,Z), not p(X,Y) -> q(Z).
r(X,Y,Z), not p(X,Z) -> s(X).
p(X,Y), not s(X) -> t(X).
r(0,0,1).
p(0,0).
"""


def forest_signature(forest: ChaseForest) -> frozenset:
    """Canonical, insertion-order-independent identity of a chase forest."""
    entries = []
    for node in forest.nodes():
        path = []
        current = node
        while current.parent is not None:
            path.append(current.edge_rule)
            current = forest.node(current.parent)
        entries.append(
            (current.label, tuple(reversed(path)), node.label, node.depth, node.level)
        )
    signature = frozenset(entries)
    # distinct nodes must have distinct (root, path) identities
    assert len(signature) == len(forest)
    return signature


def build(program_text_or_pieces, depth, *, saturation, segment_cache=False,
          require_guarded=True, agenda_order=None, schedule=None):
    """Expand a forest for a workload in the given saturation mode."""
    if isinstance(program_text_or_pieces, str):
        program, database = parse_program(program_text_or_pieces)
    else:
        program, database = program_text_or_pieces
    engine = GuardedChaseEngine(
        skolemize_program(program),
        database,
        saturation=saturation,
        segment_cache=segment_cache,
        require_guarded=require_guarded,
        agenda_order=agenda_order,
    )
    for step in schedule or ():
        engine.expand(step)
    engine.expand(depth)
    return engine


LITERATURE = """
conferencePaper(X) -> article(X).
scientist(X) -> exists Y isAuthorOf(X, Y).
isAuthorOf(X, Y) -> author(X).
scientist(john).
conferencePaper(pods13).
"""

#: A program where a rule's side atom is derived *after* the guard-hosting
#: node exists: p(a) arrives first, the side atom s(a) only exists once the
#: chain c -> d -> s fires.  The agenda must wake the blocked (node, rule)
#: pair through its watched-atom waiter.
LATE_SIDE_ATOM = """
p(X), s(X) -> exists Y q(X, Y).
c(X) -> d(X).
d(X) -> s(X).
p(a).
c(a).
p(b).
"""

#: Nullary side atom: firing is blocked on a propositional flag derived later.
NULLARY_SIDE = """
p(X), flag -> q(X).
trigger(X) -> flag.
p(a).
trigger(t).
"""

#: Side atom with a rule constant: probe(c) must label the forest for the
#: gated rule to fire anywhere.
CONSTANT_SIDE = """
p(X), probe(c) -> q(X).
seed(X) -> probe(X).
p(a).
p(b).
seed(c).
"""

WORKLOADS = {
    "paper_example": (PAPER_EXAMPLE_TEXT, 7),
    "literature": (LITERATURE, 6),
    "late_side_atom": (LATE_SIDE_ATOM, 6),
    "nullary_side": (NULLARY_SIDE, 5),
    "constant_side": (CONSTANT_SIDE, 5),
    "win_move": (win_move_datalog_pm(24, seed=3), 5),
    "chains": (chain_reachability_workload(3, 6), 9),
}


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_agenda_forest_is_bit_identical_to_scan(name):
    workload, depth = WORKLOADS[name]
    scan = build(workload, depth, saturation="scan")
    agenda = build(workload, depth, saturation="agenda")
    assert forest_signature(agenda.forest) == forest_signature(scan.forest)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_agenda_deepening_matches_one_shot_scan(name):
    """Incremental deepening (the engine's real usage) agrees with one shot."""
    workload, depth = WORKLOADS[name]
    scan = build(workload, depth, saturation="scan")
    agenda = build(workload, depth, saturation="agenda", schedule=[1, 2, 4])
    assert forest_signature(agenda.forest) == forest_signature(scan.forest)


@pytest.mark.parametrize("seed", [0, 1, 7])
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_agenda_order_does_not_change_the_forest(name, seed):
    workload, depth = WORKLOADS[name]
    reference = forest_signature(build(workload, depth, saturation="scan").forest)
    rng = random.Random(seed)
    shuffled = build(
        workload, depth, saturation="agenda", agenda_order=lambda n: rng.randrange(n)
    )
    assert forest_signature(shuffled.forest) == reference


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_spliced_forest_is_bit_identical_to_scan(name):
    """Cold and warm segment-cache engines agree with the scan reference."""
    workload, depth = WORKLOADS[name]
    reference = forest_signature(build(workload, depth, saturation="scan").forest)
    clear_segment_stores()
    cold = build(workload, depth, saturation="agenda", segment_cache=True)
    warm = build(workload, depth, saturation="agenda", segment_cache=True)
    deepened = build(
        workload, depth, saturation="agenda", segment_cache=True, schedule=[2, 3]
    )
    assert forest_signature(cold.forest) == reference
    assert forest_signature(warm.forest) == reference
    assert forest_signature(deepened.forest) == reference


def test_late_side_atom_actually_fires_through_the_waiter():
    """The q-child exists for p(a) (whose side atom arrives late) and not for
    p(b) (whose side atom never arrives) — pinning the waiter semantics."""
    engine = build(LATE_SIDE_ATOM, 6, saturation="agenda")
    labels = {str(a) for a in engine.atoms()}
    assert any(l.startswith("q(a") for l in labels)
    assert not any(l.startswith("q(b") for l in labels)


def test_frontier_nodes_are_reprocessed_when_the_bound_rises():
    program, database = parse_program(
        """
        next(X, Y) -> exists Z next(Y, Z).
        next(a, b).
        """
    )
    engine = GuardedChaseEngine(skolemize_program(program), database)
    engine.expand(2)
    frontier_before = {n.label for n in engine.frontier_nodes()}
    assert frontier_before
    engine.expand(4)
    # every former frontier node now has children
    for node in engine.forest.nodes():
        if node.label in frontier_before and node.depth == 2:
            assert node.children


def test_unguarded_mode_matches_scan():
    """Non-fully-bound rules (require_guarded=False) join through the live
    label index and predicate subscriptions; the fixpoint is unchanged."""
    program_text = """
    p(X), q(Y) -> r(X).
    seed(X) -> q(X).
    p(a).
    p(b).
    seed(s).
    """
    scan = build(program_text, 4, saturation="scan", require_guarded=False)
    agenda = build(program_text, 4, saturation="agenda", require_guarded=False)
    assert forest_signature(agenda.forest) == forest_signature(scan.forest)
    assert any(a.predicate == "r" for a in agenda.atoms())


#: An unguarded rule whose side atom is *ground* under the guard match yet
#: derived only later: the guard host is processed before the side atom
#: exists, so the agenda must rewake it through a watched-atom waiter (the
#: predicate subscriptions cover only non-ground side atoms).  Fact order is
#: chosen so the default LIFO agenda processes ``g(a)`` before ``h(a)``
#: can possibly exist.
UNGUARDED_LATE_GROUND_SIDE = """
g(X), h(X), q(Y) -> r(X, Y).
s(X) -> h(X).
s(a).
q(b).
g(a).
"""


@pytest.mark.parametrize("seed", [None, 0, 3, 11])
def test_unguarded_ground_side_atom_arriving_late_is_not_lost(seed):
    """Regression (review finding): a ground-but-missing side atom of a
    non-fully-bound rule must register a waiter; without it ``r(a, b)`` is
    permanently lost under agenda orderings that visit ``g(a)`` early."""
    rng = random.Random(seed)
    order = None if seed is None else (lambda n: rng.randrange(n))
    scan = build(
        UNGUARDED_LATE_GROUND_SIDE, 4, saturation="scan", require_guarded=False
    )
    agenda = build(
        UNGUARDED_LATE_GROUND_SIDE,
        4,
        saturation="agenda",
        require_guarded=False,
        agenda_order=order,
    )
    assert forest_signature(agenda.forest) == forest_signature(scan.forest)
    assert any(a.predicate == "r" for a in agenda.atoms())


@pytest.mark.parametrize("saturation", ["agenda", "scan"])
def test_budget_exhaustion_is_mode_independent(saturation):
    program, database = parse_program(
        """
        next(X, Y) -> exists Z next(Y, Z).
        next(a, b).
        """
    )
    engine = GuardedChaseEngine(
        skolemize_program(program), database, max_nodes=4, saturation=saturation
    )
    with pytest.raises(GroundingError):
        engine.expand(40)


def test_head_constant_side_atoms_survive_certified_splicing():
    """Regression: a rule *head* can introduce a constant the splice root's
    domain never mentions (``p(X) -> q(c)``); a side atom over that constant
    (``probe(c)``) present in one database but not another must not be lost
    when a segment recorded without it is spliced — the rule constants are
    part of the segment-key context exactly for this."""
    program, _ = parse_program(
        """
        e(X) -> exists Z p(Z).
        p(X) -> q(c).
        q(Y), probe(Y) -> hit(Y).
        """
    )
    from repro.chase.segments import SegmentStore

    skolemized = skolemize_program(program)
    for first, second in (
        (["e(a)"], ["e(a)", "probe(c)"]),
        (["e(a)", "probe(c)"], ["e(a)"]),
    ):
        store = SegmentStore("regression")
        from repro.lang.parser import parse_atom

        GuardedChaseEngine(
            skolemized, [parse_atom(t) for t in first], segment_cache=store
        ).expand(5)
        cached = GuardedChaseEngine(
            skolemized, [parse_atom(t) for t in second], segment_cache=store
        )
        cached.expand(5)
        reference = GuardedChaseEngine(skolemized, [parse_atom(t) for t in second])
        reference.expand(5)
        assert forest_signature(cached.forest) == forest_signature(reference.forest)


def test_scan_mode_is_exposed_on_the_convenience_wrapper():
    from repro.chase.engine import chase_forest

    program, database = parse_program(LITERATURE)
    scan = chase_forest(skolemize_program(program), database, 5, saturation="scan")
    agenda = chase_forest(skolemize_program(program), database, 5)
    assert forest_signature(scan) == forest_signature(agenda)


def test_invalid_saturation_mode_is_rejected():
    program, database = parse_program(LITERATURE)
    with pytest.raises(ValueError):
        GuardedChaseEngine(skolemize_program(program), database, saturation="eager")
