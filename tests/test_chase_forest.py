"""Tests for the guarded chase forest data structure and engine
(:mod:`repro.chase.forest`, :mod:`repro.chase.engine`)."""

from __future__ import annotations

import pytest

from repro.exceptions import GroundingError, NotGuardedError
from repro.lang.atoms import Atom
from repro.lang.parser import parse_atom, parse_program
from repro.lang.program import Database, NormalProgram
from repro.lang.rules import NormalRule
from repro.lang.skolem import skolemize_program
from repro.lang.terms import Constant, FunctionTerm, Variable
from repro.chase.engine import GuardedChaseEngine, chase_forest
from repro.chase.forest import ChaseForest
from repro.core.engine import WellFoundedEngine


def literature_pieces():
    """Example 1 of the paper: conference papers, scientists and authorship."""
    program, database = parse_program(
        """
        conferencePaper(X) -> article(X).
        scientist(X) -> exists Y isAuthorOf(X, Y).
        isAuthorOf(X, Y) -> author(X).
        scientist(john).
        conferencePaper(pods13).
        """
    )
    return skolemize_program(program), database


class TestChaseForestStructure:
    def test_roots_and_children(self):
        forest = ChaseForest()
        root = forest.add_root(parse_atom("p(a)"))
        rule = NormalRule(parse_atom("q(a)"), (parse_atom("p(a)"),), ())
        child = forest.add_child(root.node_id, parse_atom("q(a)"), rule, level=1)
        assert root.is_root() and not child.is_root()
        assert child.depth == 1 and child.level == 1
        assert forest.parent(child.node_id) is root
        assert forest.children(root.node_id) == [child]
        assert forest.was_applied(root.node_id, rule)

    def test_label_indexes(self):
        forest = ChaseForest()
        forest.add_root(parse_atom("p(a)"))
        forest.add_root(parse_atom("p(b)"))
        assert forest.has_label(parse_atom("p(a)"))
        assert not forest.has_label(parse_atom("p(c)"))
        assert forest.labels() == {parse_atom("p(a)"), parse_atom("p(b)")}
        assert len(forest.nodes_with_label(parse_atom("p(a)"))) == 1

    def test_negative_atoms_collects_edge_rule_hypotheses(self):
        forest = ChaseForest()
        root = forest.add_root(parse_atom("p(a)"))
        rule = NormalRule(parse_atom("q(a)"), (parse_atom("p(a)"),), (parse_atom("blocked(a)"),))
        forest.add_child(root.node_id, parse_atom("q(a)"), rule, level=1)
        assert forest.negative_atoms() == {parse_atom("blocked(a)")}

    def test_path_and_subtree_queries(self):
        forest = ChaseForest()
        root = forest.add_root(parse_atom("p(a)"))
        rule1 = NormalRule(parse_atom("q(a)"), (parse_atom("p(a)"),), ())
        child = forest.add_child(root.node_id, parse_atom("q(a)"), rule1, level=1)
        rule2 = NormalRule(parse_atom("r(a)"), (parse_atom("q(a)"),), ())
        grandchild = forest.add_child(child.node_id, parse_atom("r(a)"), rule2, level=2)
        path = forest.path_to_root(grandchild.node_id)
        assert [n.label for n in path] == [parse_atom("r(a)"), parse_atom("q(a)"), parse_atom("p(a)")]
        assert forest.subtree_labels(root.node_id) == {
            parse_atom("p(a)"),
            parse_atom("q(a)"),
            parse_atom("r(a)"),
        }
        assert forest.max_depth() == 2
        assert forest.depth_of_atom(parse_atom("r(a)")) == 2
        assert forest.level_of_atom(parse_atom("nothing(a)")) is None

    def test_negative_only_atoms_have_no_level_or_depth(self):
        """Regression: atoms present only inside negative bodies label no node,
        so ``level_of_atom``/``depth_of_atom`` return ``None`` for them — they
        are negative hypotheses (``N(F)``), not derived atoms (documented
        contract of both methods)."""
        forest = ChaseForest()
        root = forest.add_root(parse_atom("p(a)"))
        rule = NormalRule(
            parse_atom("q(a)"), (parse_atom("p(a)"),), (parse_atom("blocked(a)"),)
        )
        forest.add_child(root.node_id, parse_atom("q(a)"), rule, level=1)
        blocked = parse_atom("blocked(a)")
        assert blocked in forest.negative_atoms()
        assert forest.level_of_atom(blocked) is None
        assert forest.depth_of_atom(blocked) is None
        # engine-built forests behave the same way
        program, database = parse_program(
            """
            p(X), not blocked(X) -> q(X).
            p(a).
            """
        )
        engine = GuardedChaseEngine(skolemize_program(program), database)
        engine.expand(3)
        assert parse_atom("blocked(a)") in engine.forest.negative_atoms()
        assert engine.forest.level_of_atom(parse_atom("blocked(a)")) is None
        assert engine.forest.depth_of_atom(parse_atom("blocked(a)")) is None

    def test_recompute_levels_assigns_canonical_stages(self):
        """Levels are the structural derivation stages after recomputation:
        a child created "late" (with an inflated round number) is restored to
        ``1 + max(parent level, side-atom levels)``."""
        forest = ChaseForest()
        root = forest.add_root(parse_atom("p(a)"))
        side = forest.add_root(parse_atom("s(a)"))
        rule1 = NormalRule(
            parse_atom("q(a)"), (parse_atom("p(a)"), parse_atom("s(a)")), ()
        )
        child = forest.add_child(root.node_id, parse_atom("q(a)"), rule1, level=7)
        rule2 = NormalRule(parse_atom("r(a)"), (parse_atom("q(a)"),), ())
        grandchild = forest.add_child(child.node_id, parse_atom("r(a)"), rule2, level=9)
        changed = forest.recompute_levels()
        assert changed == 2
        assert root.level == 0 and side.level == 0
        assert child.level == 1 and grandchild.level == 2
        # idempotent
        assert forest.recompute_levels() == 0


class TestGuardedChaseEngine:
    def test_literature_example_terminates_and_derives_expected_atoms(self):
        skolemized, database = literature_pieces()
        engine = GuardedChaseEngine(skolemized, database)
        engine.expand(5)
        labels = engine.atoms()
        assert parse_atom("article(pods13)") in labels
        assert parse_atom("author(john)") in labels
        # John authors a Skolem null.
        author_atoms = [a for a in labels if a.predicate == "isAuthorOf"]
        assert len(author_atoms) == 1
        assert isinstance(author_atoms[0].args[1], FunctionTerm)

    def test_depth_bound_limits_expansion(self):
        program, database = parse_program(
            """
            next(X, Y) -> exists Z next(Y, Z).
            next(a, b).
            """
        )
        skolemized = skolemize_program(program)
        shallow = GuardedChaseEngine(skolemized, database)
        shallow.expand(2)
        deep = GuardedChaseEngine(skolemized, database)
        deep.expand(6)
        assert len(deep.forest) > len(shallow.forest)
        assert shallow.forest.max_depth() <= 2
        assert deep.forest.max_depth() <= 6

    def test_incremental_expansion_continues_from_existing_forest(self):
        program, database = parse_program(
            """
            next(X, Y) -> exists Z next(Y, Z).
            next(a, b).
            """
        )
        engine = GuardedChaseEngine(skolemize_program(program), database)
        engine.expand(2)
        size_before = len(engine.forest)
        changed = engine.expand(4)
        assert changed and len(engine.forest) > size_before
        # shrinking the bound is a no-op
        assert engine.expand(3) is False

    def test_frontier_nodes_are_at_the_depth_bound(self):
        program, database = parse_program(
            """
            next(X, Y) -> exists Z next(Y, Z).
            next(a, b).
            """
        )
        engine = GuardedChaseEngine(skolemize_program(program), database)
        engine.expand(3)
        assert all(node.depth == 3 for node in engine.frontier_nodes())
        assert engine.frontier_nodes()

    def test_terminating_chase_has_empty_frontier_beyond_its_depth(self):
        skolemized, database = literature_pieces()
        engine = GuardedChaseEngine(skolemized, database)
        engine.expand(10)
        assert engine.frontier_nodes() == []

    def test_ground_rules_are_ground_instances_of_the_program(self):
        skolemized, database = literature_pieces()
        engine = GuardedChaseEngine(skolemized, database)
        engine.expand(4)
        for rule in engine.ground_rules():
            assert rule.is_ground()

    def test_unguarded_rule_is_rejected(self):
        unguarded = NormalProgram(
            [
                NormalRule(
                    Atom("r", (Variable("X"), Variable("Y"))),
                    (Atom("p", (Variable("X"),)), Atom("q", (Variable("Y"),))),
                    (),
                )
            ]
        )
        with pytest.raises(NotGuardedError):
            GuardedChaseEngine(unguarded, Database([parse_atom("p(a)")]))

    def test_node_budget_is_enforced(self):
        program, database = parse_program(
            """
            next(X, Y) -> exists Z next(Y, Z).
            next(a, b).
            """
        )
        engine = GuardedChaseEngine(skolemize_program(program), database, max_nodes=3)
        with pytest.raises(GroundingError):
            engine.expand(50)

    def test_chase_forest_convenience_wrapper(self):
        skolemized, database = literature_pieces()
        forest = chase_forest(skolemized, database, max_depth=4)
        assert forest.has_label(parse_atom("article(pods13)"))

    def test_multiple_nodes_can_share_a_label(self, paper_example_engine):
        # Example 6 of the paper: S(0) labels infinitely many nodes of F+(P);
        # in the materialised segment there must be more than one.
        forest = paper_example_engine.chase_forest()
        assert len(forest.nodes_with_label(parse_atom("s(0)"))) > 1

    def test_side_literals_of_path(self, paper_example_engine):
        forest = paper_example_engine.chase_forest()
        t_nodes = forest.nodes_with_label(parse_atom("t(0)"))
        assert t_nodes
        positive, negative = forest.side_literals_of_path(t_nodes[0].node_id)
        # the rule deriving t(0) carries the negative hypothesis s(0)
        assert parse_atom("s(0)") in negative


class TestForestChangeNotification:
    def test_listeners_fire_on_every_insertion(self):
        forest = ChaseForest()
        events: list[tuple[str, bool]] = []
        forest.add_listener(lambda node, is_new: events.append((str(node.label), is_new)))
        root = forest.add_root(parse_atom("p(a)"))
        rule = NormalRule(parse_atom("q(a)"), (parse_atom("p(a)"),), ())
        forest.add_child(root.node_id, parse_atom("q(a)"), rule, level=1)
        # a second node with an existing label reports is_new_label=False
        rule2 = NormalRule(parse_atom("q(a)"), (parse_atom("q(a)"),), ())
        forest.add_child(root.node_id + 1, parse_atom("q(a)"), rule2, level=2)
        assert events == [("p(a)", True), ("q(a)", True), ("q(a)", False)]


INFINITE_CHAIN = """
next(X, Y) -> exists Z next(Y, Z).
next(a, b).
"""


class TestBudgetFailureRetry:
    """Regression for the ROADMAP item surfaced by the PR 3 property suite:
    after ``expand`` raises :class:`GroundingError`, a retried ``model()``
    used to resume on the partially expanded forest and report
    ``converged=True`` because the no-op deepening steps trivially stabilise.
    The retry must re-raise instead — and genuinely resume (not restart) once
    the node budget is raised."""

    @pytest.mark.parametrize("saturation", ["agenda", "scan"])
    def test_retried_model_reraises_until_budget_is_raised(self, saturation):
        engine = WellFoundedEngine(
            INFINITE_CHAIN,
            max_nodes=5,
            max_depth=21,
            saturation=saturation,
            segment_cache=False,
        )
        with pytest.raises(GroundingError):
            engine.model()
        # the retry must not report a converged model on the partial forest
        with pytest.raises(GroundingError):
            engine.model()

    @pytest.mark.parametrize("saturation", ["agenda", "scan"])
    def test_raised_budget_resumes_to_the_mirror_schedule_model(self, saturation):
        """Raising the budget resumes to exactly the model of a fresh engine
        whose deepening *starts at the committed chase bound* — the schedule
        the resumed engine genuinely follows (the shallower views of the
        interrupted schedule are unrecoverable: the forest is already
        committed deeper, so this is the strongest exactness available)."""
        engine = WellFoundedEngine(
            INFINITE_CHAIN,
            max_nodes=5,
            max_depth=21,
            saturation=saturation,
            segment_cache=False,
        )
        with pytest.raises(GroundingError):
            engine.model()
        committed = engine._chase.depth_bound
        partial_nodes = len(engine._chase.forest)
        engine.max_nodes = 100_000
        model = engine.model()
        mirror = WellFoundedEngine(
            INFINITE_CHAIN,
            initial_depth=committed,
            max_depth=21,
            saturation=saturation,
            segment_cache=False,
        ).model()
        assert model.true_atoms() == mirror.true_atoms()
        assert model.false_atoms() == mirror.false_atoms()
        assert model.undefined_atoms() == mirror.undefined_atoms()
        assert model.converged == mirror.converged
        assert model.depth == mirror.depth
        # the resume continued from the partial forest rather than restarting
        assert partial_nodes <= len(engine._chase.forest)
        # and the values it shares with a fully fresh engine's segment agree
        fresh = WellFoundedEngine(
            INFINITE_CHAIN, max_depth=21, saturation=saturation, segment_cache=False
        ).model()
        for atom in fresh.segment_atoms() & model.segment_atoms():
            assert model.value(atom) == fresh.value(atom)

    def test_mid_schedule_resume_does_not_fake_convergence(self):
        """Regression: a budget failure *past the first deepening step* leaves
        the chase committed deeper than the schedule; a naive retry would
        compare the committed forest to itself and report ``converged=True``.
        The resumed schedule must fast-forward to the committed bound and keep
        gathering genuine depth-vs-depth evidence."""
        rotation = """
        p(X,Y) -> exists Z q(Y,Z).
        q(X,Y) -> exists Z r(Y,Z).
        r(X,Y) -> exists Z p(Y,Z).
        p(a,b).
        """
        fresh = WellFoundedEngine(rotation, max_depth=9, segment_cache=False).model()
        assert not fresh.converged  # the rotation never stabilises by depth 9
        tight = WellFoundedEngine(
            rotation, max_depth=9, max_nodes=4, segment_cache=False
        )
        with pytest.raises(GroundingError):
            tight.model()
        assert tight._chase.depth_bound > tight.initial_depth  # mid-schedule
        tight.max_nodes = 100_000
        resumed = tight.model()
        assert resumed.converged == fresh.converged
        assert resumed.depth == fresh.depth
        assert resumed.true_atoms() == fresh.true_atoms()
        assert resumed.false_atoms() == fresh.false_atoms()
        assert resumed.undefined_atoms() == fresh.undefined_atoms()

    def test_chase_engine_expand_is_resumable(self):
        """The chase layer itself resumes an interrupted saturation pass."""
        program, database = parse_program(INFINITE_CHAIN)
        skolemized = skolemize_program(program)
        engine = GuardedChaseEngine(skolemized, database, max_nodes=3)
        with pytest.raises(GroundingError):
            engine.expand(14)
        # same budget: a retry (even at a smaller requested depth) re-raises
        with pytest.raises(GroundingError):
            engine.expand(2)
        engine.max_nodes = 200
        engine.expand(2)  # resumes and finishes the committed depth bound
        reference = GuardedChaseEngine(skolemized, database)
        reference.expand(14)
        assert engine.forest.labels() == reference.forest.labels()
        assert frozenset(engine.forest.edge_rules()) == frozenset(
            reference.forest.edge_rules()
        )
