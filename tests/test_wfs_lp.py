"""Tests for the classical WFS of finite ground normal programs (:mod:`repro.lp.wfs`).

Covers the textbook behaviours the paper's Sec. 2.6 recalls: the win/move
game, stratified programs (total WFS equal to the perfect model), programs
with undefined atoms, and the equivalence of the unfounded-set construction
with the alternating fixpoint.
"""

from __future__ import annotations

import pytest

from repro.lang.atoms import Atom
from repro.lang.parser import parse_atom, parse_normal_program
from repro.lang.terms import Constant
from repro.lp.grounding import relevant_grounding
from repro.lp.interpretation import Interpretation
from repro.lp.wfs import (
    gelfond_lifschitz_reduct,
    least_model_positive,
    tp_operator,
    well_founded_model,
    well_founded_model_alternating,
    wp_operator,
)


def wfs_of(text):
    return well_founded_model(relevant_grounding(parse_normal_program(text)))


class TestOperators:
    def test_tp_fires_only_fully_satisfied_rules(self):
        program = relevant_grounding(parse_normal_program("p. p, not q -> r."))
        assert tp_operator(program, Interpretation.empty()) == {parse_atom("p")}
        decided = Interpretation([parse_atom("p")], [parse_atom("q")])
        assert parse_atom("r") in tp_operator(program, decided)

    def test_wp_combines_tp_and_unfounded(self):
        program = relevant_grounding(parse_normal_program("p. p, not q -> r."))
        result = wp_operator(program, Interpretation.empty())
        assert result.is_true(parse_atom("p"))
        assert result.is_false(parse_atom("q"))  # q has no rule

    def test_least_model_positive(self):
        program = relevant_grounding(parse_normal_program("p. p -> q. q -> r. s -> t."))
        assert least_model_positive(program) == {
            parse_atom("p"),
            parse_atom("q"),
            parse_atom("r"),
        }

    def test_gelfond_lifschitz_reduct(self):
        program = relevant_grounding(parse_normal_program("p. p, not q -> r."))
        kept = gelfond_lifschitz_reduct(program, set())
        assert any(rule.head == parse_atom("r") and rule.is_positive() for rule in kept)
        dropped = gelfond_lifschitz_reduct(program, {parse_atom("q")})
        assert all(rule.head != parse_atom("r") for rule in dropped)


class TestWellFoundedModel:
    def test_win_move_game(self, win_move_ground):
        model = well_founded_model(win_move_ground)
        win = lambda x: Atom("win", (Constant(x),))  # noqa: E731
        # d is a dead end: lost. c can move to the lost d: won.
        assert model.is_false(win("d"))
        assert model.is_true(win("c"))
        # a and b sit on a 2-cycle with an escape for b; both are undefined.
        assert model.is_undefined(win("a"))
        assert model.is_undefined(win("b"))
        assert not model.is_total()

    def test_stratified_program_is_total(self):
        model = wfs_of(
            """
            bird(tweety). bird(sam). penguin(sam).
            bird(X), not penguin(X) -> flies(X).
            """
        )
        assert model.is_total()
        assert model.is_true(parse_atom("flies(tweety)"))
        assert model.is_false(parse_atom("flies(sam)"))

    def test_even_loop_is_undefined(self):
        model = wfs_of("not q -> p. not p -> q.")
        assert model.is_undefined(parse_atom("p"))
        assert model.is_undefined(parse_atom("q"))

    def test_odd_loop_is_undefined_under_wfs(self):
        model = wfs_of("not p -> p.")
        assert model.is_undefined(parse_atom("p"))

    def test_default_negation_of_unsupported_atom(self):
        model = wfs_of("not q -> p.")
        assert model.is_true(parse_atom("p"))
        assert model.is_false(parse_atom("q"))

    def test_positive_cycle_is_false(self):
        model = wfs_of("q -> p. p -> q.")
        assert model.is_false(parse_atom("p")) and model.is_false(parse_atom("q"))

    def test_atoms_outside_the_universe_are_false(self):
        model = wfs_of("p.")
        assert model.is_false(parse_atom("nowhere(a)"))
        assert not model.is_true(parse_atom("nowhere(a)"))

    def test_model_views_are_consistent(self):
        model = wfs_of("p. not q -> r. not r -> s.")
        trues, falses, undefined = (
            model.true_atoms(),
            model.false_atoms(),
            model.undefined_atoms(),
        )
        assert trues | falses | undefined == model.universe()
        assert not (trues & falses)

    def test_holds_on_literals(self):
        from repro.lang.atoms import neg, pos

        model = wfs_of("p.")
        assert model.holds(pos(parse_atom("p")))
        assert model.holds(neg(parse_atom("q")))


class TestAlternatingFixpointAgreement:
    @pytest.mark.parametrize(
        "text",
        [
            "p. p, not q -> r.",
            "not q -> p. not p -> q.",
            "not p -> p.",
            "q -> p. p -> q. not p -> s.",
            """
            move(a, b). move(b, a). move(b, c). move(c, d).
            move(X, Y), not win(Y) -> win(X).
            """,
            """
            edge(a, b). edge(b, c). edge(c, a). node(a). node(b). node(c).
            edge(X, Y) -> reach(Y).
            node(X), not reach(X) -> isolated(X).
            """,
        ],
    )
    def test_both_constructions_agree(self, text):
        ground = relevant_grounding(parse_normal_program(text))
        via_unfounded = well_founded_model(ground)
        via_alternating = well_founded_model_alternating(ground)
        assert via_unfounded.true_atoms() == via_alternating.true_atoms()
        assert via_unfounded.false_atoms() == via_alternating.false_atoms()
