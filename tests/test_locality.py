"""Tests for the locality bound δ (:mod:`repro.core.locality`, Prop. 12)."""

from __future__ import annotations

from repro.lang.parser import parse_program, parse_query
from repro.lang.program import Schema
from repro.core.locality import delta_bound, query_depth_bound, type_count_bound


class TestDeltaBound:
    def test_formula_for_a_tiny_schema(self):
        # |R| = 1, w = 1: δ = 2 · 1 · 2^1 · 2^(1·2) = 2 · 2 · 4 = 16
        schema = Schema({"p": 1})
        assert type_count_bound(schema) == 1 * 2 * 2**2
        assert delta_bound(schema) == 2 * type_count_bound(schema)

    def test_monotone_in_schema_size_and_arity(self):
        small = delta_bound(Schema({"p": 1}))
        more_predicates = delta_bound(Schema({"p": 1, "q": 1}))
        higher_arity = delta_bound(Schema({"p": 2}))
        assert small < more_predicates
        assert small < higher_arity

    def test_accepts_a_program_directly(self):
        program, _ = parse_program("r(X, Y) -> exists Z r(Y, Z).")
        assert delta_bound(program) == delta_bound(Schema({"r": 2}))

    def test_bound_is_astronomical_for_the_paper_example(self):
        program, _ = parse_program(
            """
            r(X,Y,Z) -> exists W r(X,Z,W).
            r(X,Y,Z), not p(X,Y) -> q(Z).
            """
        )
        # w = 3, |R| = 3: the bound dwarfs any practical chase depth, which is
        # why the engine uses the type-repetition test instead.
        assert delta_bound(program) > 10**50


class TestQueryDepthBound:
    def test_scales_linearly_with_query_size(self):
        schema = Schema({"p": 1, "q": 1})
        single = query_depth_bound(parse_query("? p(X)"), schema)
        double = query_depth_bound(parse_query("? p(X), not q(X)"), schema)
        assert double == 2 * single

    def test_positive_query_bound(self):
        schema = Schema({"p": 1})
        assert query_depth_bound(parse_query("? p(X)"), schema) == delta_bound(schema)
