"""Tests for Fitting's operator / the Kripke–Kleene semantics (:mod:`repro.lp.fitting`),
including the classical containment Kripke–Kleene ⊆ WFS."""

from __future__ import annotations

from hypothesis import given, settings

from repro.lang.parser import parse_atom, parse_normal_program
from repro.lp.fitting import fitting_operator, kripke_kleene_model
from repro.lp.grounding import relevant_grounding
from repro.lp.interpretation import Interpretation
from repro.lp.wfs import well_founded_model

from strategies import ground_programs


def ground(text):
    """Ground a *propositional* program verbatim (keep underivable rules too).

    Like the unfounded-set tests, the Fitting/Kripke–Kleene tests reason about
    rules whose bodies are not derivable, which relevant grounding would drop.
    """
    from repro.lp.grounding import GroundProgram

    program = parse_normal_program(text)
    if any(not rule.is_ground() for rule in program):
        return relevant_grounding(program)
    ground_program = GroundProgram()
    for rule in program:
        ground_program.add(rule)
    return ground_program


class TestFittingOperator:
    def test_facts_become_true_immediately(self):
        program = ground("p. p -> q.")
        result = fitting_operator(program, Interpretation.empty())
        assert result.is_true(parse_atom("p"))
        assert result.is_undefined(parse_atom("q"))

    def test_atoms_with_all_bodies_blocked_become_false(self):
        program = ground("p. q, not p -> r.")
        decided = fitting_operator(program, Interpretation([parse_atom("p")], [parse_atom("q")]))
        assert decided.is_false(parse_atom("r"))

    def test_atom_with_no_rule_becomes_false(self):
        program = ground("q -> p.")
        result = fitting_operator(program, Interpretation.empty())
        assert result.is_false(parse_atom("q"))


class TestKripkeKleeneModel:
    def test_stratified_example(self):
        model = kripke_kleene_model(
            ground("bird(tweety). bird(X), not penguin(X) -> flies(X).")
        )
        assert model.is_true(parse_atom("flies(tweety)"))
        assert model.is_false(parse_atom("penguin(tweety)"))

    def test_positive_loop_stays_undefined_under_kripke_kleene_but_not_wfs(self):
        # The canonical separating example: p <- p.
        program = ground("p -> p.")
        assert kripke_kleene_model(program).is_undefined(parse_atom("p"))
        assert well_founded_model(program).is_false(parse_atom("p"))

    def test_even_negative_loop_is_undefined_under_both(self):
        program = ground("not q -> p. not p -> q.")
        kk = kripke_kleene_model(program)
        wfs = well_founded_model(program)
        for name in ("p", "q"):
            assert kk.is_undefined(parse_atom(name))
            assert wfs.is_undefined(parse_atom(name))

    @settings(max_examples=50, deadline=None)
    @given(ground_programs())
    def test_kripke_kleene_is_contained_in_the_wfs(self, program):
        kk = kripke_kleene_model(program)
        wfs = well_founded_model(program)
        assert kk.true_atoms() <= wfs.true_atoms()
        assert kk.false_atoms() <= wfs.false_atoms()
