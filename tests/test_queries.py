"""Unit tests for :mod:`repro.lang.queries` (CQ/BCQ/NBCQ evaluation)."""

from __future__ import annotations

import pytest

from repro.exceptions import IllFormedRuleError
from repro.lang.atoms import Atom, neg, pos
from repro.lang.queries import ConjunctiveQuery, NormalBCQ, evaluate_query, query_holds
from repro.lang.terms import Constant, FunctionTerm, Variable
from repro.lp.interpretation import Interpretation

X, Y = Variable("X"), Variable("Y")
a, b, c = Constant("a"), Constant("b"), Constant("c")

FACTS = {
    Atom("edge", (a, b)),
    Atom("edge", (b, c)),
    Atom("colour", (a, Constant("red"))),
}


class TestConjunctiveQuery:
    def test_boolean_query_detection(self):
        query = ConjunctiveQuery((Atom("edge", (X, Y)),))
        assert query.is_boolean()
        assert not ConjunctiveQuery((Atom("edge", (X, Y)),), (X,)).is_boolean()

    def test_answer_variables_must_occur_in_body(self):
        with pytest.raises(IllFormedRuleError):
            ConjunctiveQuery((Atom("edge", (X, Y)),), (Variable("Z"),))

    def test_empty_query_is_rejected(self):
        with pytest.raises(IllFormedRuleError):
            ConjunctiveQuery(())

    def test_evaluate_boolean_query(self):
        query = ConjunctiveQuery((Atom("edge", (X, Y)), Atom("edge", (Y, Variable("Z")))))
        assert evaluate_query(query, FACTS) == {()}

    def test_evaluate_with_answer_variables(self):
        query = ConjunctiveQuery((Atom("edge", (X, Y)),), (X, Y))
        assert evaluate_query(query, FACTS) == {(a, b), (b, c)}

    def test_join_queries(self):
        query = ConjunctiveQuery(
            (Atom("edge", (X, Y)), Atom("edge", (Y, Variable("Z")))), (X, Variable("Z"))
        )
        assert evaluate_query(query, FACTS) == {(a, c)}

    def test_constants_in_queries(self):
        query = ConjunctiveQuery((Atom("edge", (a, X)),), (X,))
        assert evaluate_query(query, FACTS) == {(b,)}

    def test_no_match_gives_empty_answer_set(self):
        query = ConjunctiveQuery((Atom("edge", (c, X)),), (X,))
        assert evaluate_query(query, FACTS) == set()


class TestNormalBCQ:
    def test_requires_a_positive_atom(self):
        with pytest.raises(IllFormedRuleError):
            NormalBCQ((), (Atom("p", (a,)),))

    def test_from_literals_and_size(self):
        query = NormalBCQ.from_literals([pos(Atom("p", (X,))), neg(Atom("q", (X,)))])
        assert query.size() == 2
        assert not query.is_positive()
        assert query.predicates() == {"p", "q"}

    def test_satisfaction_against_a_plain_set_is_closed_world(self):
        query = NormalBCQ((Atom("edge", (X, Y)),), (Atom("edge", (Y, X)),))
        # edge(a,b) holds and edge(b,a) is absent => the NBCQ holds.
        assert query_holds(query, FACTS)

    def test_negative_atom_blocking(self):
        query = NormalBCQ((Atom("edge", (a, X)),), (Atom("edge", (X, c)),))
        # the only candidate X=b, but edge(b,c) is present, so the query fails
        assert not query_holds(query, FACTS)

    def test_three_valued_semantics_requires_falsity_not_just_non_truth(self):
        interpretation = Interpretation(
            true_atoms={Atom("p", (a,))},
            false_atoms=set(),
        )
        query = NormalBCQ((Atom("p", (X,)),), (Atom("q", (X,)),))
        # q(a) is *undefined* (not false), so the NBCQ must NOT hold.
        assert not query_holds(query, interpretation)

        decided = Interpretation(
            true_atoms={Atom("p", (a,))},
            false_atoms={Atom("q", (a,))},
        )
        assert query_holds(query, decided)

    def test_negative_variable_must_be_bound_by_positive_part(self):
        query = NormalBCQ((Atom("p", (X,)),), (Atom("q", (Y,)),))
        with pytest.raises(IllFormedRuleError):
            query_holds(query, {Atom("p", (a,))})

    def test_query_holds_accepts_plain_cq(self):
        query = ConjunctiveQuery((Atom("edge", (X, Y)),))
        assert query_holds(query, FACTS)

    def test_str_forms(self):
        query = NormalBCQ((Atom("p", (X,)),), (Atom("q", (X,)),))
        assert str(query) == "? p(X), not q(X)"
