"""Differential tests: every grounding backend is indistinguishable.

The per-candidate tuple matcher (:class:`repro.lp.grounding.SemiNaiveGrounder`)
is the retained oracle; the columnar hash-join backend and its sqlite variant
(:mod:`repro.lp.columnar`) must produce *set-identical* ground programs — the
same rules modulo insertion order, the same candidate atoms, the same
saturation/budget behaviour — and therefore identical well-founded models,
query answers and CLI output.  The suites here pin that equivalence on the
named workloads; :mod:`test_columnar_properties` does the same over random
programs.
"""

from __future__ import annotations

import pytest

from repro.bench.generators import (
    chain_reachability_workload,
    large_edb_reachability,
    reachability_program,
    win_move_game,
)
from repro.cli import main
from repro.core.engine import WellFoundedEngine
from repro.exceptions import GroundingError
from repro.lang.atoms import Atom, Literal
from repro.lang.program import NormalProgram
from repro.lang.skolem import skolemize_program
from repro.lang.rules import NormalRule
from repro.lang.terms import Constant, FunctionTerm, Variable
from repro.lp.columnar import BACKENDS, ColumnarGrounder, make_grounder
from repro.lp.grounding import SemiNaiveGrounder, relevant_grounding
from repro.lp.wfs import well_founded_model
from repro.rewrite.magic import ground_magic, rewrite_for_query

X, Y = Variable("X"), Variable("Y")
NEW_BACKENDS = [b for b in BACKENDS if b != "tuple"]


def assert_backends_agree(program, extra_atoms=()):
    """Ground with every backend; pin rule sets, atoms and models identical."""
    grounders = {}
    for backend in BACKENDS:
        grounders[backend] = make_grounder(program, extra_atoms, backend=backend)
        grounders[backend].run()
    oracle = grounders["tuple"]
    oracle_rules = set(oracle.ground)
    oracle_model = well_founded_model(oracle.ground)
    for backend in NEW_BACKENDS:
        ground = grounders[backend].ground
        assert set(ground) == oracle_rules, backend
        assert ground.atoms() == oracle.ground.atoms(), backend
        assert grounders[backend].saturated == oracle.saturated, backend
        assert well_founded_model(ground) == oracle_model, backend
    return grounders


# ---------------------------------------------------------------------------
# Named workloads
# ---------------------------------------------------------------------------


def test_backends_agree_on_reachability():
    assert_backends_agree(reachability_program(24, seed=3))


def test_backends_agree_on_win_move():
    assert_backends_agree(win_move_game(30, seed=7))


def test_backends_agree_on_large_edb_workload():
    program, edb = large_edb_reachability(600, core_size=16, seed=1)
    assert len(edb) == 600
    grounders = assert_backends_agree(program, edb)
    # the reachable core is bounded by construction: exactly the chain derives
    reach = {
        a for a in grounders["tuple"].ground.head_atoms() if a.predicate == "reach"
    }
    assert len(reach) == 16


def test_backends_agree_on_skolem_heads():
    """Function terms in heads (the skolemized chase shape) intern correctly."""
    program = NormalProgram(
        [
            NormalRule(Atom("p", (Constant("a"),))),
            NormalRule(
                Atom("q", (FunctionTerm("f", (X,)),)), (Atom("p", (X,)),), ()
            ),
            NormalRule(Atom("r", (X,)), (Atom("q", (X,)),), (Atom("p", (X,)),)),
        ]
    )
    grounders = assert_backends_agree(program)
    atoms = grounders["columnar"].ground.atoms()
    assert Atom("q", (FunctionTerm("f", (Constant("a"),)),)) in atoms


def test_backends_agree_on_destructuring_bodies():
    """A non-variable body argument forces the per-rule tuple fallback."""
    pattern = Atom("q", (FunctionTerm("f", (X,)),))
    program = NormalProgram(
        [
            NormalRule(Atom("q", (FunctionTerm("f", (Constant("a"),)),))),
            NormalRule(Atom("r", (X,)), (pattern,), ()),
        ]
    )
    grounder = ColumnarGrounder(program)
    assert any(c.fallback for c in grounder._compiled)
    assert_backends_agree(program)


def test_backends_agree_on_repeated_variables_and_nullary():
    program = NormalProgram(
        [
            NormalRule(Atom("e", (Constant("a"), Constant("a")))),
            NormalRule(Atom("e", (Constant("a"), Constant("b")))),
            NormalRule(Atom("loop", (X,)), (Atom("e", (X, X)),), ()),
            NormalRule(Atom("any", ()), (Atom("loop", (X,)),), ()),
        ]
    )
    grounders = assert_backends_agree(program)
    assert Atom("any", ()) in grounders["columnar"].ground.atoms()


def test_backends_agree_on_mixed_arity_predicate():
    """The same predicate at different arities must not cross-join."""
    program = NormalProgram(
        [
            NormalRule(Atom("p", (Constant("a"),))),
            NormalRule(Atom("p", (Constant("a"), Constant("b")))),
            NormalRule(Atom("r", (X,)), (Atom("p", (X,)),), ()),
            NormalRule(Atom("s", (X, Y)), (Atom("p", (X, Y)),), ()),
        ]
    )
    grounders = assert_backends_agree(program)
    atoms = grounders["columnar"].ground.atoms()
    assert Atom("r", (Constant("a"),)) in atoms
    assert Atom("s", (Constant("a"), Constant("b"))) in atoms
    assert Atom("r", (Constant("b"),)) not in atoms


def test_backends_agree_on_empty_program():
    for backend in BACKENDS:
        grounder = make_grounder(NormalProgram([]), backend=backend)
        assert grounder.run()
        assert len(grounder.ground) == 0


# ---------------------------------------------------------------------------
# Budgets and resumability
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", NEW_BACKENDS)
def test_budget_raise_and_resume_matches_tuple(backend):
    """max_rounds is cumulative across calls and raises like the oracle."""
    program = NormalProgram(
        [
            NormalRule(Atom("p", (Constant("a"),))),
            NormalRule(Atom("p", (FunctionTerm("f", (X,)),)), (Atom("p", (X,)),), ()),
        ]
    )
    oracle = SemiNaiveGrounder(program)
    grounder = make_grounder(program, backend=backend)
    assert not grounder.run(max_rounds=3, raise_on_budget=False)
    assert not oracle.run(max_rounds=3, raise_on_budget=False)
    assert set(grounder.ground) == set(oracle.ground)
    assert grounder.rounds == oracle.rounds == 3
    # resuming with the same cumulative budget makes no progress but raises
    with pytest.raises(GroundingError):
        grounder.run(max_rounds=3)
    # a raised budget resumes from the partial state
    assert not grounder.run(max_rounds=5, raise_on_budget=False)
    assert not oracle.run(max_rounds=5, raise_on_budget=False)
    assert set(grounder.ground) == set(oracle.ground)
    assert grounder.delta_rules() == oracle.delta_rules()


@pytest.mark.parametrize("backend", NEW_BACKENDS)
def test_atom_budget_raises(backend):
    program = NormalProgram(
        [
            NormalRule(Atom("p", (Constant("a"),))),
            NormalRule(Atom("p", (FunctionTerm("f", (X,)),)), (Atom("p", (X,)),), ()),
        ]
    )
    with pytest.raises(GroundingError):
        make_grounder(program, backend=backend).run(max_atoms=4)


@pytest.mark.parametrize("backend", NEW_BACKENDS)
def test_non_ground_extra_atom_rejected(backend):
    """The columnar backends validate candidate atoms eagerly."""
    with pytest.raises(GroundingError):
        make_grounder(NormalProgram([]), [Atom("p", (X,))], backend=backend)


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        make_grounder(NormalProgram([]), backend="pandas")
    with pytest.raises(ValueError):
        relevant_grounding(NormalProgram([]), backend="pandas")


# ---------------------------------------------------------------------------
# Magic-sets path: the magic guard acts as a semi-join filter
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", NEW_BACKENDS)
def test_ground_magic_agrees_across_backends(backend):
    program, database = chain_reachability_workload(3, 6)
    rules = skolemize_program(program).rules()
    plan = rewrite_for_query(rules, [Literal(Atom("reach", (Constant("c0_6"),)), True)])
    oracle = ground_magic(plan, database, backend="tuple")
    grounding = ground_magic(plan, database, backend=backend)
    assert set(grounding.ground) == set(oracle.ground)
    assert grounding.ground.atoms() == oracle.ground.atoms()


# ---------------------------------------------------------------------------
# Engine and CLI threading
# ---------------------------------------------------------------------------


QUERIES = ["? reach(c0_6)", "? reach(X)", "? node(c1_6), not reach(c1_6)"]


@pytest.mark.parametrize("backend", NEW_BACKENDS)
def test_engine_answers_and_stats_across_backends(backend):
    program, database = chain_reachability_workload(2, 6)
    oracle = WellFoundedEngine(program, database, backend="tuple")
    engine = WellFoundedEngine(program, database, backend=backend)
    assert engine.backend == backend
    for rewrite in (False, True):
        for query in QUERIES:
            assert engine.holds(query, rewrite=rewrite) == oracle.holds(
                query, rewrite=rewrite
            ), (query, rewrite)
        assert engine.answer("? reach(X)", rewrite=rewrite) == oracle.answer(
            "? reach(X)", rewrite=rewrite
        )
    assert engine.last_query_stats["backend"] == backend
    assert oracle.last_query_stats["backend"] == "tuple"


def test_engine_rejects_unknown_backend():
    program, database = chain_reachability_workload(1, 2)
    with pytest.raises(ValueError):
        WellFoundedEngine(program, database, backend="pandas")


@pytest.mark.parametrize("backend", BACKENDS)
def test_cli_backend_flag(tmp_path, capsys, backend):
    source = tmp_path / "chains.dlp"
    lines = [
        "source(X) -> reach(X).",
        "edge(X, Y), reach(X) -> reach(Y).",
        "node(X), not reach(X) -> unreachable(X).",
    ]
    for chain in range(2):
        lines.append(f"source(c{chain}_0).")
        for i in range(4):
            lines.append(f"edge(c{chain}_{i}, c{chain}_{i + 1}).")
        for i in range(5):
            lines.append(f"node(c{chain}_{i}).")
    source.write_text("\n".join(lines) + "\n")
    exit_code = main(
        [
            str(source),
            "--backend",
            backend,
            "--rewrite",
            "--query",
            "? reach(c0_4)",
            "--query",
            "? unreachable(c0_4)",
        ]
    )
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "? reach(c0_4) : yes" in captured
    assert "? unreachable(c0_4) : no" in captured
