"""Tests for the DL-Lite → guarded normal Datalog± translation (:mod:`repro.dl.translate`)."""

from __future__ import annotations

from repro.lang.atoms import Atom
from repro.lang.terms import Constant, Variable
from repro.dl.syntax import Ontology, Role
from repro.dl.translate import (
    concept_predicate,
    exists_predicate,
    role_predicate,
    translate_abox,
    translate_ontology,
    translate_tbox,
)

X, Y = Variable("X"), Variable("Y")


def rules_by_head(program):
    index = {}
    for ntgd in program:
        index.setdefault(ntgd.head.predicate, []).append(ntgd)
    return index


class TestPredicateNaming:
    def test_concept_and_role_names_are_lower_camel_cased(self):
        assert concept_predicate("Person") == "person"
        assert role_predicate(Role("EmployeeID")) == "employeeID"

    def test_exists_predicates_distinguish_direction(self):
        assert exists_predicate(Role("R")) == "ex_r"
        assert exists_predicate(Role("R", True)) == "ex_r_inv"


class TestAxiomTranslation:
    def test_atomic_inclusion(self):
        ontology = Ontology()
        ontology.subclass("ConferencePaper", "Article")
        program = translate_tbox(ontology.tbox)
        rule = list(program)[0]
        assert rule.body_pos == (Atom("conferencePaper", (X,)),)
        assert rule.head == Atom("article", (X,))

    def test_existential_rhs_introduces_an_existential_variable(self):
        ontology = Ontology()
        ontology.subclass("Scientist", "exists IsAuthorOf")
        rule = list(translate_tbox(ontology.tbox))[0]
        assert rule.existential_variables() == {Y}
        assert rule.head.predicate == "isAuthorOf"

    def test_inverse_existential_rhs_swaps_argument_positions(self):
        ontology = Ontology()
        ontology.subclass("Award", "exists WonBy-")
        rule = list(translate_tbox(ontology.tbox))[0]
        assert rule.head == Atom("wonBy", (Y, X))

    def test_existential_lhs_uses_the_role_atom_as_guard(self):
        ontology = Ontology()
        ontology.subclass("exists Advises-", "Advised")
        rule = list(translate_tbox(ontology.tbox))[0]
        assert rule.head == Atom("advised", (X,))
        assert rule.body_pos[0].predicate == "advises"
        assert rule.is_guarded()

    def test_negated_existential_lhs_goes_through_an_auxiliary_predicate(self):
        ontology = Ontology()
        ontology.subclass(["Person", ("not", "exists EmployeeID")], "JobSeeker")
        program = translate_tbox(ontology.tbox)
        index = rules_by_head(program)
        assert "ex_employeeID" in index  # the auxiliary definition
        main_rule = index["jobSeeker"][0]
        assert Atom("ex_employeeID", (X,)) in main_rule.body_neg

    def test_role_inclusions(self):
        ontology = Ontology()
        ontology.subrole("Advises", "Mentors")
        ontology.subrole("ParentOf", "ChildOf-")
        program = translate_tbox(ontology.tbox)
        heads = {rule.head for rule in program}
        assert Atom("mentors", (X, Y)) in heads
        assert Atom("childOf", (Y, X)) in heads

    def test_example_2_translation_is_guarded_and_complete(self):
        ontology = Ontology()
        ontology.subclass(["Person", "Employed", ("not", "exists JobSeekerID")],
                          "exists EmployeeID")
        ontology.subclass(["Person", ("not", "Employed"), ("not", "exists EmployeeID")],
                          "exists JobSeekerID")
        ontology.subclass(["exists EmployeeID-", ("not", "exists JobSeekerID-")], "ValidID")
        program = translate_tbox(ontology.tbox)
        assert program.is_guarded()
        assert not program.is_positive()
        # 3 axiom rules + 3 auxiliary definitions (ex_jobSeekerID, ex_employeeID,
        # ex_jobSeekerID_inv)
        assert len(program) == 6


class TestAboxTranslation:
    def test_assertions_become_facts(self):
        ontology = Ontology()
        ontology.abox.assert_concept("Person", "a")
        ontology.abox.assert_role("EmployeeID", "a", "id1")
        database = translate_abox(ontology.abox)
        assert Atom("person", (Constant("a"),)) in database
        assert Atom("employeeID", (Constant("a"), Constant("id1"))) in database

    def test_translate_ontology_returns_both_pieces(self):
        ontology = Ontology()
        ontology.subclass("Person", "exists Knows")
        ontology.abox.assert_concept("Person", "a")
        program, database = translate_ontology(ontology)
        assert len(program) == 1 and len(database) == 1
        assert program.is_guarded()
