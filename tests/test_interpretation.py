"""Unit tests for three-valued interpretations (:mod:`repro.lp.interpretation`)."""

from __future__ import annotations

import pytest

from repro.exceptions import InconsistentInterpretationError
from repro.lang.atoms import Atom, neg, pos
from repro.lang.terms import Constant
from repro.lp.interpretation import Interpretation, TruthValue

a, b, c = (Atom("p", (Constant(x),)) for x in "abc")


class TestConstruction:
    def test_empty_interpretation_leaves_everything_undefined(self):
        empty = Interpretation.empty()
        assert empty.is_undefined(a) and not empty.is_true(a) and not empty.is_false(a)
        assert len(empty) == 0

    def test_inconsistent_construction_is_rejected(self):
        with pytest.raises(InconsistentInterpretationError):
            Interpretation([a], [a])

    def test_from_literals(self):
        interp = Interpretation.from_literals([pos(a), neg(b)])
        assert interp.is_true(a) and interp.is_false(b) and interp.is_undefined(c)

    def test_copy_is_independent(self):
        interp = Interpretation([a])
        clone = interp.copy()
        clone.add_true(b)
        assert interp.is_undefined(b) and clone.is_true(b)


class TestMembership:
    def test_truth_values(self):
        interp = Interpretation([a], [b])
        assert interp.value(a) == TruthValue.TRUE
        assert interp.value(b) == TruthValue.FALSE
        assert interp.value(c) == TruthValue.UNDEFINED

    def test_holds_on_literals(self):
        interp = Interpretation([a], [b])
        assert interp.holds(pos(a)) and interp.holds(neg(b))
        assert not interp.holds(neg(a)) and not interp.holds(pos(b))
        assert not interp.holds(pos(c)) and not interp.holds(neg(c))

    def test_contains_uses_literal_satisfaction(self):
        interp = Interpretation([a], [b])
        assert pos(a) in interp and neg(b) in interp and pos(c) not in interp


class TestMutationAndAlgebra:
    def test_add_true_then_false_conflicts(self):
        interp = Interpretation()
        interp.add_true(a)
        with pytest.raises(InconsistentInterpretationError):
            interp.add_false(a)

    def test_add_literal(self):
        interp = Interpretation()
        interp.add_literal(neg(a))
        assert interp.is_false(a)

    def test_union_and_subset(self):
        small = Interpretation([a])
        large = Interpretation([a], [b])
        assert small.issubset(large) and small <= large
        assert not large.issubset(small)
        union = small.union(Interpretation([], [b]))
        assert union == large

    def test_union_conflict_is_rejected(self):
        with pytest.raises(InconsistentInterpretationError):
            Interpretation([a]).union(Interpretation([], [a]))

    def test_equality_and_hash(self):
        assert Interpretation([a], [b]) == Interpretation([a], [b])
        assert Interpretation([a]) != Interpretation([b])
        assert hash(Interpretation([a])) == hash(Interpretation([a]))

    def test_restriction_and_totality(self):
        interp = Interpretation([a], [b])
        restricted = interp.restricted_to([a, c])
        assert restricted.is_true(a) and restricted.is_undefined(b)
        assert interp.is_total_on([a, b])
        assert not interp.is_total_on([a, b, c])

    def test_literal_iteration(self):
        interp = Interpretation([a], [b])
        assert set(interp.literals()) == {pos(a), neg(b)}
        assert interp.defined_atoms() == {a, b}
