"""General behaviour of :class:`repro.core.engine.WellFoundedEngine` beyond the
paper's running example: input handling, coincidence with the classical LP
WFS on existential-free programs, convergence flags and options."""

from __future__ import annotations

import pytest

from repro.exceptions import ConvergenceError, NotGuardedError
from repro.lang.atoms import Atom
from repro.lang.parser import parse_atom, parse_program, parse_query
from repro.lang.program import Database
from repro.lang.terms import Constant
from repro.lp.grounding import relevant_grounding
from repro.lp.wfs import well_founded_model
from repro.core.engine import WellFoundedEngine
from repro.bench.generators import win_move_datalog_pm, win_move_game


class TestInputHandling:
    def test_text_facts_merge_with_explicit_database(self):
        engine = WellFoundedEngine(
            "scientist(X) -> exists Y isAuthorOf(X, Y).\nscientist(john).",
            Database([parse_atom("scientist(mary)")]),
        )
        assert engine.holds("? isAuthorOf(john, Y)")
        assert engine.holds("? isAuthorOf(mary, Y)")

    def test_database_may_be_text_or_iterable(self):
        program, _ = parse_program("scientist(X) -> exists Y isAuthorOf(X, Y).")
        by_text = WellFoundedEngine(program, "scientist(john).")
        by_iterable = WellFoundedEngine(program, [parse_atom("scientist(john)")])
        assert by_text.holds("? isAuthorOf(john, Y)")
        assert by_iterable.holds("? isAuthorOf(john, Y)")

    def test_unguarded_program_is_rejected_by_default(self):
        text = "p(X), q(Y) -> related(X, Y).\np(a). q(b)."
        with pytest.raises(NotGuardedError):
            WellFoundedEngine(text)

    def test_guard_check_can_be_disabled_for_experiments(self):
        text = "p(X), q(Y) -> related(X, Y).\np(a). q(b)."
        engine = WellFoundedEngine(text, require_guarded=False)
        assert engine.holds("? related(a, b)")

    def test_answer_rejects_queries_with_negation(self):
        engine = WellFoundedEngine("p(X) -> q(X).\np(a).")
        with pytest.raises(ValueError):
            engine.answer("? q(X), not p(X)")


class TestCoincidenceWithClassicalWfs:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_win_move_game_agrees_with_lp_substrate(self, seed):
        size = 25
        lp_model = well_founded_model(relevant_grounding(win_move_game(size, seed=seed)))
        program, database = win_move_datalog_pm(size, seed=seed)
        engine = WellFoundedEngine(program, database)
        model = engine.model()
        win_atoms = {a for a in lp_model.universe() if a.predicate == "win"}
        for atom in win_atoms:
            assert lp_model.is_true(atom) == model.is_true(atom), atom
            assert lp_model.is_false(atom) == model.is_false(atom), atom

    def test_datalog_program_without_negation_is_just_the_least_model(self):
        engine = WellFoundedEngine(
            """
            edge(X, Y) -> path(X, Y).
            path(X, Y), edge(Y, Z) -> path(X, Z).
            edge(a, b). edge(b, c). edge(c, d).
            """,
            require_guarded=False,
        )
        assert engine.holds("? path(a, d)")
        assert not engine.holds("? path(d, a)")
        assert engine.model().converged

    def test_stratified_negation_behaves_classically(self):
        engine = WellFoundedEngine(
            """
            bird(X), not penguin(X) -> flies(X).
            bird(tweety). bird(sam). penguin(sam).
            """
        )
        assert engine.holds("? flies(tweety)")
        assert not engine.holds("? flies(sam)")
        assert engine.holds("? bird(sam), not flies(sam)")


class TestConvergenceControls:
    def test_non_convergence_is_flagged_not_raised_by_default(self):
        engine = WellFoundedEngine(
            "next(X, Y) -> exists Z next(Y, Z).\nnext(a, b).",
            initial_depth=2,
            depth_step=1,
            max_depth=3,
        )
        # The chain program needs at least two rounds at the same frontier shape;
        # with such a tiny budget the engine reports non-convergence gracefully.
        model = engine.model()
        assert model.depth == 3
        assert isinstance(model.converged, bool)

    def test_strict_mode_raises_on_non_convergence(self):
        with pytest.raises(ConvergenceError):
            WellFoundedEngine(
                "next(X, Y), not stop(X) -> exists Z next(Y, Z).\nnext(a, b).",
                initial_depth=1,
                depth_step=1,
                max_depth=1,
                strict=True,
            ).model()

    def test_convergence_error_carries_the_partial_model(self):
        try:
            WellFoundedEngine(
                "next(X, Y), not stop(X) -> exists Z next(Y, Z).\nnext(a, b).",
                initial_depth=1,
                depth_step=1,
                max_depth=1,
                strict=True,
            ).model()
        except ConvergenceError as error:
            assert error.partial_model is not None
            assert error.partial_model.is_true(parse_atom("next(a, b)"))
        else:  # pragma: no cover - the call must raise
            pytest.fail("expected ConvergenceError")

    def test_model_is_cached(self):
        engine = WellFoundedEngine("p(X) -> q(X).\np(a).")
        assert engine.model() is engine.model()

    def test_terminating_chase_converges_at_initial_depth(self):
        engine = WellFoundedEngine(
            "conferencePaper(X) -> article(X).\nconferencePaper(pods13)."
        )
        model = engine.model()
        assert model.converged
        assert model.is_true(parse_atom("article(pods13)"))


class TestLocalityHelpers:
    def test_delta_bound_for_a_two_predicate_unary_schema(self):
        # |R| = 2, w = 1: δ = 2 · 2 · (2·1)^1 · 2^(2·2) = 128.
        engine = WellFoundedEngine("p(X) -> q(X).\np(a).")
        assert engine.delta() == 128

    def test_query_depth_bound_scales_with_query_size(self):
        engine = WellFoundedEngine("p(X) -> q(X).\np(a).")
        small = engine.query_depth_bound("? q(X)")
        large = engine.query_depth_bound("? q(X), p(X), not r(X)")
        assert large == 3 * small
