"""Executable documentation: README/docs code snippets run, links resolve.

Every fenced ``python`` code block in ``README.md`` and ``docs/*.md`` is
executed (blocks within one file share a namespace, so a snippet may build on
the previous one; blocks written in doctest style are run through
:mod:`doctest`).  Every relative markdown link must point at an existing file
in the repository.  CI runs this module as the ``docs`` job, so documentation
drift fails the build instead of rotting.

Snippets that are *not* meant to be executed (shell transcripts, pseudo-code,
expected output) must use a non-``python`` fence (``sh``, ``text``, ...).
"""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda path: path.name,
)

_FENCE = re.compile(r"^```(\w*)\s*$")
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def python_blocks(path: Path) -> list[tuple[int, str]]:
    """The fenced ``python`` blocks of a markdown file, with line numbers."""
    blocks: list[tuple[int, str]] = []
    language = None
    start = 0
    lines: list[str] = []
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        fence = _FENCE.match(line)
        if fence and language is None:
            language = fence.group(1)
            start = number + 1
            lines = []
        elif line.strip() == "```" and language is not None:
            if language == "python":
                blocks.append((start, "\n".join(lines)))
            language = None
        elif language is not None:
            lines.append(line)
    return blocks


def relative_links(path: Path) -> list[str]:
    """All relative (intra-repository) link targets of a markdown file."""
    targets = []
    for target in _LINK.findall(path.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        targets.append(target.split("#", 1)[0])
    return [t for t in targets if t]


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_documented_files_exist(path):
    assert path.exists(), f"documentation file {path} is missing"


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_python_snippets_execute(path):
    """Each file's python blocks run top to bottom in one shared namespace."""
    blocks = python_blocks(path)
    namespace: dict = {"__name__": f"doctest_{path.stem}"}
    for line, source in blocks:
        if ">>>" in source:
            runner = doctest.DocTestRunner(verbose=False, optionflags=doctest.ELLIPSIS)
            test = doctest.DocTestParser().get_doctest(
                source, namespace, f"{path.name}:{line}", str(path), line
            )
            runner.run(test)
            assert runner.failures == 0, f"doctest block at {path.name}:{line} failed"
        else:
            try:
                exec(compile(source, f"{path.name}:{line}", "exec"), namespace)
            except Exception as error:  # pragma: no cover - failure reporting
                pytest.fail(f"snippet at {path.name}:{line} raised {error!r}")


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_intra_repo_links_resolve(path):
    broken = []
    for target in relative_links(path):
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{path.name} has broken links: {broken}"
