"""Property tests: agenda saturation changes nothing observable, ever.

Random guarded Datalog± workloads × random agenda orderings × segment-cache
on/off × random iterative-deepening schedules must produce exactly the model
and answers of the retained breadth-first scan (``saturation="scan"``) — the
reference the differential suite (:mod:`test_chase_agenda`) pins on the
paper's worked examples, stressed here across the whole random program space.
The chase forests are compared through the engine-level observables (labels,
edge rules, per-atom depths and canonical levels, three-valued model,
convergence flags) plus ``holds()``/``answer()`` results, including the
magic-sets rewrite path and its relevance-pruned fallback sub-engines.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.generators import random_guarded_program
from repro.chase.segments import clear_segment_stores
from repro.core.engine import WellFoundedEngine
from repro.exceptions import GroundingError
from repro.lang.atoms import Atom
from repro.lang.queries import ConjunctiveQuery, NormalBCQ
from repro.lang.terms import Constant, Variable

from strategies import agenda_orderings

X = Variable("X")

COMMON_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def guarded_workloads(draw):
    """A random guarded Datalog± workload plus a query against it."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    num_predicates = draw(st.integers(min_value=1, max_value=3))
    num_rules = draw(st.integers(min_value=2, max_value=5))
    negation_prob = draw(st.sampled_from([0.0, 0.4, 0.8]))
    existential_prob = draw(st.sampled_from([0.0, 0.4, 0.8]))
    program, database = random_guarded_program(
        num_predicates,
        2,
        num_rules,
        negation_prob=negation_prob,
        existential_prob=existential_prob,
        num_constants=3,
        num_facts=8,
        seed=seed,
    )
    predicate = draw(st.sampled_from(sorted({f"q{i}" for i in range(num_predicates)})))
    constant = Constant(f"c{draw(st.integers(min_value=0, max_value=2))}")
    query = draw(
        st.sampled_from(
            [
                NormalBCQ((Atom(predicate, (constant,)),)),
                NormalBCQ((Atom(predicate, (X,)),)),
                NormalBCQ((Atom(predicate, (X,)),), (Atom(predicate, (constant,)),)),
            ]
        )
    )
    return program, database, query


def observable_state(engine: WellFoundedEngine):
    """Everything a caller can see of an engine's chase segment and model.

    A chase that exceeds the node budget is itself an observable outcome,
    reified as a sentinel so every configuration must agree on it too.
    """
    try:
        model = engine.model()
    except GroundingError:
        return "node-budget-exceeded"
    forest = model.forest()
    labels = forest.labels()
    return (
        labels,
        frozenset(forest.edge_rules()),
        {atom: forest.depth_of_atom(atom) for atom in labels},
        {atom: forest.level_of_atom(atom) for atom in labels},
        model.true_atoms(),
        model.false_atoms(),
        model.undefined_atoms(),
        (model.depth, model.converged, model.iterations),
    )


def _holds(engine, query, *, rewrite=False):
    try:
        return engine.holds(query, rewrite=rewrite)
    except GroundingError:
        return "node-budget-exceeded"


def _answer(engine, query):
    try:
        return engine.answer(query)
    except GroundingError:
        return "node-budget-exceeded"


@given(workload=guarded_workloads(), ordering=agenda_orderings(),
       segment_cache=st.booleans())
@settings(max_examples=40, **COMMON_SETTINGS)
def test_agenda_model_equals_scan_model(workload, ordering, segment_cache):
    """model() observables are ordering- and cache-independent."""
    program, database, _ = workload
    clear_segment_stores()
    options = dict(max_depth=13, max_nodes=2_000)
    scan = WellFoundedEngine(
        program, database, saturation="scan", segment_cache=False, **options
    )
    expected = observable_state(scan)
    agenda = WellFoundedEngine(
        program,
        database,
        saturation="agenda",
        segment_cache=segment_cache,
        agenda_order=ordering(),
        **options,
    )
    assert observable_state(agenda) == expected


@given(workload=guarded_workloads(), ordering=agenda_orderings(),
       segment_cache=st.booleans())
@settings(max_examples=30, **COMMON_SETTINGS)
def test_agenda_holds_and_answer_equal_scan(workload, ordering, segment_cache):
    """holds()/answer() agree across saturation modes, incl. the rewrite path."""
    program, database, query = workload
    clear_segment_stores()
    options = dict(max_depth=13, max_nodes=2_000)
    scan = WellFoundedEngine(
        program, database, saturation="scan", segment_cache=False, **options
    )
    agenda = WellFoundedEngine(
        program,
        database,
        saturation="agenda",
        segment_cache=segment_cache,
        agenda_order=ordering(),
        **options,
    )
    for rewrite in (False, True):
        assert _holds(agenda, query, rewrite=rewrite) == _holds(
            scan, query, rewrite=rewrite
        ), (query, rewrite, agenda.last_query_stats)
    if not query.negative:
        cq = ConjunctiveQuery(query.positive, (X,) if X in {
            v for atom in query.positive for v in atom.variables()
        } else ())
        assert _answer(agenda, cq) == _answer(scan, cq)


@given(
    workload=guarded_workloads(),
    ordering=agenda_orderings(),
    segment_cache=st.booleans(),
    initial_depth=st.integers(min_value=1, max_value=4),
    depth_step=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=25, **COMMON_SETTINGS)
def test_agenda_is_schedule_independent(
    workload, ordering, segment_cache, initial_depth, depth_step
):
    """Any deepening schedule × ordering × cache agrees with the scan twin."""
    program, database, _ = workload
    clear_segment_stores()
    options = dict(
        initial_depth=initial_depth,
        depth_step=depth_step,
        max_depth=initial_depth + 3 * depth_step,
        max_nodes=2_000,
    )
    scan = WellFoundedEngine(
        program, database, saturation="scan", segment_cache=False, **options
    )
    agenda = WellFoundedEngine(
        program,
        database,
        saturation="agenda",
        segment_cache=segment_cache,
        agenda_order=ordering(),
        **options,
    )
    assert observable_state(agenda) == observable_state(scan)


@given(workload=guarded_workloads(), ordering=agenda_orderings())
@settings(max_examples=20, **COMMON_SETTINGS)
def test_budget_failure_retry_never_fakes_convergence(workload, ordering):
    """Whenever model() raises the node budget, a retry raises again (the
    PR 3 property-suite bug), and raising the budget resumes to exactly the
    observables of a fresh engine whose deepening starts at the committed
    chase bound — the schedule the resumed engine genuinely follows.  (The
    shallower views of the interrupted schedule are unrecoverable: the
    forest is already committed deeper, so "fresh from the committed bound"
    is the strongest exactness statement possible — and in the common case
    of a first-step failure it coincides with a fully fresh engine.)"""
    program, database, _ = workload
    clear_segment_stores()
    tight = WellFoundedEngine(
        program,
        database,
        max_depth=13,
        max_nodes=30,
        agenda_order=ordering(),
        segment_cache=False,
    )
    first = observable_state(tight)
    if first != "node-budget-exceeded":
        return  # the workload fits the tight budget; nothing to check
    assert observable_state(tight) == "node-budget-exceeded"  # retry re-raises
    committed = tight._chase.depth_bound
    tight.max_nodes = 2_000
    resumed = observable_state(tight)
    mirror = WellFoundedEngine(
        program,
        database,
        initial_depth=committed,
        max_depth=13,
        max_nodes=2_000,
        segment_cache=False,
    )
    assert resumed == observable_state(mirror)
