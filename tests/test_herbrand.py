"""Unit tests for :mod:`repro.lp.herbrand`."""

from __future__ import annotations

import pytest

from repro.exceptions import GroundingError
from repro.lang.atoms import Atom
from repro.lang.parser import parse_normal_program
from repro.lang.program import Schema
from repro.lang.terms import Constant, FunctionTerm
from repro.lp.herbrand import (
    DEFAULT_CONSTANT,
    herbrand_base,
    herbrand_base_of_program,
    herbrand_universe,
)

a, b = Constant("a"), Constant("b")


class TestHerbrandUniverse:
    def test_depth_zero_is_the_constants(self):
        assert herbrand_universe([a, b]) == {a, b}

    def test_empty_constant_set_uses_the_default_constant(self):
        assert herbrand_universe([]) == {DEFAULT_CONSTANT}

    def test_one_level_of_function_application(self):
        universe = herbrand_universe([a], [("f", 1)], max_depth=1)
        assert universe == {a, FunctionTerm("f", (a,))}

    def test_two_levels_nest_terms(self):
        universe = herbrand_universe([a], [("f", 1)], max_depth=2)
        assert FunctionTerm("f", (FunctionTerm("f", (a,)),)) in universe
        assert len(universe) == 3

    def test_binary_functions_combine_all_arguments(self):
        universe = herbrand_universe([a, b], [("g", 2)], max_depth=1)
        # 2 constants + 4 pairs
        assert len(universe) == 6

    def test_negative_depth_is_rejected(self):
        with pytest.raises(GroundingError):
            herbrand_universe([a], max_depth=-1)


class TestHerbrandBase:
    def test_base_over_schema(self):
        schema = Schema({"p": 1, "q": 2})
        base = herbrand_base(schema, [a, b])
        assert Atom("p", (a,)) in base and Atom("q", (a, b)) in base
        assert len(base) == 2 + 4

    def test_zero_arity_predicates(self):
        schema = Schema({"flag": 0})
        assert herbrand_base(schema, [a]) == {Atom("flag", ())}

    def test_budget_is_enforced(self):
        schema = Schema({"q": 3})
        with pytest.raises(GroundingError):
            herbrand_base(schema, [a, b], max_atoms=5)

    def test_base_of_program(self):
        program = parse_normal_program(
            """
            p(a). q(a, b).
            q(X, Y) -> p(X).
            """
        )
        base = herbrand_base_of_program(program)
        assert Atom("p", (b,)) in base
        assert Atom("q", (b, a)) in base
