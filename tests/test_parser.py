"""Unit tests for the textual syntax (:mod:`repro.lang.parser`)."""

from __future__ import annotations

import pytest

from repro.exceptions import ParseError
from repro.lang.atoms import Atom
from repro.lang.parser import (
    parse_atom,
    parse_database,
    parse_literal,
    parse_normal_program,
    parse_normal_rule,
    parse_ntgd,
    parse_program,
    parse_query,
    parse_term,
)
from repro.lang.terms import Constant, FunctionTerm, Variable


class TestTermsAndAtoms:
    def test_lowercase_identifier_is_a_constant(self):
        assert parse_term("john") == Constant("john")

    def test_uppercase_identifier_is_a_variable(self):
        assert parse_term("X1") == Variable("X1")
        assert parse_term("_anon") == Variable("_anon")

    def test_numbers_and_quoted_strings_are_constants(self):
        assert parse_term("42") == Constant("42")
        assert parse_term("'Hello World'") == Constant("Hello World")

    def test_function_terms(self):
        assert parse_term("f(a, X)") == FunctionTerm("f", (Constant("a"), Variable("X")))
        nested = parse_term("f(g(a), b)")
        assert nested == FunctionTerm("f", (FunctionTerm("g", (Constant("a"),)), Constant("b")))

    def test_atoms(self):
        assert parse_atom("p(a, X)") == Atom("p", (Constant("a"), Variable("X")))
        assert parse_atom("flag") == Atom("flag", ())

    def test_literals(self):
        assert parse_literal("p(a)").positive
        negative = parse_literal("not p(a)")
        assert not negative.positive and negative.atom == Atom("p", (Constant("a"),))

    def test_trailing_garbage_is_an_error(self):
        with pytest.raises(ParseError):
            parse_atom("p(a) q(b)")
        with pytest.raises(ParseError):
            parse_term("f(a))")

    def test_unknown_character_is_an_error(self):
        with pytest.raises(ParseError):
            parse_atom("p(a) & q(b)")


class TestRules:
    def test_plain_tgd(self):
        ntgd = parse_ntgd("conferencePaper(X) -> article(X).")
        assert ntgd.body_pos == (Atom("conferencePaper", (Variable("X"),)),)
        assert ntgd.head == Atom("article", (Variable("X"),))
        assert not ntgd.existential_variables()

    def test_existential_tgd(self):
        ntgd = parse_ntgd("scientist(X) -> exists Y isAuthorOf(X, Y).")
        assert ntgd.existential_variables() == {Variable("Y")}

    def test_multiple_existential_variables(self):
        ntgd = parse_ntgd("p(X) -> exists Y, Z r(X, Y, Z).")
        assert ntgd.existential_variables() == {Variable("Y"), Variable("Z")}

    def test_normal_tgd_with_negation(self):
        ntgd = parse_ntgd("r(X,Y,Z), p(X,Y), not q(Z) -> p(X,Z).")
        assert len(ntgd.body_pos) == 2 and len(ntgd.body_neg) == 1
        assert ntgd.guard() == Atom("r", (Variable("X"), Variable("Y"), Variable("Z")))

    def test_fact_is_not_an_ntgd(self):
        with pytest.raises(ParseError):
            parse_ntgd("p(a).")

    def test_normal_rule_with_function_terms(self):
        rule = parse_normal_rule("q(X) -> p(f(X)).")
        assert rule.head == Atom("p", (FunctionTerm("f", (Variable("X"),)),))

    def test_normal_rule_rejects_existentials(self):
        with pytest.raises(ParseError):
            parse_normal_rule("p(X) -> exists Y r(X, Y).")

    def test_normal_rule_fact(self):
        rule = parse_normal_rule("p(a).")
        assert rule.is_fact() and rule.head == Atom("p", (Constant("a"),))


class TestProgramsAndQueries:
    def test_parse_program_splits_rules_and_facts(self):
        program, database = parse_program(
            """
            % the literature example
            conferencePaper(X) -> article(X).
            scientist(X) -> exists Y isAuthorOf(X, Y).
            scientist(john).
            conferencePaper(pods13).
            """
        )
        assert len(program) == 2
        assert len(database) == 2
        assert Atom("scientist", (Constant("john"),)) in database

    def test_comments_are_ignored(self):
        program, database = parse_program("# comment only\n% another\np(a).")
        assert len(program) == 0 and len(database) == 1

    def test_parse_normal_program(self):
        program = parse_normal_program(
            """
            move(a, b). move(b, c).
            move(X, Y), not win(Y) -> win(X).
            """
        )
        assert len(program) == 3
        assert len(program.facts()) == 2

    def test_parse_database_rejects_rules(self):
        with pytest.raises(ParseError):
            parse_database("p(a). q(X) -> r(X).")

    def test_parse_query_positive_and_negative(self):
        query = parse_query("? isAuthorOf(john, Y), not retracted(Y)")
        assert len(query.positive) == 1 and len(query.negative) == 1
        assert query.size() == 2

    def test_parse_query_with_trailing_dot(self):
        query = parse_query("? p(X).")
        assert len(query.positive) == 1

    def test_round_trip_through_str(self):
        ntgd = parse_ntgd("r(X,Y,Z), not q(Z) -> exists W p(X,W).")
        reparsed = parse_ntgd(str(ntgd))
        assert reparsed == ntgd
