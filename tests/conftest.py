"""Shared fixtures for the test-suite.

The most frequently used fixture is the paper's running example (Example 4 /
6 / 9), both as a Datalog± program text and as a pre-built
:class:`~repro.core.engine.WellFoundedEngine`.
"""

from __future__ import annotations

import pytest

from repro import WellFoundedEngine, parse_normal_program, parse_program, relevant_grounding
from repro.bench.generators import paper_example_program

#: The text of Example 4 of the paper (facts included).
PAPER_EXAMPLE_TEXT = """
r(X,Y,Z) -> exists W r(X,Z,W).
r(X,Y,Z), p(X,Y), not q(Z) -> p(X,Z).
r(X,Y,Z), not p(X,Y) -> q(Z).
r(X,Y,Z), not p(X,Z) -> s(X).
p(X,Y), not s(X) -> t(X).
r(0,0,1).
p(0,0).
"""

#: The classical win/move game on a small fixed graph (a -> b -> a, b -> c, c -> d).
WIN_MOVE_TEXT = """
move(a, b). move(b, a). move(b, c). move(c, d).
move(X, Y), not win(Y) -> win(X).
"""


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "stress: long-running stress tests (deselected unless run with -m stress)",
    )


def pytest_collection_modifyitems(config, items):
    """Keep tier-1 fast: stress-marked tests only run when asked for.

    ``pytest -m stress`` (the CI ``stress`` job) selects them explicitly; any
    marker expression mentioning ``stress`` disables the auto-skip so
    combinations like ``-m "stress and not slow"`` behave as written.
    """
    if "stress" in (config.getoption("-m") or ""):
        return
    skip_stress = pytest.mark.skip(reason="stress tests run only with -m stress")
    for item in items:
        if "stress" in item.keywords:
            item.add_marker(skip_stress)


@pytest.fixture(scope="session")
def paper_example_engine() -> WellFoundedEngine:
    """An engine over the paper's Example 4, with its model already computed."""
    engine = WellFoundedEngine(PAPER_EXAMPLE_TEXT)
    engine.model()
    return engine


@pytest.fixture(scope="session")
def paper_example_pieces():
    """The Example 4 program and database built through the Python API."""
    return paper_example_program()


@pytest.fixture()
def win_move_ground():
    """The win/move game, already grounded for the LP substrate."""
    program = parse_normal_program(WIN_MOVE_TEXT)
    return relevant_grounding(program)
